//! Tokenizer for the model-definition language.

use crate::error::ParseError;
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (keywords are recognised by the parser).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `:`
    Colon,
    /// `.`
    Dot,
    /// `->`
    Arrow,
    /// `%%`
    PercentPercent,
    /// `%`
    Percent,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `=`
    Assign,
    /// `+=`
    PlusAssign,
    /// `-=`
    MinusAssign,
    /// `*=`
    StarAssign,
    /// `++`
    Incr,
    /// `--`
    Decr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Not,
    /// `&` (address-of in extern calls)
    Amp,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Int(n) => write!(f, "`{n}`"),
            other => {
                let s = match other {
                    Tok::LParen => "(",
                    Tok::RParen => ")",
                    Tok::LBrace => "{",
                    Tok::RBrace => "}",
                    Tok::LBracket => "[",
                    Tok::RBracket => "]",
                    Tok::Semi => ";",
                    Tok::Comma => ",",
                    Tok::Colon => ":",
                    Tok::Dot => ".",
                    Tok::Arrow => "->",
                    Tok::PercentPercent => "%%",
                    Tok::Percent => "%",
                    Tok::Plus => "+",
                    Tok::Minus => "-",
                    Tok::Star => "*",
                    Tok::Slash => "/",
                    Tok::Assign => "=",
                    Tok::PlusAssign => "+=",
                    Tok::MinusAssign => "-=",
                    Tok::StarAssign => "*=",
                    Tok::Incr => "++",
                    Tok::Decr => "--",
                    Tok::Eq => "==",
                    Tok::Ne => "!=",
                    Tok::Lt => "<",
                    Tok::Gt => ">",
                    Tok::Le => "<=",
                    Tok::Ge => ">=",
                    Tok::AndAnd => "&&",
                    Tok::OrOr => "||",
                    Tok::Not => "!",
                    Tok::Amp => "&",
                    Tok::Eof => "<eof>",
                    Tok::Ident(_) | Tok::Int(_) => unreachable!(),
                };
                write!(f, "`{s}`")
            }
        }
    }
}

/// A token plus its source position (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    /// The token.
    pub tok: Tok,
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
}

/// Tokenizes model source. Supports `//` line and `/* */` block comments.
///
/// # Errors
/// [`ParseError`] on unknown characters or malformed literals.
pub fn lex(src: &str) -> Result<Vec<Spanned>, ParseError> {
    let mut out = Vec::new();
    let bytes: Vec<char> = src.chars().collect();
    let mut i = 0;
    let mut line = 1;
    let mut col = 1;

    macro_rules! push {
        ($tok:expr, $len:expr) => {{
            out.push(Spanned {
                tok: $tok,
                line,
                col,
            });
            i += $len;
            col += $len;
        }};
    }

    while i < bytes.len() {
        let c = bytes[i];
        let next = bytes.get(i + 1).copied();
        match c {
            '\n' => {
                i += 1;
                line += 1;
                col = 1;
            }
            c if c.is_whitespace() => {
                i += 1;
                col += 1;
            }
            '/' if next == Some('/') => {
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '/' if next == Some('*') => {
                i += 2;
                col += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(ParseError::new("unterminated block comment", line, col));
                    }
                    if bytes[i] == '*' && bytes[i + 1] == '/' {
                        i += 2;
                        col += 2;
                        break;
                    }
                    if bytes[i] == '\n' {
                        line += 1;
                        col = 1;
                    } else {
                        col += 1;
                    }
                    i += 1;
                }
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                let n: i64 = text
                    .parse()
                    .map_err(|_| ParseError::new(format!("bad integer `{text}`"), line, col))?;
                out.push(Spanned {
                    tok: Tok::Int(n),
                    line,
                    col,
                });
                col += i - start;
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_alphanumeric() || bytes[i] == '_') {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                out.push(Spanned {
                    tok: Tok::Ident(text),
                    line,
                    col,
                });
                col += i - start;
            }
            '-' if next == Some('>') => push!(Tok::Arrow, 2),
            '-' if next == Some('-') => push!(Tok::Decr, 2),
            '-' if next == Some('=') => push!(Tok::MinusAssign, 2),
            '-' => push!(Tok::Minus, 1),
            '+' if next == Some('+') => push!(Tok::Incr, 2),
            '+' if next == Some('=') => push!(Tok::PlusAssign, 2),
            '+' => push!(Tok::Plus, 1),
            '*' if next == Some('=') => push!(Tok::StarAssign, 2),
            '*' => push!(Tok::Star, 1),
            '/' => push!(Tok::Slash, 1),
            '%' if next == Some('%') => push!(Tok::PercentPercent, 2),
            '%' => push!(Tok::Percent, 1),
            '=' if next == Some('=') => push!(Tok::Eq, 2),
            '=' => push!(Tok::Assign, 1),
            '!' if next == Some('=') => push!(Tok::Ne, 2),
            '!' => push!(Tok::Not, 1),
            '<' if next == Some('=') => push!(Tok::Le, 2),
            '<' => push!(Tok::Lt, 1),
            '>' if next == Some('=') => push!(Tok::Ge, 2),
            '>' => push!(Tok::Gt, 1),
            '&' if next == Some('&') => push!(Tok::AndAnd, 2),
            '&' => push!(Tok::Amp, 1),
            '|' if next == Some('|') => push!(Tok::OrOr, 2),
            '(' => push!(Tok::LParen, 1),
            ')' => push!(Tok::RParen, 1),
            '{' => push!(Tok::LBrace, 1),
            '}' => push!(Tok::RBrace, 1),
            '[' => push!(Tok::LBracket, 1),
            ']' => push!(Tok::RBracket, 1),
            ';' => push!(Tok::Semi, 1),
            ',' => push!(Tok::Comma, 1),
            ':' => push!(Tok::Colon, 1),
            '.' => push!(Tok::Dot, 1),
            other => {
                return Err(ParseError::new(
                    format!("unexpected character `{other}`"),
                    line,
                    col,
                ))
            }
        }
    }
    out.push(Spanned {
        tok: Tok::Eof,
        line,
        col,
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|s| s.tok).collect()
    }

    #[test]
    fn percent_percent_wins_over_percent() {
        assert_eq!(
            toks("100%%[I] k%l"),
            vec![
                Tok::Int(100),
                Tok::PercentPercent,
                Tok::LBracket,
                Tok::Ident("I".into()),
                Tok::RBracket,
                Tok::Ident("k".into()),
                Tok::Percent,
                Tok::Ident("l".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn arrow_and_minus() {
        assert_eq!(
            toks("[L]->[I] a-b a-- a-=1"),
            vec![
                Tok::LBracket,
                Tok::Ident("L".into()),
                Tok::RBracket,
                Tok::Arrow,
                Tok::LBracket,
                Tok::Ident("I".into()),
                Tok::RBracket,
                Tok::Ident("a".into()),
                Tok::Minus,
                Tok::Ident("b".into()),
                Tok::Ident("a".into()),
                Tok::Decr,
                Tok::Ident("a".into()),
                Tok::MinusAssign,
                Tok::Int(1),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("a // line comment\n /* block\n comment */ b"),
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn compound_comparisons() {
        assert_eq!(
            toks("a>=0 && b!=c || d<=e"),
            vec![
                Tok::Ident("a".into()),
                Tok::Ge,
                Tok::Int(0),
                Tok::AndAnd,
                Tok::Ident("b".into()),
                Tok::Ne,
                Tok::Ident("c".into()),
                Tok::OrOr,
                Tok::Ident("d".into()),
                Tok::Le,
                Tok::Ident("e".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn positions_are_tracked() {
        let spanned = lex("ab\n  cd").unwrap();
        assert_eq!(spanned[0].line, 1);
        assert_eq!(spanned[0].col, 1);
        assert_eq!(spanned[1].line, 2);
        assert_eq!(spanned[1].col, 3);
    }

    #[test]
    fn bad_character_is_rejected() {
        assert!(lex("a @ b").is_err());
    }

    #[test]
    fn unterminated_block_comment_rejected() {
        assert!(lex("a /* never closed").is_err());
    }

    #[test]
    fn member_access_and_calls() {
        assert_eq!(
            toks("GetProcessor(Arow, m, &Root); Root.I++"),
            vec![
                Tok::Ident("GetProcessor".into()),
                Tok::LParen,
                Tok::Ident("Arow".into()),
                Tok::Comma,
                Tok::Ident("m".into()),
                Tok::Comma,
                Tok::Amp,
                Tok::Ident("Root".into()),
                Tok::RParen,
                Tok::Semi,
                Tok::Ident("Root".into()),
                Tok::Dot,
                Tok::Ident("I".into()),
                Tok::Incr,
                Tok::Eof
            ]
        );
    }
}
