//! Abstract syntax of the model-definition language.

/// A parsed source file: struct typedefs plus algorithm definitions.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// `typedef struct { int I; int J; } Processor;` declarations.
    pub typedefs: Vec<StructDef>,
    /// `algorithm Name(...) { ... }` definitions.
    pub algorithms: Vec<AlgorithmDef>,
}

/// A struct typedef (all fields are `int`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructDef {
    /// The typedef'd name.
    pub name: String,
    /// Field names in declaration order.
    pub fields: Vec<String>,
}

/// An `algorithm` (mpC "network type") definition.
#[derive(Debug, Clone, PartialEq)]
pub struct AlgorithmDef {
    /// Algorithm name, e.g. `Em3d` or `ParallelAxB`.
    pub name: String,
    /// Formal parameters in order.
    pub params: Vec<ParamDecl>,
    /// `coord I=p, J=m;` — coordinate variables and their extents.
    pub coords: Vec<(String, Expr)>,
    /// `node { guard : bench*(expr); ... };`
    pub node_rules: Vec<NodeRule>,
    /// Binder variables of the `link (L=p, ...)` clause.
    pub link_binders: Vec<(String, Expr)>,
    /// `link { guard : length*(expr) [src]->[dst]; ... };`
    pub link_rules: Vec<LinkRule>,
    /// `parent [coords];`
    pub parent: Vec<Expr>,
    /// `scheme { ... };`
    pub scheme: Vec<Stmt>,
}

/// A formal parameter: `int p`, `int d[p]`, `int h[m][m][m][m]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ParamDecl {
    /// Parameter name.
    pub name: String,
    /// Dimension extents (empty for scalars); evaluated left-to-right with
    /// earlier parameters in scope.
    pub dims: Vec<Expr>,
}

/// One rule of the `node` declaration: processors whose coordinates satisfy
/// `guard` perform `volume` benchmark units of computation in total.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeRule {
    /// Guard over the coordinate variables.
    pub guard: Expr,
    /// Total computation volume, in benchmark units (`bench*(volume)`).
    pub volume: Expr,
}

/// One rule of the `link` declaration: for every assignment of coordinate
/// and binder variables satisfying `guard`, `volume` bytes flow from the
/// processor at `src` to the processor at `dst`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkRule {
    /// Guard over coordinate and binder variables.
    pub guard: Expr,
    /// Bytes transferred in total (`length*(volume)`).
    pub volume: Expr,
    /// Source processor coordinates.
    pub src: Vec<Expr>,
    /// Destination processor coordinates.
    pub dst: Vec<Expr>,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Int(i64),
    /// Variable reference.
    Var(String),
    /// Struct member access, e.g. `Root.I`.
    Member(Box<Expr>, String),
    /// Array subscript chain, e.g. `h[I][J][K][L]`.
    Index(Box<Expr>, Box<Expr>),
    /// Unary operation.
    Unary(UnOp, Box<Expr>),
    /// Binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// `sizeof(type)` — resolved to the C byte size of the named type.
    SizeOf(String),
    /// Call to an extern/builtin function inside an expression
    /// (value-returning form; out-parameter calls are statements).
    Call(String, Vec<Expr>),
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not.
    Not,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (truncating over ints in index context, true division in volume
    /// context)
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `&&`
    And,
    /// `||`
    Or,
}

/// Assignable places.
#[derive(Debug, Clone, PartialEq)]
pub enum LValue {
    /// Plain variable.
    Var(String),
    /// Struct member, e.g. `Root.I`.
    Member(String, String),
}

/// Statements of the `scheme` body.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `int a, b = e;` or `Processor Root, Receiver;`
    Decl {
        /// Type name (`int` or a struct typedef).
        ty: String,
        /// `(name, optional initialiser)` pairs.
        vars: Vec<(String, Option<Expr>)>,
    },
    /// `lv = e;`, `lv += e;`, `lv -= e;`, `lv *= e;`, `lv++;`, `lv--;`
    Assign {
        /// Target place.
        lv: LValue,
        /// Assignment operator.
        op: AssignOp,
        /// Right-hand side (for `++`/`--` this is the literal 1).
        rhs: Expr,
    },
    /// Sequential `for (init; cond; step) body`.
    For {
        /// Optional init assignment.
        init: Option<Box<Stmt>>,
        /// Optional condition (absent = infinite, rejected at eval).
        cond: Option<Expr>,
        /// Optional step assignment.
        step: Option<Box<Stmt>>,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// Parallel `par (init; cond; step) body`: iterations' *activities*
    /// overlap in time; variable bindings still evolve sequentially.
    Par {
        /// Optional init assignment.
        init: Option<Box<Stmt>>,
        /// Optional condition.
        cond: Option<Expr>,
        /// Optional step assignment (Figure 7 steps some loops inside the
        /// body instead).
        step: Option<Box<Stmt>>,
        /// Loop body.
        body: Box<Stmt>,
    },
    /// `if (cond) then [else]`.
    If {
        /// Condition.
        cond: Expr,
        /// Then branch.
        then: Box<Stmt>,
        /// Optional else branch.
        els: Option<Box<Stmt>>,
    },
    /// `{ ... }`
    Block(Vec<Stmt>),
    /// `e %% [coords];` — the processor at `coords` performs `e` percent of
    /// its total computation volume.
    Compute {
        /// Percentage expression.
        percent: Expr,
        /// Processor coordinates.
        proc: Vec<Expr>,
    },
    /// `e %% [src] -> [dst];` — `e` percent of the total `src`→`dst`
    /// communication volume is transferred.
    Transfer {
        /// Percentage expression.
        percent: Expr,
        /// Source coordinates.
        src: Vec<Expr>,
        /// Destination coordinates.
        dst: Vec<Expr>,
    },
    /// `Fn(args...);` — extern call; `&lvalue` arguments receive outputs.
    CallStmt {
        /// Function name.
        name: String,
        /// Arguments.
        args: Vec<CallArg>,
    },
    /// `;`
    Empty,
}

/// Assignment operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AssignOp {
    /// `=`
    Set,
    /// `+=` (also `++`)
    Add,
    /// `-=` (also `--`)
    Sub,
    /// `*=`
    Mul,
}

/// An argument of an extern call statement.
#[derive(Debug, Clone, PartialEq)]
pub enum CallArg {
    /// Pass-by-value expression.
    Value(Expr),
    /// `&lvalue` out-parameter.
    OutRef(LValue),
}
