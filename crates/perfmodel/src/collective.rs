//! Collective algorithm schedules and their pricing.
//!
//! The collective engine (DESIGN.md §10) expresses every collective
//! algorithm as a *schedule*: an ordered list of rounds, each round an
//! ordered list of point-to-point transfers. The same schedule drives two
//! consumers that must never disagree:
//!
//! * the **executor** in `mpisim`, which turns each transfer into an eager
//!   `post_bytes` / blocking `recv_bytes` pair on the collective plane, and
//! * the **pricer** here, which replays the rounds against a [`PairCost`]
//!   table to predict the collective's virtual time.
//!
//! The replay mirrors the transport exactly: within a round every rank
//! issues all of its sends first (each advancing the sender's clock by the
//! link latency, the eager injection overhead) and then merges the arrival
//! times of its receives. The transport's contention arbitration is
//! *endpoint-causal* — a sender grants a transfer against its own view of
//! the shared resource (NIC pair, bus, or intra-node memory bus) and the
//! receiver settles the stamped reservation against its own view at match
//! time — so each rank's state evolves only through its own program-order
//! actions. The replay keeps one clock and one resource frontier per rank
//! and performs the identical grant/settle arithmetic in schedule order,
//! which *is* each rank's program order; the prediction is therefore
//! bit-exact under every contention model, not just parallel links.
//!
//! Reduction schedules move **raw contributions** (or ascending partial
//! folds), never tree-shaped partial sums, so that every algorithm yields
//! the identical identity-seeded rank-ascending left fold — selection can
//! switch algorithms per call without perturbing floating-point results.

use crate::compile::PairCost;

/// Which collective a schedule implements.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    /// One-to-all broadcast (`MPI_Bcast`).
    Bcast,
    /// All-to-one reduction (`MPI_Reduce`).
    Reduce,
    /// All-to-all reduction (`MPI_Allreduce`).
    Allreduce,
    /// All-to-all gather with equal contributions (`MPI_Allgather`).
    Allgather,
}

impl CollectiveKind {
    /// Stable lower-case label.
    pub fn name(self) -> &'static str {
        match self {
            CollectiveKind::Bcast => "bcast",
            CollectiveKind::Reduce => "reduce",
            CollectiveKind::Allreduce => "allreduce",
            CollectiveKind::Allgather => "allgather",
        }
    }
}

/// A collective algorithm the engine can schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CollectiveAlgo {
    /// Flat root-fanout (or direct exchange): every transfer in one round.
    Linear,
    /// Binomial tree: ⌈log₂ p⌉ rounds of doubling fan-out (bcast) or
    /// raw-contribution gather (reduce).
    Binomial,
    /// Pipelined chain: the payload is cut into p chunks that travel the
    /// rank-ascending chain hop by hop (and back, for allreduce).
    Ring,
    /// Recursive doubling: log₂ p rounds of pairwise block exchange.
    /// Eligible only when the communicator size is a power of two.
    RecursiveDoubling,
    /// Rabenseifner-style scatter-allgather: chunk scatter (or direct
    /// reduce-scatter) followed by an all-to-all chunk allgather.
    ScatterAllgather,
    /// A topology-aware multi-level plan from [`crate::hier::plan`]: one
    /// per-group algorithm per hierarchy level, crossing each expensive
    /// boundary once. Not a flat schedule — it is never [`eligible`] here
    /// and never appears in [`CollectiveAlgo::ALL`]; the engine reaches it
    /// only through hierarchy-aware auto-selection, and this variant names
    /// the choice in traces, predictions and bench output.
    Hierarchical,
}

impl CollectiveAlgo {
    /// Every *flat* algorithm, in selection tie-break order.
    /// [`CollectiveAlgo::Hierarchical`] is deliberately absent: it has no
    /// flat schedule and competes against the flat winner separately.
    pub const ALL: [CollectiveAlgo; 5] = [
        CollectiveAlgo::Linear,
        CollectiveAlgo::Binomial,
        CollectiveAlgo::Ring,
        CollectiveAlgo::RecursiveDoubling,
        CollectiveAlgo::ScatterAllgather,
    ];

    /// Stable lower-case label (used for trace spans and bench output).
    pub fn name(self) -> &'static str {
        match self {
            CollectiveAlgo::Linear => "linear",
            CollectiveAlgo::Binomial => "binomial",
            CollectiveAlgo::Ring => "ring",
            CollectiveAlgo::RecursiveDoubling => "recursive-doubling",
            CollectiveAlgo::ScatterAllgather => "scatter-allgather",
            CollectiveAlgo::Hierarchical => "hierarchical",
        }
    }
}

/// One scheduled point-to-point transfer: `elems()` payload elements from
/// communicator rank `src` to rank `dst`.
///
/// For data-movement collectives `[lo, hi)` is the element range of the
/// logical payload buffer the transfer carries. Reduction schedules reuse
/// the range purely as an element *count* (`lo == 0`) where the payload is
/// a set of raw contributions rather than a buffer slice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Xfer {
    /// Sending communicator rank.
    pub src: usize,
    /// Receiving communicator rank.
    pub dst: usize,
    /// First payload element (inclusive).
    pub lo: usize,
    /// Last payload element (exclusive).
    pub hi: usize,
}

impl Xfer {
    /// Payload size in elements.
    #[inline]
    pub fn elems(&self) -> usize {
        self.hi - self.lo
    }
}

/// How concurrent transfers share the network, mirroring hetsim's
/// `ContentionModel` without depending on it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum LinkSharing {
    /// Every pair has a private link; transfers never contend.
    #[default]
    Parallel,
    /// One NIC per node: a node's transfers (in or out) serialise.
    PerEndpoint,
    /// One shared medium: every transfer serialises globally.
    Shared,
}

/// The balanced chunk decomposition every chunked schedule uses: chunk `i`
/// of an `n`-element payload cut into `parts` is `[i*n/parts, (i+1)*n/parts)`.
#[inline]
pub fn chunk_bounds(n: usize, parts: usize, i: usize) -> (usize, usize) {
    (i * n / parts, (i + 1) * n / parts)
}

/// Whether `algo` can run `kind` on a `p`-rank communicator.
///
/// A single rank degenerates every collective to a local operation, so only
/// [`CollectiveAlgo::Linear`] (an empty schedule) is offered. Recursive
/// doubling needs a power-of-two communicator; everything else is
/// unrestricted.
pub fn eligible(kind: CollectiveKind, algo: CollectiveAlgo, p: usize) -> bool {
    if algo == CollectiveAlgo::Hierarchical {
        // Not a flat schedule: produced only by `crate::hier::plan`.
        return false;
    }
    if p <= 1 {
        return algo == CollectiveAlgo::Linear;
    }
    match (kind, algo) {
        (CollectiveKind::Bcast, CollectiveAlgo::RecursiveDoubling) => false,
        (CollectiveKind::Reduce, CollectiveAlgo::Ring | CollectiveAlgo::RecursiveDoubling | CollectiveAlgo::ScatterAllgather) => false,
        (CollectiveKind::Allreduce | CollectiveKind::Allgather, CollectiveAlgo::RecursiveDoubling) => p.is_power_of_two(),
        (CollectiveKind::Allgather, CollectiveAlgo::Binomial | CollectiveAlgo::ScatterAllgather) => false,
        _ => true,
    }
}

/// The algorithms eligible for `kind` on a `p`-rank communicator, in
/// tie-break order.
pub fn algos_for(kind: CollectiveKind, p: usize) -> Vec<CollectiveAlgo> {
    CollectiveAlgo::ALL
        .into_iter()
        .filter(|&a| eligible(kind, a, p))
        .collect()
}

fn push(round: &mut Vec<Xfer>, src: usize, dst: usize, lo: usize, hi: usize) {
    if hi > lo && src != dst {
        round.push(Xfer { src, dst, lo, hi });
    }
}

/// The schedule of `algo` running `kind` over `p` ranks rooted at `root`
/// (ignored for rootless kinds) on an `n`-element payload; `None` if the
/// algorithm is not [`eligible`].
///
/// For [`CollectiveKind::Allgather`], `n` is the *total* output length
/// (`p` equal contributions of `n / p` elements each).
pub fn schedule(
    kind: CollectiveKind,
    algo: CollectiveAlgo,
    p: usize,
    root: usize,
    n: usize,
) -> Option<Vec<Vec<Xfer>>> {
    if !eligible(kind, algo, p) || root >= p {
        return None;
    }
    if p <= 1 {
        return Some(Vec::new());
    }
    Some(match kind {
        CollectiveKind::Bcast => bcast_rounds(algo, p, root, n),
        CollectiveKind::Reduce => reduce_rounds(algo, p, root, n),
        CollectiveKind::Allreduce => allreduce_rounds(algo, p, n),
        CollectiveKind::Allgather => allgather_rounds(algo, p, n),
    })
}

fn bcast_rounds(algo: CollectiveAlgo, p: usize, root: usize, n: usize) -> Vec<Vec<Xfer>> {
    let abs = |rel: usize| (rel + root) % p;
    let mut rounds = Vec::new();
    match algo {
        CollectiveAlgo::Linear => {
            let mut r0 = Vec::new();
            for dst in 0..p {
                if dst != root {
                    push(&mut r0, root, dst, 0, n);
                }
            }
            rounds.push(r0);
        }
        CollectiveAlgo::Binomial => {
            let mut span = 1;
            while span < p {
                let mut round = Vec::new();
                for rel_src in 0..span {
                    let rel_dst = rel_src + span;
                    if rel_dst < p {
                        push(&mut round, abs(rel_src), abs(rel_dst), 0, n);
                    }
                }
                rounds.push(round);
                span <<= 1;
            }
        }
        CollectiveAlgo::Ring => {
            // Pipelined chain: chunk c leaves chain position r in round c+r.
            let nchunks = p;
            for t in 0..nchunks + p - 2 {
                let mut round = Vec::new();
                for rel in 0..p - 1 {
                    if let Some(c) = t.checked_sub(rel) {
                        if c < nchunks {
                            let (lo, hi) = chunk_bounds(n, nchunks, c);
                            push(&mut round, abs(rel), abs(rel + 1), lo, hi);
                        }
                    }
                }
                rounds.push(round);
            }
        }
        CollectiveAlgo::ScatterAllgather => {
            // Chunk i belongs to absolute rank i. Scatter, then direct
            // all-to-all allgather of the chunks.
            let mut r0 = Vec::new();
            for i in 0..p {
                if i != root {
                    let (lo, hi) = chunk_bounds(n, p, i);
                    push(&mut r0, root, i, lo, hi);
                }
            }
            rounds.push(r0);
            let mut r1 = Vec::new();
            for src in 0..p {
                let (lo, hi) = chunk_bounds(n, p, src);
                for dst in 0..p {
                    if dst != src {
                        push(&mut r1, src, dst, lo, hi);
                    }
                }
            }
            rounds.push(r1);
        }
        CollectiveAlgo::RecursiveDoubling | CollectiveAlgo::Hierarchical => {
            unreachable!("ineligible")
        }
    }
    rounds
}

fn reduce_rounds(algo: CollectiveAlgo, p: usize, root: usize, n: usize) -> Vec<Vec<Xfer>> {
    let abs = |rel: usize| (rel + root) % p;
    let mut rounds = Vec::new();
    match algo {
        CollectiveAlgo::Linear => {
            let mut r0 = Vec::new();
            for src in 0..p {
                if src != root {
                    push(&mut r0, src, root, 0, n);
                }
            }
            rounds.push(r0);
        }
        CollectiveAlgo::Binomial => {
            // Raw-contribution gather up the binomial tree: the sender at
            // distance `span` forwards every contribution its subtree holds,
            // so the root can fold in ascending rank order.
            let mut span = 1;
            while span < p {
                let mut round = Vec::new();
                let mut rel = span;
                while rel < p {
                    let held = span.min(p - rel);
                    push(&mut round, abs(rel), abs(rel - span), 0, held * n);
                    rel += span * 2;
                }
                rounds.push(round);
                span <<= 1;
            }
        }
        _ => unreachable!("ineligible"),
    }
    rounds
}

fn allgather_rounds(algo: CollectiveAlgo, p: usize, n: usize) -> Vec<Vec<Xfer>> {
    let mut rounds = Vec::new();
    match algo {
        CollectiveAlgo::Linear => {
            let mut r0 = Vec::new();
            for src in 0..p {
                let (lo, hi) = chunk_bounds(n, p, src);
                for dst in 0..p {
                    if dst != src {
                        push(&mut r0, src, dst, lo, hi);
                    }
                }
            }
            rounds.push(r0);
        }
        CollectiveAlgo::Ring => {
            for t in 0..p - 1 {
                let mut round = Vec::new();
                for r in 0..p {
                    let c = (r + p - t) % p;
                    let (lo, hi) = chunk_bounds(n, p, c);
                    push(&mut round, r, (r + 1) % p, lo, hi);
                }
                rounds.push(round);
            }
        }
        CollectiveAlgo::RecursiveDoubling => {
            let mut span = 1;
            while span < p {
                let mut round = Vec::new();
                for r in 0..p {
                    let partner = r ^ span;
                    let start = r & !(span - 1);
                    let lo = chunk_bounds(n, p, start).0;
                    let hi = chunk_bounds(n, p, start + span - 1).1;
                    push(&mut round, r, partner, lo, hi);
                }
                rounds.push(round);
                span <<= 1;
            }
        }
        _ => unreachable!("ineligible"),
    }
    rounds
}

fn allreduce_rounds(algo: CollectiveAlgo, p: usize, n: usize) -> Vec<Vec<Xfer>> {
    match algo {
        CollectiveAlgo::Linear | CollectiveAlgo::Binomial => {
            let mut rounds = reduce_rounds(algo, p, 0, n);
            rounds.extend(bcast_rounds(algo, p, 0, n));
            rounds
        }
        CollectiveAlgo::Ring => {
            // Forward: partial folds travel the ascending chain chunk by
            // chunk; backward: finished chunks travel the chain in reverse.
            // Both directions pipeline through shared global rounds so that
            // the tail rank turns each chunk around one round after it
            // completes it.
            let nchunks = p;
            let mut rounds = Vec::new();
            for g in 0..nchunks + 2 * p - 3 {
                let mut round = Vec::new();
                for r in 0..p - 1 {
                    if let Some(c) = g.checked_sub(r) {
                        if c < nchunks {
                            let (lo, hi) = chunk_bounds(n, nchunks, c);
                            push(&mut round, r, r + 1, lo, hi);
                        }
                    }
                }
                for r in 1..p {
                    if let Some(c) = (g + r).checked_sub(2 * (p - 1)) {
                        if c < nchunks {
                            let (lo, hi) = chunk_bounds(n, nchunks, c);
                            push(&mut round, r, r - 1, lo, hi);
                        }
                    }
                }
                rounds.push(round);
            }
            rounds
        }
        CollectiveAlgo::RecursiveDoubling => {
            // Doubling gather of raw contributions: round k exchanges the
            // 2^k contributions each partner holds, so the payload doubles
            // every round and each rank folds all p contributions locally.
            let mut rounds = Vec::new();
            let mut span = 1;
            while span < p {
                let mut round = Vec::new();
                for r in 0..p {
                    push(&mut round, r, r ^ span, 0, span * n);
                }
                rounds.push(round);
                span <<= 1;
            }
            rounds
        }
        CollectiveAlgo::ScatterAllgather => {
            // Direct reduce-scatter of raw chunks (rank j owns chunk j and
            // folds every rank's copy of it), then a direct allgather of the
            // reduced chunks.
            let mut r0 = Vec::new();
            for src in 0..p {
                for dst in 0..p {
                    if dst != src {
                        let (lo, hi) = chunk_bounds(n, p, dst);
                        push(&mut r0, src, dst, lo, hi);
                    }
                }
            }
            let mut r1 = Vec::new();
            for src in 0..p {
                let (lo, hi) = chunk_bounds(n, p, src);
                for dst in 0..p {
                    if dst != src {
                        push(&mut r1, src, dst, lo, hi);
                    }
                }
            }
            vec![r0, r1]
        }
        CollectiveAlgo::Hierarchical => unreachable!("ineligible"),
    }
}

/// Predicts the engine's fault surface for a schedule: which ranks complete
/// and which abort, when the ranks in `failed` are fail-stopped for the
/// whole run (the crash-before-collective case).
///
/// Returns one entry per schedule rank: `None` — the rank completes with
/// the full, correct result; `Some(b)` — the rank aborts blaming rank `b`
/// (a failed rank blames itself). The replay mirrors the executor's fault
/// propagation exactly:
///
/// * within a round every rank issues its sends in schedule order, then
///   completes its receives in schedule order;
/// * a send to a dead rank aborts the sender, blaming the dead rank;
/// * a receive from a dead rank aborts the receiver, blaming the dead rank;
/// * a rank that aborts stops at its first failing transfer and *poisons*
///   the rest of its scheduled sends, so a receive of a poisoned transfer
///   aborts the receiver with the same blame — faults propagate along
///   schedule edges, transitively, in deterministic schedule order.
///
/// Ranks are schedule (communicator) ranks throughout; callers working in
/// world-rank space translate on the way in and out.
pub fn fault_impact(rounds: &[Vec<Xfer>], p: usize, failed: &[usize]) -> Vec<Option<usize>> {
    let mut blame: Vec<Option<usize>> = vec![None; p];
    let mut dead = vec![false; p];
    for &f in failed {
        if f < p {
            dead[f] = true;
            blame[f] = Some(f);
        }
    }
    for round in rounds {
        // Send phase: what each transfer of this round carries — `None` for
        // data, `Some(b)` for poison (or, for a dead sender, the abort its
        // receiver's failure detector will raise).
        let payload: Vec<Option<usize>> = round
            .iter()
            .map(|x| {
                if let Some(b) = blame[x.src] {
                    Some(b)
                } else if dead[x.dst] {
                    // The send itself fails; the sender aborts here and
                    // poisons everything after this edge.
                    blame[x.src] = Some(x.dst);
                    Some(x.dst)
                } else {
                    None
                }
            })
            .collect();
        // Receive phase: a rank stops at its first failing receive.
        for (x, carried) in round.iter().zip(&payload) {
            if blame[x.dst].is_none() {
                if let Some(b) = carried {
                    blame[x.dst] = Some(*b);
                }
            }
        }
    }
    blame
}

/// A shared resource a stamped reservation occupies, by node index.
#[derive(Clone, Copy, Debug)]
enum PriceRes {
    Nic { src: usize, dst: usize },
    Bus,
    Mem { node: usize },
}

/// One rank's private view of the shared resources — the pricer's mirror
/// of the transport's per-rank `NetFrontier`.
#[derive(Clone, Debug)]
struct PriceFrontier {
    nic: Vec<f64>,
    bus: f64,
    mem: Vec<f64>,
}

impl PriceFrontier {
    fn new(n_nodes: usize) -> Self {
        PriceFrontier {
            nic: vec![0.0; n_nodes],
            bus: 0.0,
            mem: vec![0.0; n_nodes],
        }
    }

    fn occupy(&mut self, res: PriceRes, until: f64) {
        match res {
            PriceRes::Nic { src, dst } => {
                self.nic[src] = until;
                self.nic[dst] = until;
            }
            PriceRes::Bus => self.bus = until,
            PriceRes::Mem { node } => self.mem[node] = until,
        }
    }
}

/// A transfer granted by its sender, awaiting receiver-side settlement:
/// either an uncontended arrival or a stamped reservation.
#[derive(Clone, Copy, Debug)]
enum Pending {
    Plain(f64),
    Stamp { start: f64, total: f64, res: PriceRes },
}

/// Replays a schedule against a [`PairCost`] table and returns the predicted
/// completion time (seconds): the maximum rank clock after the last round.
///
/// `elem_bytes` converts element counts to wire bytes. The replay performs
/// the transport's exact endpoint-causal arbitration: each send charges the
/// link latency on the sender's clock (eager injection) and *grants* the
/// transfer against the sender's own resource frontier; each receive
/// *settles* the stamped reservation against the receiver's own frontier
/// and merges the settled arrival. Within a round every rank's sends run
/// before its receives, matching the executor's program order, so the
/// prediction is bit-exact under every contention model. Ranks sharing a
/// host ([`PairCost::node_of`]) contend for that node's NIC and, when the
/// pair table prices one, its memory bus.
pub fn price(
    p: usize,
    rounds: &[Vec<Xfer>],
    elem_bytes: f64,
    cost: &impl PairCost,
    sharing: LinkSharing,
) -> f64 {
    let nodes: Vec<usize> = (0..p).map(|r| cost.node_of(r)).collect();
    let n_nodes = nodes.iter().max().map_or(0, |m| m + 1);
    let mut clocks = vec![0.0f64; p];
    let mut frontiers: Vec<PriceFrontier> = vec![PriceFrontier::new(n_nodes); p];
    let mut pending: Vec<(usize, Pending)> = Vec::new();
    for round in rounds {
        pending.clear();
        for x in round {
            let lat = cost.latency(x.src, x.dst);
            let bw = cost.bandwidth(x.src, x.dst);
            let bytes = x.elems() as f64 * elem_bytes;
            // Mirrors `Link::transfer_time`: an infinite-bandwidth link
            // costs its latency alone.
            let total = if bw > 0.0 && bw.is_finite() {
                lat + bytes / bw
            } else {
                lat
            };
            let now = clocks[x.src];
            let (ns, nd) = (nodes[x.src], nodes[x.dst]);
            let f = &mut frontiers[x.src];
            let sent = if total <= 0.0 {
                Pending::Plain(now)
            } else if ns == nd {
                // Same host: the intra-node memory bus, under any sharing
                // model (a positive same-host cost means one is priced).
                let start = now.max(f.mem[ns]);
                let res = PriceRes::Mem { node: ns };
                f.occupy(res, start + total);
                Pending::Stamp { start, total, res }
            } else {
                match sharing {
                    LinkSharing::Parallel => Pending::Plain(now + total),
                    LinkSharing::PerEndpoint => {
                        let start = now.max(f.nic[ns]).max(f.nic[nd]);
                        let res = PriceRes::Nic { src: ns, dst: nd };
                        f.occupy(res, start + total);
                        Pending::Stamp { start, total, res }
                    }
                    LinkSharing::Shared => {
                        let start = now.max(f.bus);
                        let res = PriceRes::Bus;
                        f.occupy(res, start + total);
                        Pending::Stamp { start, total, res }
                    }
                }
            };
            clocks[x.src] = now + lat;
            pending.push((x.dst, sent));
        }
        for &(dst, sent) in &pending {
            let arrival = match sent {
                Pending::Plain(a) => a,
                Pending::Stamp { start, total, res } => {
                    let f = &mut frontiers[dst];
                    let floor = match res {
                        PriceRes::Nic { src, dst } => f.nic[src].max(f.nic[dst]),
                        PriceRes::Bus => f.bus,
                        PriceRes::Mem { node } => f.mem[node],
                    };
                    let a = start.max(floor) + total;
                    f.occupy(res, a);
                    a
                }
            };
            if arrival > clocks[dst] {
                clocks[dst] = arrival;
            }
        }
    }
    clocks.iter().copied().fold(0.0, f64::max)
}

/// Prices every eligible algorithm and returns the predicted-cheapest one
/// with its predicted time. Ties break toward the earlier entry of
/// [`CollectiveAlgo::ALL`], so selection is deterministic — every rank that
/// evaluates the same inputs picks the same algorithm.
///
/// # Panics
/// Panics if `root >= p` (no schedule exists for an out-of-range root);
/// callers with user-supplied roots must validate at their API boundary —
/// the mpisim engine returns `MpiError::InvalidRank` before reaching here.
pub fn select(
    kind: CollectiveKind,
    p: usize,
    root: usize,
    n: usize,
    elem_bytes: f64,
    cost: &impl PairCost,
    sharing: LinkSharing,
) -> (CollectiveAlgo, f64) {
    assert!(root < p, "select: root {root} outside 0..{p}");
    let mut best: Option<(CollectiveAlgo, f64)> = None;
    for algo in algos_for(kind, p) {
        let rounds = schedule(kind, algo, p, root, n).expect("eligible algorithm");
        let t = price(p, &rounds, elem_bytes, cost, sharing);
        if best.is_none_or(|(_, bt)| t < bt) {
            best = Some((algo, t));
        }
    }
    best.expect("Linear is always eligible")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Uniform test network: every pair `lat` seconds away at `bw` B/s.
    struct Uniform {
        lat: f64,
        bw: f64,
    }

    impl PairCost for Uniform {
        fn speed(&self, _p: usize) -> f64 {
            1.0
        }
        fn latency(&self, _s: usize, _d: usize) -> f64 {
            self.lat
        }
        fn bandwidth(&self, _s: usize, _d: usize) -> f64 {
            self.bw
        }
    }

    const TCP: Uniform = Uniform {
        lat: 1.5e-4,
        bw: 11e6,
    };

    /// Replays a data-movement schedule symbolically: every rank's set of
    /// owned element intervals, starting from `init`, must cover `[0, n)`
    /// everywhere at the end. A transfer of elements the sender does not yet
    /// own is a schedule bug.
    fn check_coverage(n: usize, rounds: &[Vec<Xfer>], init: Vec<Vec<(usize, usize)>>) {
        let mut owned = init;
        for round in rounds {
            let snapshot = owned.clone();
            for x in round {
                assert!(
                    snapshot[x.src]
                        .iter()
                        .any(|&(lo, hi)| lo <= x.lo && x.hi <= hi),
                    "rank {} sends [{}, {}) it does not own",
                    x.src,
                    x.lo,
                    x.hi
                );
                owned[x.dst].push((x.lo, x.hi));
            }
            // Coalesce so later rounds can send merged ranges.
            for set in &mut owned {
                set.sort_unstable();
                let mut merged: Vec<(usize, usize)> = Vec::new();
                for &(lo, hi) in set.iter() {
                    match merged.last_mut() {
                        Some(last) if lo <= last.1 => last.1 = last.1.max(hi),
                        _ => merged.push((lo, hi)),
                    }
                }
                *set = merged;
            }
        }
        for (r, set) in owned.iter().enumerate() {
            assert_eq!(set, &vec![(0, n)], "rank {r} did not end with [0, {n})");
        }
    }

    #[test]
    fn bcast_schedules_deliver_everything() {
        for p in [2, 3, 5, 8, 9] {
            for root in [0, p - 1, p / 2] {
                for algo in algos_for(CollectiveKind::Bcast, p) {
                    let n = 40;
                    let rounds = schedule(CollectiveKind::Bcast, algo, p, root, n).unwrap();
                    let mut init = vec![Vec::new(); p];
                    init[root].push((0, n));
                    check_coverage(n, &rounds, init);
                }
            }
        }
    }

    #[test]
    fn allgather_schedules_deliver_everything() {
        for p in [2, 3, 4, 8, 9] {
            for algo in algos_for(CollectiveKind::Allgather, p) {
                let n = 4 * p;
                let rounds = schedule(CollectiveKind::Allgather, algo, p, 0, n).unwrap();
                let init = (0..p)
                    .map(|r| vec![chunk_bounds(n, p, r)])
                    .collect();
                check_coverage(n, &rounds, init);
            }
        }
    }

    #[test]
    fn reduce_schedules_carry_every_contribution_to_root() {
        // Raw-gather reduces: the total element count entering the root must
        // be exactly (p - 1) * n — one full contribution per non-root rank.
        for p in [2, 3, 5, 8, 9] {
            for root in [0, p - 1] {
                for algo in algos_for(CollectiveKind::Reduce, p) {
                    let n = 7;
                    let rounds = schedule(CollectiveKind::Reduce, algo, p, root, n).unwrap();
                    let into_root: usize = rounds
                        .iter()
                        .flatten()
                        .filter(|x| x.dst == root)
                        .map(Xfer::elems)
                        .sum();
                    assert_eq!(into_root, (p - 1) * n, "{} p={p} root={root}", algo.name());
                }
            }
        }
    }

    #[test]
    fn recursive_doubling_requires_power_of_two() {
        assert!(eligible(
            CollectiveKind::Allreduce,
            CollectiveAlgo::RecursiveDoubling,
            8
        ));
        assert!(!eligible(
            CollectiveKind::Allreduce,
            CollectiveAlgo::RecursiveDoubling,
            9
        ));
        assert!(schedule(CollectiveKind::Allreduce, CollectiveAlgo::RecursiveDoubling, 9, 0, 4)
            .is_none());
    }

    #[test]
    fn single_rank_offers_only_an_empty_linear_schedule() {
        for kind in [
            CollectiveKind::Bcast,
            CollectiveKind::Reduce,
            CollectiveKind::Allreduce,
            CollectiveKind::Allgather,
        ] {
            assert_eq!(algos_for(kind, 1), vec![CollectiveAlgo::Linear]);
            assert!(schedule(kind, CollectiveAlgo::Linear, 1, 0, 10)
                .unwrap()
                .is_empty());
        }
    }

    #[test]
    fn binomial_bcast_wins_small_linear_loses_latency() {
        // 1 element over 9 ranks: the linear root pays 8 serial injection
        // latencies; the binomial critical path is 4 rounds.
        let (p, n) = (9, 1);
        let lin = price(
            p,
            &schedule(CollectiveKind::Bcast, CollectiveAlgo::Linear, p, 0, n).unwrap(),
            8.0,
            &TCP,
            LinkSharing::Parallel,
        );
        let bin = price(
            p,
            &schedule(CollectiveKind::Bcast, CollectiveAlgo::Binomial, p, 0, n).unwrap(),
            8.0,
            &TCP,
            LinkSharing::Parallel,
        );
        assert!(bin < lin, "binomial {bin} vs linear {lin}");
        let (chosen, _) = select(CollectiveKind::Bcast, p, 0, n, 8.0, &TCP, LinkSharing::Parallel);
        assert_eq!(chosen, CollectiveAlgo::Binomial);
    }

    #[test]
    fn scatter_allgather_bcast_wins_large_under_parallel_links() {
        // 64 KiB over 9 ranks: two chunk-sized wire times beat one full-size
        // wire time plus the fan-out, and beat four full-size tree hops.
        let (p, n) = (9, 8192); // 8192 f64 = 64 KiB
        let prices: Vec<(CollectiveAlgo, f64)> = algos_for(CollectiveKind::Bcast, p)
            .into_iter()
            .map(|a| {
                let r = schedule(CollectiveKind::Bcast, a, p, 0, n).unwrap();
                (a, price(p, &r, 8.0, &TCP, LinkSharing::Parallel))
            })
            .collect();
        let linear = prices
            .iter()
            .find(|(a, _)| *a == CollectiveAlgo::Linear)
            .unwrap()
            .1;
        let (chosen, t) = select(CollectiveKind::Bcast, p, 0, n, 8.0, &TCP, LinkSharing::Parallel);
        assert_eq!(chosen, CollectiveAlgo::ScatterAllgather, "{prices:?}");
        assert!(t < linear, "selector {t} must beat linear {linear}");
    }

    #[test]
    fn selector_beats_linear_allreduce_at_large_sizes() {
        let (p, n) = (9, 8192);
        let lin = price(
            p,
            &schedule(CollectiveKind::Allreduce, CollectiveAlgo::Linear, p, 0, n).unwrap(),
            8.0,
            &TCP,
            LinkSharing::Parallel,
        );
        let (chosen, t) = select(
            CollectiveKind::Allreduce,
            p,
            0,
            n,
            8.0,
            &TCP,
            LinkSharing::Parallel,
        );
        assert!(t < lin, "selector {t} ({}) must beat linear {lin}", chosen.name());
    }

    #[test]
    fn serialized_nic_changes_the_ranking() {
        // Under parallel links the root's sends all overlap, so the flat
        // linear bcast finishes in roughly one transfer time and beats the
        // binomial tree's log-p sequential stages. Per-endpoint
        // serialisation reverses that: every linear transfer queues on the
        // root's NIC (p-1 back-to-back bandwidth terms) while the binomial
        // tree spreads its sends over distinct endpoints. The pricer must
        // see the flip.
        let (p, n) = (9, 8192);
        let at = |algo, sharing| {
            price(
                p,
                &schedule(CollectiveKind::Bcast, algo, p, 0, n).unwrap(),
                8.0,
                &TCP,
                sharing,
            )
        };
        let lin_par = at(CollectiveAlgo::Linear, LinkSharing::Parallel);
        let bin_par = at(CollectiveAlgo::Binomial, LinkSharing::Parallel);
        let lin_nic = at(CollectiveAlgo::Linear, LinkSharing::PerEndpoint);
        let bin_nic = at(CollectiveAlgo::Binomial, LinkSharing::PerEndpoint);
        assert!(
            lin_par < bin_par,
            "parallel links: overlapped linear {lin_par} should beat binomial {bin_par}"
        );
        assert!(
            bin_nic < lin_nic,
            "serialised NICs: binomial {bin_nic} should beat root-bound linear {lin_nic}"
        );
        // Contention never makes anything cheaper.
        assert!(lin_par <= lin_nic && bin_par <= bin_nic);
    }

    #[test]
    fn empty_payload_prices_to_pure_latency_or_zero() {
        let rounds = schedule(CollectiveKind::Bcast, CollectiveAlgo::ScatterAllgather, 4, 0, 0)
            .unwrap();
        assert!(rounds.iter().all(Vec::is_empty), "no transfers for n = 0");
        assert_eq!(price(4, &rounds, 8.0, &TCP, LinkSharing::Parallel), 0.0);
    }

    #[test]
    fn ring_allreduce_rounds_pipeline_both_directions() {
        // p = 3, chunked into 3: the backward phase must start before the
        // forward phase has drained (pipelining), and every rank other than
        // the tail must receive every finished chunk.
        let p = 3;
        let n = 6;
        let rounds = schedule(CollectiveKind::Allreduce, CollectiveAlgo::Ring, p, 0, n).unwrap();
        let backward_first = rounds
            .iter()
            .position(|r| r.iter().any(|x| x.dst < x.src))
            .unwrap();
        let forward_last = rounds
            .iter()
            .rposition(|r| r.iter().any(|x| x.dst > x.src))
            .unwrap();
        assert!(
            backward_first <= forward_last,
            "backward starts at {backward_first}, forward ends at {forward_last}"
        );
        for r in 0..p - 1 {
            let got: usize = rounds
                .iter()
                .flatten()
                .filter(|x| x.dst == r && x.src == r + 1)
                .map(Xfer::elems)
                .sum();
            assert_eq!(got, n, "rank {r} must receive all finished chunks");
        }
    }

    #[test]
    fn fault_impact_is_empty_without_faults() {
        for kind in [
            CollectiveKind::Bcast,
            CollectiveKind::Reduce,
            CollectiveKind::Allreduce,
            CollectiveKind::Allgather,
        ] {
            for p in [2, 4, 5] {
                for algo in algos_for(kind, p) {
                    let rounds = schedule(kind, algo, p, 0, 16).unwrap();
                    assert_eq!(fault_impact(&rounds, p, &[]), vec![None; p]);
                }
            }
        }
    }

    #[test]
    fn fault_impact_linear_bcast_root_death_reaches_everyone() {
        let rounds = schedule(CollectiveKind::Bcast, CollectiveAlgo::Linear, 4, 0, 8).unwrap();
        assert_eq!(
            fault_impact(&rounds, 4, &[0]),
            vec![Some(0), Some(0), Some(0), Some(0)]
        );
    }

    #[test]
    fn fault_impact_linear_bcast_leaf_death_is_contained() {
        // A dead leaf aborts only the root (its send to the leaf fails);
        // the root sends to ranks 1 and 2 first, so they still get data.
        let rounds = schedule(CollectiveKind::Bcast, CollectiveAlgo::Linear, 4, 0, 8).unwrap();
        assert_eq!(
            fault_impact(&rounds, 4, &[3]),
            vec![Some(3), None, None, Some(3)]
        );
    }

    #[test]
    fn fault_impact_binomial_bcast_blames_along_tree_edges() {
        // Binomial bcast over 8 ranks rooted at 0. Rank 1 is the root's
        // round-1 child, so the root aborts at its very first send and
        // every later tree edge carries poison: the whole tree blames the
        // dead rank. Kill a late leaf (rank 7, fed by 3 in the last round)
        // instead and everyone else finishes.
        let p = 8;
        let rounds = schedule(CollectiveKind::Bcast, CollectiveAlgo::Binomial, p, 0, 8).unwrap();
        assert_eq!(fault_impact(&rounds, p, &[1]), vec![Some(1); p]);
        let impact = fault_impact(&rounds, p, &[7]);
        assert_eq!(impact[7], Some(7));
        assert_eq!(impact[3], Some(7), "rank 7's parent aborts at its send");
        for r in [0, 1, 2, 4, 5, 6] {
            assert_eq!(impact[r], None, "rank {r} is off the failed path");
        }
    }

    #[test]
    fn fault_impact_ring_allreduce_poison_reaches_all_survivors() {
        // The ring's data dependencies pass through every rank, so one
        // death eventually aborts every survivor with the same blame.
        let p = 5;
        let rounds = schedule(CollectiveKind::Allreduce, CollectiveAlgo::Ring, p, 0, 10).unwrap();
        let impact = fault_impact(&rounds, p, &[2]);
        assert_eq!(impact, vec![Some(2); p]);
    }
}

