//! # perfmodel — HMPI's performance-model definition language
//!
//! HMPI "provides a small and dedicated model definition language for
//! specifying this performance model. This language uses most of the features
//! in the specification of network types of the mpC language. A compiler
//! compiles the description of this performance model to generate a set of
//! functions. The functions make up an algorithm-specific part of the HMPI
//! runtime system."
//!
//! This crate is that pipeline, reimplemented in Rust:
//!
//! * [`lexer`] / [`parser`] — turn model source (the paper's Figures 4 and 7
//!   parse verbatim) into an AST;
//! * [`model::CompiledModel`] — the "set of functions": bind parameters with
//!   [`model::CompiledModel::instantiate`] to obtain a
//!   [`model::ModelInstance`] exposing per-processor computation volumes
//!   ([`model::PerformanceModel::volumes`]), pairwise communication volumes
//!   ([`model::PerformanceModel::comm_bytes`]), the parent, and a replayable
//!   interaction pattern ([`model::PerformanceModel::run_scheme`]);
//! * [`scheme`] — the `scheme { ... }` interpreter. Activities
//!   (`e %% [i]` computations and `e %% [i] -> [j]` transfers) are emitted to
//!   a [`scheme::SchemeSink`]; `par` algorithmic patterns fork virtual time.
//!   [`scheme::TimelineSink`] turns the pattern into a predicted execution
//!   time against per-processor speeds and link costs — the engine behind
//!   `HMPI_Timeof` and `HMPI_Group_create`;
//! * [`builder`] — a typed Rust front-end ([`builder::ModelBuilder`])
//!   producing the same [`model::PerformanceModel`] interface without going
//!   through source text;
//! * [`compile`] — the selection engine's fast path: a model's
//!   (assignment-independent) event stream recorded once into a flat
//!   [`compile::CostProgram`] that is re-priced per mapping, with
//!   incremental delta re-pricing for local-search moves.
//!
//! ## Language semantics notes
//!
//! The paper's language is C-flavoured. Two deliberate choices where the
//! paper is silent:
//!
//! 1. **Index/control expressions** (array subscripts, loop bounds, guards)
//!    evaluate in 64-bit integers with C truncating division — `k%l`, `n/l`
//!    behave as a C programmer expects.
//! 2. **Volume and percentage expressions** (the argument of `bench*(...)`,
//!    `length*(...)` and the expression before `%%`) evaluate in `f64` with
//!    true division: the paper writes `(100/n)%%[...]`, which under integer
//!    division would be zero for `n > 100` and make every step free.

#![warn(missing_docs)]

pub mod analysis;
pub mod ast;
pub mod builder;
pub mod collective;
pub mod compile;
pub mod env;
pub mod error;
pub mod eval;
pub mod hier;
pub mod lexer;
pub mod model;
pub mod parser;
pub mod pretty;
pub mod scheme;
pub mod value;

pub use analysis::{analyze, CoverageSink, Finding, ModelReport};
pub use collective::{
    algos_for, chunk_bounds, eligible, price, schedule, select, CollectiveAlgo, CollectiveKind,
    LinkSharing, Xfer,
};
pub use builder::{BuiltModel, ModelBuilder};
pub use compile::{CostProgram, DeltaBaseline, PairCost, PriceScratch};
pub use hier::{plan as hier_plan, GatherXfer, HierPlan, RankTopology};
pub use error::{EvalError, ParseError};
pub use model::{CompiledModel, ModelInstance, ParamValue, PerformanceModel};
pub use parser::parse_program;
pub use scheme::{CostModel, RecordingSink, SchemeEvent, SchemeSink, TimelineSink};
pub use value::Value;
