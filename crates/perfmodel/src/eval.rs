//! Expression evaluation.
//!
//! Two evaluation contexts exist, per the crate-level semantics note:
//! [`eval_int`] (array subscripts, loop control, guards — C integer
//! semantics with truncating division) and [`eval_num`] (volume and
//! percentage expressions — `f64` with true division).

use crate::ast::{BinOp, Expr, UnOp};
use crate::env::Env;
use crate::error::EvalError;
use crate::value::{StructVal, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// What an extern function produced.
#[derive(Debug, Clone)]
pub struct ExternResult {
    /// Value returned in expression position (if any).
    pub ret: Option<Value>,
    /// Values stored into the `&lvalue` out-parameters, in order.
    pub outs: Vec<Value>,
}

/// An extern function: receives the evaluated values of *all* arguments
/// (out-parameters contribute their current value) and returns the values to
/// write back.
pub type ExternFn = Arc<dyn Fn(&[Value]) -> Result<ExternResult, EvalError> + Send + Sync>;

/// Registry of extern functions callable from model source.
#[derive(Clone, Default)]
pub struct Externs {
    fns: HashMap<String, ExternFn>,
}

impl std::fmt::Debug for Externs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Externs")
            .field("names", &self.fns.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Externs {
    /// An empty registry.
    pub fn new() -> Self {
        Externs::default()
    }

    /// The default registry: currently the Figure 7 builtin
    /// [`get_processor`] under the name `GetProcessor`.
    pub fn with_builtins() -> Self {
        let mut e = Externs::new();
        e.register("GetProcessor", Arc::new(get_processor));
        e
    }

    /// Registers (or replaces) a function.
    pub fn register(&mut self, name: impl Into<String>, f: ExternFn) {
        self.fns.insert(name.into(), f);
    }

    /// Looks a function up.
    ///
    /// # Errors
    /// [`EvalError::Undefined`] if absent.
    pub fn get(&self, name: &str) -> Result<&ExternFn, EvalError> {
        self.fns
            .get(name)
            .ok_or_else(|| EvalError::Undefined(format!("extern function {name}")))
    }
}

/// The Figure 7 builtin: `GetProcessor(row, col, m, h, w, &Root)` returns in
/// `Root` the grid coordinates `(I, J)` of the abstract processor whose
/// rectangle of a generalised block contains the `r × r` block at
/// `(row, col)`.
///
/// Column slices have widths `w[J]`; within the column slice `J`, row slices
/// have heights `h[I][J][I][J]`.
///
/// # Errors
/// [`EvalError::ExternError`] on wrong arity/shape or coordinates outside
/// the generalised block.
pub fn get_processor(args: &[Value]) -> Result<ExternResult, EvalError> {
    let fail = |message: String| EvalError::ExternError {
        name: "GetProcessor".into(),
        message,
    };
    if args.len() != 6 {
        return Err(fail(format!("expected 6 arguments, got {}", args.len())));
    }
    let row = args[0].as_int()?;
    let col = args[1].as_int()?;
    let m = args[2].as_int()?;
    let h = args[3].as_array()?;
    let w = args[4].as_array()?;

    // Column slice: smallest J with col < sum(w[0..=J]).
    let mut acc = 0i64;
    let mut grid_j = None;
    for j in 0..m {
        acc += w.get("w", &[j])?;
        if col < acc {
            grid_j = Some(j);
            break;
        }
    }
    let grid_j = grid_j.ok_or_else(|| fail(format!("column {col} beyond the generalised block")))?;

    // Row slice within column grid_j: smallest I with row < sum(h[0..=I][J][..]).
    let mut acc = 0i64;
    let mut grid_i = None;
    for i in 0..m {
        acc += h.get("h", &[i, grid_j, i, grid_j])?;
        if row < acc {
            grid_i = Some(i);
            break;
        }
    }
    let grid_i = grid_i.ok_or_else(|| fail(format!("row {row} beyond the generalised block")))?;

    let mut fields = std::collections::BTreeMap::new();
    fields.insert("I".to_string(), grid_i);
    fields.insert("J".to_string(), grid_j);
    Ok(ExternResult {
        ret: None,
        outs: vec![Value::Struct(StructVal {
            type_name: "Processor".into(),
            fields,
        })],
    })
}

/// C byte size of a named type (`sizeof(double)` in Figure 4/7).
///
/// # Errors
/// [`EvalError::TypeError`] for unknown type names.
pub fn sizeof(ty: &str) -> Result<i64, EvalError> {
    match ty {
        "char" => Ok(1),
        "short" => Ok(2),
        "int" | "float" => Ok(4),
        "long" | "double" => Ok(8),
        other => Err(EvalError::TypeError(format!("sizeof unknown type `{other}`"))),
    }
}

/// Evaluates an expression as a general [`Value`] (needed for extern-call
/// arguments which may be arrays or structs).
///
/// # Errors
/// Any [`EvalError`] raised by sub-evaluation.
pub fn eval_value(env: &Env, externs: &Externs, e: &Expr) -> Result<Value, EvalError> {
    match e {
        Expr::Var(name) => Ok(env.get(name)?.clone()),
        Expr::Member(base, field) => {
            let base = eval_value(env, externs, base)?;
            let s = base.as_struct()?;
            s.fields
                .get(field)
                .copied()
                .map(Value::Int)
                .ok_or_else(|| EvalError::Undefined(format!("field {field}")))
        }
        Expr::Index(..) => Ok(Value::Int(eval_int(env, externs, e)?)),
        _ => Ok(Value::Int(eval_int(env, externs, e)?)),
    }
}

/// Integer-context evaluation (guards, indices, loop control). C semantics:
/// truncating division, comparisons yield 0/1, `&&`/`||` short-circuit over
/// zero/nonzero.
///
/// # Errors
/// [`EvalError::DivisionByZero`], [`EvalError::Undefined`],
/// [`EvalError::TypeError`], [`EvalError::IndexOutOfBounds`].
pub fn eval_int(env: &Env, externs: &Externs, e: &Expr) -> Result<i64, EvalError> {
    match e {
        Expr::Int(n) => Ok(*n),
        Expr::Var(name) => env.get(name)?.as_int(),
        Expr::SizeOf(ty) => sizeof(ty),
        Expr::Member(base, field) => {
            let v = eval_value(env, externs, base)?;
            let s = v.as_struct()?;
            s.fields
                .get(field)
                .copied()
                .ok_or_else(|| EvalError::Undefined(format!("field {field}")))
        }
        Expr::Index(..) => {
            let (name, idx) = collect_index_chain(env, externs, e)?;
            let arr = env.get(&name)?.as_array()?.clone();
            arr.get(&name, &idx)
        }
        Expr::Unary(UnOp::Neg, x) => Ok(-eval_int(env, externs, x)?),
        Expr::Unary(UnOp::Not, x) => Ok(i64::from(eval_int(env, externs, x)? == 0)),
        Expr::Binary(op, a, b) => {
            match op {
                BinOp::And => {
                    return Ok(if eval_int(env, externs, a)? != 0 {
                        i64::from(eval_int(env, externs, b)? != 0)
                    } else {
                        0
                    })
                }
                BinOp::Or => {
                    return Ok(if eval_int(env, externs, a)? != 0 {
                        1
                    } else {
                        i64::from(eval_int(env, externs, b)? != 0)
                    })
                }
                _ => {}
            }
            let x = eval_int(env, externs, a)?;
            let y = eval_int(env, externs, b)?;
            Ok(match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => {
                    if y == 0 {
                        return Err(EvalError::DivisionByZero);
                    }
                    x / y
                }
                BinOp::Rem => {
                    if y == 0 {
                        return Err(EvalError::DivisionByZero);
                    }
                    x % y
                }
                BinOp::Eq => i64::from(x == y),
                BinOp::Ne => i64::from(x != y),
                BinOp::Lt => i64::from(x < y),
                BinOp::Gt => i64::from(x > y),
                BinOp::Le => i64::from(x <= y),
                BinOp::Ge => i64::from(x >= y),
                BinOp::And | BinOp::Or => unreachable!("handled above"),
            })
        }
        Expr::Call(name, args) => {
            let f = externs.get(name)?;
            let vals: Vec<Value> = args
                .iter()
                .map(|a| eval_value(env, externs, a))
                .collect::<Result<_, _>>()?;
            let res = f(&vals)?;
            res.ret
                .ok_or_else(|| EvalError::ExternError {
                    name: name.clone(),
                    message: "used in expression position but returned no value".into(),
                })?
                .as_int()
        }
    }
}

/// Numeric-context evaluation (volumes and percentages): everything promotes
/// to `f64`, `/` is true division.
///
/// # Errors
/// As [`eval_int`]; division by (exact) zero is reported rather than
/// producing infinity.
pub fn eval_num(env: &Env, externs: &Externs, e: &Expr) -> Result<f64, EvalError> {
    match e {
        Expr::Int(n) => Ok(*n as f64),
        Expr::Var(_) | Expr::Member(..) | Expr::Index(..) | Expr::SizeOf(_) | Expr::Call(..) => {
            Ok(eval_int(env, externs, e)? as f64)
        }
        Expr::Unary(UnOp::Neg, x) => Ok(-eval_num(env, externs, x)?),
        Expr::Unary(UnOp::Not, x) => Ok(f64::from(eval_num(env, externs, x)? == 0.0)),
        Expr::Binary(op, a, b) => {
            let x = eval_num(env, externs, a)?;
            let y = eval_num(env, externs, b)?;
            Ok(match op {
                BinOp::Add => x + y,
                BinOp::Sub => x - y,
                BinOp::Mul => x * y,
                BinOp::Div => {
                    if y == 0.0 {
                        return Err(EvalError::DivisionByZero);
                    }
                    x / y
                }
                BinOp::Rem => {
                    if y == 0.0 {
                        return Err(EvalError::DivisionByZero);
                    }
                    x % y
                }
                BinOp::Eq => f64::from(x == y),
                BinOp::Ne => f64::from(x != y),
                BinOp::Lt => f64::from(x < y),
                BinOp::Gt => f64::from(x > y),
                BinOp::Le => f64::from(x <= y),
                BinOp::Ge => f64::from(x >= y),
                BinOp::And => f64::from(x != 0.0 && y != 0.0),
                BinOp::Or => f64::from(x != 0.0 || y != 0.0),
            })
        }
    }
}

/// Peels an `Expr::Index` chain down to `(array name, index vector)`.
fn collect_index_chain(
    env: &Env,
    externs: &Externs,
    e: &Expr,
) -> Result<(String, Vec<i64>), EvalError> {
    let mut indices = Vec::new();
    let mut cur = e;
    loop {
        match cur {
            Expr::Index(base, idx) => {
                indices.push(eval_int(env, externs, idx)?);
                cur = base;
            }
            Expr::Var(name) => {
                indices.reverse();
                return Ok((name.clone(), indices));
            }
            other => {
                return Err(EvalError::TypeError(format!(
                    "cannot index into {other:?}"
                )))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;
    use crate::value::ArrayVal;

    fn expr(src: &str) -> Expr {
        // Wrap in a minimal algorithm so we can reuse the real parser.
        let prog = parse_program(&format!(
            "algorithm T(int p) {{ coord I=p; node {{I>=0: bench*({src});}}; parent[0]; scheme {{;}}; }}"
        ))
        .unwrap();
        prog.algorithms[0].node_rules[0].volume.clone()
    }

    fn env_with(vars: &[(&str, i64)]) -> Env {
        let mut env = Env::new();
        for (n, v) in vars {
            env.declare(*n, Value::Int(*v));
        }
        env
    }

    #[test]
    fn int_arithmetic_is_c_like() {
        let env = env_with(&[("k", 7), ("l", 3)]);
        let ex = Externs::new();
        assert_eq!(eval_int(&env, &ex, &expr("k/l")).unwrap(), 2);
        assert_eq!(eval_int(&env, &ex, &expr("k%l")).unwrap(), 1);
        assert_eq!(eval_int(&env, &ex, &expr("-k+1")).unwrap(), -6);
    }

    #[test]
    fn num_division_is_true_division() {
        let env = env_with(&[("n", 200)]);
        let ex = Externs::new();
        let v = eval_num(&env, &ex, &expr("100/n")).unwrap();
        assert!((v - 0.5).abs() < 1e-12);
        // The same expression in int context is zero: the exact trap the
        // crate-level semantics note documents.
        assert_eq!(eval_int(&env, &ex, &expr("100/n")).unwrap(), 0);
    }

    #[test]
    fn comparisons_and_logic() {
        let env = env_with(&[("I", 2), ("L", 2)]);
        let ex = Externs::new();
        assert_eq!(eval_int(&env, &ex, &expr("I>=0 && I!=L")).unwrap(), 0);
        assert_eq!(eval_int(&env, &ex, &expr("I>=0 || I!=L")).unwrap(), 1);
        assert_eq!(eval_int(&env, &ex, &expr("!(I==L)")).unwrap(), 0);
    }

    #[test]
    fn short_circuit_protects_rhs() {
        // I != 0 && d[I] > 0 with I = -1 must not index d.
        let mut env = env_with(&[("I", -1)]);
        env.declare(
            "d",
            Value::Array(ArrayVal::new(vec![2], vec![5, 6]).unwrap()),
        );
        let ex = Externs::new();
        assert_eq!(eval_int(&env, &ex, &expr("I>=0 && d[I]>0")).unwrap(), 0);
    }

    #[test]
    fn array_indexing_multi_dim() {
        let mut env = env_with(&[("I", 1), ("L", 0)]);
        env.declare(
            "dep",
            Value::Array(ArrayVal::new(vec![2, 2], vec![0, 1, 2, 3]).unwrap()),
        );
        let ex = Externs::new();
        assert_eq!(eval_int(&env, &ex, &expr("dep[I][L]")).unwrap(), 2);
        assert_eq!(
            eval_num(&env, &ex, &expr("dep[I][L]*sizeof(double)")).unwrap(),
            16.0
        );
    }

    #[test]
    fn division_by_zero_reported() {
        let env = env_with(&[("z", 0)]);
        let ex = Externs::new();
        assert_eq!(
            eval_int(&env, &ex, &expr("1/z")),
            Err(EvalError::DivisionByZero)
        );
        assert_eq!(
            eval_num(&env, &ex, &expr("1/z")),
            Err(EvalError::DivisionByZero)
        );
    }

    #[test]
    fn sizeof_table() {
        assert_eq!(sizeof("double").unwrap(), 8);
        assert_eq!(sizeof("int").unwrap(), 4);
        assert_eq!(sizeof("char").unwrap(), 1);
        assert!(sizeof("quux").is_err());
    }

    #[test]
    fn get_processor_builtin_maps_block_coords() {
        // m = 2; widths w = [3, 1] (l = 4); heights in column 0: [1, 3],
        // column 1: [2, 2].
        let m = 2i64;
        // h[I][J][I][J]: only diagonal entries matter here.
        let mut h = vec![0i64; 16];
        let at = |i: usize, j: usize, k: usize, l: usize| ((i * 2 + j) * 2 + k) * 2 + l;
        h[at(0, 0, 0, 0)] = 1;
        h[at(1, 0, 1, 0)] = 3;
        h[at(0, 1, 0, 1)] = 2;
        h[at(1, 1, 1, 1)] = 2;
        let args = |row: i64, col: i64| {
            vec![
                Value::Int(row),
                Value::Int(col),
                Value::Int(m),
                Value::Array(ArrayVal::new(vec![2, 2, 2, 2], h.clone()).unwrap()),
                Value::Array(ArrayVal::new(vec![2], vec![3, 1]).unwrap()),
                Value::Int(0), // placeholder for &Root's current value
            ]
        };
        let coords = |row: i64, col: i64| {
            let res = get_processor(&args(row, col)).unwrap();
            let s = res.outs[0].as_struct().unwrap().clone();
            (s.fields["I"], s.fields["J"])
        };
        assert_eq!(coords(0, 0), (0, 0));
        assert_eq!(coords(0, 2), (0, 0));
        assert_eq!(coords(0, 3), (0, 1));
        assert_eq!(coords(1, 0), (1, 0)); // row 1 is past column-0's first slice (height 1)
        assert_eq!(coords(1, 3), (0, 1)); // column 1's first slice has height 2
        assert_eq!(coords(3, 3), (1, 1));
    }

    #[test]
    fn get_processor_rejects_out_of_block() {
        let args = vec![
            Value::Int(0),
            Value::Int(99),
            Value::Int(1),
            Value::Array(ArrayVal::new(vec![1, 1, 1, 1], vec![1]).unwrap()),
            Value::Array(ArrayVal::new(vec![1], vec![1]).unwrap()),
            Value::Int(0),
        ];
        assert!(matches!(
            get_processor(&args),
            Err(EvalError::ExternError { .. })
        ));
    }
}
