//! Hierarchical (topology-aware) collective planning.
//!
//! A flat pair-table selector treats every rank pair as independent, so on a
//! multi-site testbed it happily schedules p − 1 WAN transfers out of one
//! root. The hierarchical planner instead mirrors the structure MPICH-G2
//! exploits and Barchet-Estefanel & Mounié formalise: partition the ranks
//! into logical homogeneous sub-clusters (memory-bus domain → node → switch
//! → site), run a per-group algorithm at each level, and cross each
//! expensive boundary exactly once per group.
//!
//! The output is a [`HierPlan`]: gather rounds (raw-contribution
//! [`GatherXfer`]s flowing leaders-up) plus movement rounds (ordinary
//! [`Xfer`]s flowing leaders-down or chunks-up). Both phases are priced by
//! the same grant/settle replay as flat schedules ([`price`] over
//! [`HierPlan::xfer_rounds`]), so the contended `timeof` prediction stays
//! bit-exact against the executor.
//!
//! Rank coordinates come from a declared cluster topology when one exists;
//! otherwise [`RankTopology::infer`] recovers sites and switches from the
//! pair table alone by clustering on the largest multiplicative latency gap
//! — the Estefanel–Mounié observation that real hierarchies separate by
//! orders of magnitude, not percentages.

use crate::collective::{
    algos_for, chunk_bounds, price, schedule, CollectiveAlgo, CollectiveKind, LinkSharing, Xfer,
};
use crate::compile::PairCost;
use std::collections::BTreeMap;

/// Ratio two latency scales must differ by before the inference pass calls
/// them separate hierarchy levels. Real site boundaries separate by orders
/// of magnitude; anything tighter is heterogeneity within one level.
const GAP: f64 = 8.0;

/// Per-rank hierarchy coordinates: which site, switch and node host each
/// communicator rank. Produced from a declared cluster topology or by
/// [`RankTopology::infer`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RankTopology {
    /// `site[r]` = the site hosting rank `r`.
    pub site: Vec<usize>,
    /// `switch[r]` = the switch hosting rank `r` (globally numbered).
    pub switch: Vec<usize>,
    /// `node[r]` = the physical node hosting rank `r` (the
    /// [`PairCost::node_of`] index).
    pub node: Vec<usize>,
}

impl RankTopology {
    /// Builds coordinates from explicit per-rank vectors.
    ///
    /// # Panics
    /// Panics if the vectors differ in length.
    pub fn new(site: Vec<usize>, switch: Vec<usize>, node: Vec<usize>) -> Self {
        assert!(
            site.len() == switch.len() && switch.len() == node.len(),
            "rank coordinate vectors must cover the same ranks"
        );
        RankTopology { site, switch, node }
    }

    /// Number of ranks covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.site.len()
    }

    /// True when no ranks are covered.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.site.is_empty()
    }

    /// Recovers hierarchy coordinates from the pair table alone: ranks
    /// sharing a [`PairCost::node_of`] host share a node; sites are the
    /// components left after cutting every pair whose round-trip-symmetric
    /// latency sits above the largest multiplicative gap (≥ [`GAP`]×) in
    /// the sorted latency scale; switches repeat the cut once within each
    /// site. With no such gap every rank shares site 0 / switch 0 — a flat
    /// network stays flat.
    pub fn infer(p: usize, cost: &impl PairCost) -> Self {
        let node: Vec<usize> = (0..p).map(|r| cost.node_of(r)).collect();
        let d = |i: usize, j: usize| cost.latency(i, j).max(cost.latency(j, i));
        let all: Vec<usize> = (0..p).collect();
        let site_groups = gap_split(&all, &node, &d);
        let mut site = vec![0usize; p];
        let mut switch = vec![0usize; p];
        let mut next_switch = 0usize;
        for (s, group) in site_groups.iter().enumerate() {
            for &r in group {
                site[r] = s;
            }
            let switch_groups = gap_split(group, &node, &d);
            for sub in &switch_groups {
                for &r in sub {
                    switch[r] = next_switch;
                }
                next_switch += 1;
            }
        }
        RankTopology { site, switch, node }
    }
}

/// Splits `members` (ascending ranks) into components by cutting every
/// cross-node pair whose distance lies above the largest multiplicative gap
/// in the sorted distance scale, provided that gap is at least [`GAP`]×.
/// Returns one group (no split) when the scale has no such gap. Components
/// are ordered by smallest member.
fn gap_split(
    members: &[usize],
    node: &[usize],
    d: &impl Fn(usize, usize) -> f64,
) -> Vec<Vec<usize>> {
    let mut vals: Vec<f64> = Vec::new();
    for (a, &i) in members.iter().enumerate() {
        for &j in &members[a + 1..] {
            if node[i] != node[j] {
                let v = d(i, j);
                if v > 0.0 && v.is_finite() {
                    vals.push(v);
                }
            }
        }
    }
    vals.sort_by(f64::total_cmp);
    vals.dedup();
    let mut cut = None;
    let mut best = GAP;
    for w in vals.windows(2) {
        let ratio = w[1] / w[0];
        if ratio >= best {
            best = ratio;
            cut = Some((w[0] * w[1]).sqrt());
        }
    }
    let Some(threshold) = cut else {
        return vec![members.to_vec()];
    };
    // Union-find over member positions: same node, or below the cut.
    let m = members.len();
    let mut parent: Vec<usize> = (0..m).collect();
    fn find(parent: &mut [usize], x: usize) -> usize {
        let mut r = x;
        while parent[r] != r {
            parent[r] = parent[parent[r]];
            r = parent[r];
        }
        r
    }
    for a in 0..m {
        for b in a + 1..m {
            let (i, j) = (members[a], members[b]);
            if node[i] == node[j] || d(i, j) < threshold {
                let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
                if ra != rb {
                    parent[ra.max(rb)] = ra.min(rb);
                }
            }
        }
    }
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for (a, &member) in members.iter().enumerate() {
        let root = find(&mut parent, a);
        groups.entry(root).or_default().push(member);
    }
    groups.into_values().collect()
}

/// One scheduled gather transfer: `src` forwards every raw contribution it
/// holds for the ranks in `origins` (ascending) to `dst`. The wire payload
/// is `origins.len() × n` elements; the receiver slots each contribution
/// back under its origin rank so the root can fold in ascending order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GatherXfer {
    /// Sending communicator rank.
    pub src: usize,
    /// Receiving communicator rank.
    pub dst: usize,
    /// Whose contributions the payload carries, ascending.
    pub origins: Vec<usize>,
}

/// A hierarchical collective plan: contribution-gather rounds (leaders-up)
/// followed by movement rounds (chunk exchange and/or leaders-down
/// broadcast). Either phase may be empty — a hierarchical bcast is all
/// movement, a hierarchical reduce all gather.
#[derive(Clone, Debug, PartialEq)]
pub struct HierPlan {
    /// Raw-contribution gather rounds, innermost level first.
    pub gather: Vec<Vec<GatherXfer>>,
    /// Ordinary data-movement rounds, run after the gather phase.
    pub movement: Vec<Vec<Xfer>>,
}

impl HierPlan {
    /// The plan as plain transfer rounds over an `n`-element payload — the
    /// view the pricer replays and the executor's fault contract counts
    /// sends against. Gather transfers appear as `origins.len() × n`
    /// element payloads; empty transfers are dropped, mirroring the flat
    /// schedule builders.
    pub fn xfer_rounds(&self, n: usize) -> Vec<Vec<Xfer>> {
        let mut rounds: Vec<Vec<Xfer>> = self
            .gather
            .iter()
            .map(|round| {
                round
                    .iter()
                    .filter(|g| !g.origins.is_empty() && n > 0 && g.src != g.dst)
                    .map(|g| Xfer {
                        src: g.src,
                        dst: g.dst,
                        lo: 0,
                        hi: g.origins.len() * n,
                    })
                    .collect()
            })
            .collect();
        rounds.extend(self.movement.iter().cloned());
        rounds
    }

    /// Total transfer count, both phases.
    pub fn transfers(&self) -> usize {
        self.gather.iter().map(Vec::len).sum::<usize>()
            + self.movement.iter().map(Vec::len).sum::<usize>()
    }
}

/// Partitions `participants` (ascending) by `key`, groups ordered by
/// smallest member, members ascending.
fn partition<K: Ord>(participants: &[usize], key: impl Fn(usize) -> K) -> Vec<Vec<usize>> {
    let mut map: BTreeMap<K, Vec<usize>> = BTreeMap::new();
    for &r in participants {
        map.entry(key(r)).or_default().push(r);
    }
    let mut groups: Vec<Vec<usize>> = map.into_values().collect();
    groups.sort_by_key(|g| g[0]);
    groups
}

/// The leader a group's traffic funnels through: the root when the group
/// contains it, else the smallest member — deterministic, and the root
/// always ends up leading its whole chain up to the top.
fn leader(group: &[usize], root: usize) -> usize {
    if group.contains(&root) {
        root
    } else {
        group[0]
    }
}

/// The nested level partitions, innermost first: node groups over all
/// ranks, then switch groups over the node leaders, site groups over the
/// switch leaders, and the single top group of site leaders.
fn level_partitions(topo: &RankTopology, root: usize) -> Vec<Vec<Vec<usize>>> {
    let p = topo.len();
    let mut parts: Vec<Vec<Vec<usize>>> = Vec::with_capacity(4);
    let mut participants: Vec<usize> = (0..p).collect();
    let node_groups = partition(&participants, |r| topo.node[r]);
    participants = advance(&node_groups, root);
    parts.push(node_groups);
    let switch_groups = partition(&participants, |r| (topo.site[r], topo.switch[r]));
    participants = advance(&switch_groups, root);
    parts.push(switch_groups);
    let site_groups = partition(&participants, |r| topo.site[r]);
    participants = advance(&site_groups, root);
    parts.push(site_groups);
    parts.push(vec![participants]);
    parts
}

fn advance(groups: &[Vec<usize>], root: usize) -> Vec<usize> {
    let mut leaders: Vec<usize> = groups.iter().map(|g| leader(g, root)).collect();
    leaders.sort_unstable();
    leaders
}

/// Gather rounds for one group under `algo` (Linear or Binomial), starting
/// from the members' current holdings. Linear: every member forwards to the
/// leader in one round. Binomial: the reduce-tree pattern over relative
/// positions `[leader, rest ascending]`, each sender forwarding everything
/// it holds at that point.
fn gather_group(
    algo: CollectiveAlgo,
    group: &[usize],
    root: usize,
    held: &[Vec<usize>],
) -> Vec<Vec<GatherXfer>> {
    let lead = leader(group, root);
    let mut pos: Vec<usize> = Vec::with_capacity(group.len());
    pos.push(lead);
    pos.extend(group.iter().copied().filter(|&r| r != lead));
    let m = pos.len();
    let mut local: Vec<Vec<usize>> = pos.iter().map(|&r| held[r].clone()).collect();
    let mut rounds = Vec::new();
    match algo {
        CollectiveAlgo::Linear => {
            let mut r0 = Vec::new();
            for rel in 1..m {
                r0.push(GatherXfer {
                    src: pos[rel],
                    dst: lead,
                    origins: local[rel].clone(),
                });
            }
            rounds.push(r0);
        }
        CollectiveAlgo::Binomial => {
            let mut span = 1;
            while span < m {
                let mut round = Vec::new();
                let mut moves: Vec<(usize, usize)> = Vec::new();
                let mut rel = span;
                while rel < m {
                    round.push(GatherXfer {
                        src: pos[rel],
                        dst: pos[rel - span],
                        origins: local[rel].clone(),
                    });
                    moves.push((rel, rel - span));
                    rel += span * 2;
                }
                for (from, to) in moves {
                    let mut add = local[from].clone();
                    local[to].append(&mut add);
                    local[to].sort_unstable();
                }
                rounds.push(round);
                span <<= 1;
            }
        }
        _ => unreachable!("gather groups run Linear or Binomial only"),
    }
    rounds
}

/// The gather rounds as contribution-count transfer rounds (for pricing a
/// candidate in isolation).
fn contrib_xfers(rounds: &[Vec<GatherXfer>], n: usize) -> Vec<Vec<Xfer>> {
    rounds
        .iter()
        .map(|round| {
            round
                .iter()
                .filter(|g| !g.origins.is_empty() && n > 0 && g.src != g.dst)
                .map(|g| Xfer {
                    src: g.src,
                    dst: g.dst,
                    lo: 0,
                    hi: g.origins.len() * n,
                })
                .collect()
        })
        .collect()
}

/// The gather rounds as allgather chunk movements: each transfer carries
/// the maximal runs of consecutive origin chunks its sender holds, with
/// real `[lo, hi)` ranges of the `n`-element output buffer.
fn chunk_run_xfers(rounds: &[Vec<GatherXfer>], n: usize, p: usize) -> Vec<Vec<Xfer>> {
    rounds
        .iter()
        .map(|round| {
            let mut out = Vec::new();
            for g in round {
                for (first, last) in consecutive_runs(&g.origins) {
                    let lo = chunk_bounds(n, p, first).0;
                    let hi = chunk_bounds(n, p, last).1;
                    if hi > lo && g.src != g.dst {
                        out.push(Xfer {
                            src: g.src,
                            dst: g.dst,
                            lo,
                            hi,
                        });
                    }
                }
            }
            out
        })
        .collect()
}

/// Maximal runs of consecutive integers in an ascending slice, as
/// `(first, last)` inclusive pairs.
fn consecutive_runs(sorted: &[usize]) -> Vec<(usize, usize)> {
    let mut runs = Vec::new();
    let mut iter = sorted.iter().copied();
    let Some(mut first) = iter.next() else {
        return runs;
    };
    let mut last = first;
    for v in iter {
        if v == last + 1 {
            last = v;
        } else {
            runs.push((first, last));
            first = v;
            last = v;
        }
    }
    runs.push((first, last));
    runs
}

/// Builds one gather stage across `groups`: chooses Linear vs Binomial per
/// group by pricing the candidate in isolation (deterministic; ties break
/// to Linear), merges the chosen per-group rounds positionally so sibling
/// groups overlap, appends to `out`, and folds the transfers into `held`.
#[allow(clippy::too_many_arguments)]
fn gather_stage(
    groups: &[Vec<usize>],
    root: usize,
    held: &mut [Vec<usize>],
    out: &mut Vec<Vec<GatherXfer>>,
    p: usize,
    n: usize,
    elem_bytes: f64,
    cost: &impl PairCost,
    sharing: LinkSharing,
    chunked: bool,
) {
    let mut chosen: Vec<Vec<Vec<GatherXfer>>> = Vec::new();
    for g in groups {
        if g.len() < 2 {
            continue;
        }
        let mut best: Option<(f64, Vec<Vec<GatherXfer>>)> = None;
        for algo in [CollectiveAlgo::Linear, CollectiveAlgo::Binomial] {
            let rounds = gather_group(algo, g, root, held);
            let view = if chunked {
                chunk_run_xfers(&rounds, n, p)
            } else {
                contrib_xfers(&rounds, n)
            };
            let t = price(p, &view, elem_bytes, cost, sharing);
            if best.as_ref().is_none_or(|(bt, _)| t < *bt) {
                best = Some((t, rounds));
            }
        }
        chosen.push(best.expect("two candidates priced").1);
    }
    let depth = chosen.iter().map(Vec::len).max().unwrap_or(0);
    for k in 0..depth {
        let mut round: Vec<GatherXfer> = Vec::new();
        for gr in &chosen {
            if let Some(r) = gr.get(k) {
                round.extend(r.iter().cloned());
            }
        }
        if round.is_empty() {
            continue;
        }
        for g in &round {
            let mut add = g.origins.clone();
            held[g.dst].append(&mut add);
            held[g.dst].sort_unstable();
        }
        out.push(round);
    }
}

/// Builds one broadcast stage across `groups`: the leader fans the full
/// `n`-element payload out to its group, per-group algorithm chosen by
/// pricing every eligible flat bcast schedule remapped onto the group's
/// ranks (ties break in [`CollectiveAlgo::ALL`] order).
#[allow(clippy::too_many_arguments)]
fn bcast_stage(
    groups: &[Vec<usize>],
    root: usize,
    out: &mut Vec<Vec<Xfer>>,
    p: usize,
    n: usize,
    elem_bytes: f64,
    cost: &impl PairCost,
    sharing: LinkSharing,
) {
    let mut chosen: Vec<Vec<Vec<Xfer>>> = Vec::new();
    for g in groups {
        if g.len() < 2 {
            continue;
        }
        let lead = leader(g, root);
        let mut pos: Vec<usize> = Vec::with_capacity(g.len());
        pos.push(lead);
        pos.extend(g.iter().copied().filter(|&r| r != lead));
        let m = pos.len();
        let mut best: Option<(f64, Vec<Vec<Xfer>>)> = None;
        for algo in algos_for(CollectiveKind::Bcast, m) {
            let rounds: Vec<Vec<Xfer>> = schedule(CollectiveKind::Bcast, algo, m, 0, n)
                .expect("eligible algorithm")
                .iter()
                .map(|round| {
                    round
                        .iter()
                        .map(|x| Xfer {
                            src: pos[x.src],
                            dst: pos[x.dst],
                            lo: x.lo,
                            hi: x.hi,
                        })
                        .collect()
                })
                .collect();
            let t = price(p, &rounds, elem_bytes, cost, sharing);
            if best.as_ref().is_none_or(|(bt, _)| t < *bt) {
                best = Some((t, rounds));
            }
        }
        chosen.push(best.expect("Linear is always eligible").1);
    }
    let depth = chosen.iter().map(Vec::len).max().unwrap_or(0);
    for k in 0..depth {
        let mut round: Vec<Xfer> = Vec::new();
        for gr in &chosen {
            if let Some(r) = gr.get(k) {
                round.extend(r.iter().cloned());
            }
        }
        if !round.is_empty() {
            out.push(round);
        }
    }
}

/// Plans a hierarchical schedule for `kind` over `p` ranks with hierarchy
/// coordinates `topo`, or `None` when the hierarchy offers nothing a flat
/// schedule would not (fewer than two levels actually group ranks, a
/// single rank, or an empty payload).
///
/// Shapes (per level, per group, algorithm chosen by pricing):
///
/// * **Bcast** — the root fans out through the leader chain, top level
///   first: across sites, then across each site's switches, each switch's
///   nodes, each node's ranks.
/// * **Reduce** — raw contributions gather leaders-up, innermost first;
///   the root's chain of groups all elect it leader, so it ends up holding
///   every contribution and folds in ascending rank order.
/// * **Allreduce** — a reduce rooted at rank 0 followed by the bcast of
///   the folded result, exactly the flat Linear/Binomial composition.
/// * **Allgather** — chunk runs gather leaders-up (innermost three
///   levels), the site leaders exchange their accumulated runs directly,
///   and the full buffer broadcasts leaders-down.
///
/// The plan is a pure function of its arguments — every rank that plans
/// the same collective over the same cost view emits the identical plan,
/// so no agreement traffic is needed.
///
/// # Panics
/// Panics if `root >= p` or `topo` does not cover exactly `p` ranks.
#[allow(clippy::too_many_arguments)]
pub fn plan(
    kind: CollectiveKind,
    p: usize,
    root: usize,
    n: usize,
    elem_bytes: f64,
    topo: &RankTopology,
    cost: &impl PairCost,
    sharing: LinkSharing,
) -> Option<HierPlan> {
    assert!(root < p.max(1), "plan: root {root} outside 0..{p}");
    assert_eq!(topo.len(), p, "plan: topology covers {} ranks, not {p}", topo.len());
    if p <= 1 || n == 0 {
        return None;
    }
    // Rootless kinds funnel through rank 0, like the flat compositions.
    let root = match kind {
        CollectiveKind::Bcast | CollectiveKind::Reduce => root,
        CollectiveKind::Allreduce | CollectiveKind::Allgather => 0,
    };
    let parts = level_partitions(topo, root);
    let emitting = parts
        .iter()
        .filter(|groups| groups.iter().any(|g| g.len() >= 2))
        .count();
    if emitting < 2 {
        // At most one level does any work: the plan would be a flat
        // schedule the selector already prices.
        return None;
    }
    let mut gather: Vec<Vec<GatherXfer>> = Vec::new();
    let mut movement: Vec<Vec<Xfer>> = Vec::new();
    match kind {
        CollectiveKind::Bcast => {
            for groups in parts.iter().rev() {
                bcast_stage(groups, root, &mut movement, p, n, elem_bytes, cost, sharing);
            }
        }
        CollectiveKind::Reduce => {
            let mut held: Vec<Vec<usize>> = (0..p).map(|r| vec![r]).collect();
            for groups in &parts {
                gather_stage(
                    groups, root, &mut held, &mut gather, p, n, elem_bytes, cost, sharing, false,
                );
            }
        }
        CollectiveKind::Allreduce => {
            let mut held: Vec<Vec<usize>> = (0..p).map(|r| vec![r]).collect();
            for groups in &parts {
                gather_stage(
                    groups, root, &mut held, &mut gather, p, n, elem_bytes, cost, sharing, false,
                );
            }
            for groups in parts.iter().rev() {
                bcast_stage(groups, root, &mut movement, p, n, elem_bytes, cost, sharing);
            }
        }
        CollectiveKind::Allgather => {
            let mut held: Vec<Vec<usize>> = (0..p).map(|r| vec![r]).collect();
            let inner = &parts[..parts.len() - 1];
            let mut up: Vec<Vec<GatherXfer>> = Vec::new();
            for groups in inner {
                gather_stage(
                    groups, root, &mut held, &mut up, p, n, elem_bytes, cost, sharing, true,
                );
            }
            movement.extend(chunk_run_xfers(&up, n, p));
            // Direct exchange among the site leaders: every leader ships
            // the runs it accumulated to every other leader.
            let leaders = &parts[parts.len() - 1][0];
            if leaders.len() >= 2 {
                let mut round = Vec::new();
                for &src in leaders {
                    for (first, last) in consecutive_runs(&held[src]) {
                        let lo = chunk_bounds(n, p, first).0;
                        let hi = chunk_bounds(n, p, last).1;
                        if hi > lo {
                            for &dst in leaders {
                                if dst != src {
                                    round.push(Xfer { src, dst, lo, hi });
                                }
                            }
                        }
                    }
                }
                if !round.is_empty() {
                    movement.push(round);
                }
            }
            for groups in inner.iter().rev() {
                bcast_stage(groups, root, &mut movement, p, n, elem_bytes, cost, sharing);
            }
        }
    }
    if gather.is_empty() && movement.is_empty() {
        return None;
    }
    Some(HierPlan { gather, movement })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Two-site testbed: `sites × per_site` ranks, LAN latency inside a
    /// site, WAN latency (1000×) across.
    struct TwoScale {
        per_site: usize,
        lan: f64,
        wan: f64,
        bw: f64,
    }

    impl TwoScale {
        fn site_of(&self, r: usize) -> usize {
            r / self.per_site
        }
    }

    impl PairCost for TwoScale {
        fn speed(&self, _p: usize) -> f64 {
            1.0
        }
        fn latency(&self, s: usize, d: usize) -> f64 {
            if self.site_of(s) == self.site_of(d) {
                self.lan
            } else {
                self.wan
            }
        }
        fn bandwidth(&self, _s: usize, _d: usize) -> f64 {
            self.bw
        }
    }

    const NET: TwoScale = TwoScale {
        per_site: 4,
        lan: 1e-4,
        wan: 0.1,
        bw: 1e7,
    };

    fn two_site_topo(p: usize) -> RankTopology {
        let site: Vec<usize> = (0..p).map(|r| NET.site_of(r)).collect();
        RankTopology::new(site.clone(), site, (0..p).collect())
    }

    #[test]
    fn infer_recovers_two_sites_from_the_latency_gap() {
        let topo = RankTopology::infer(8, &NET);
        assert_eq!(topo.site, vec![0, 0, 0, 0, 1, 1, 1, 1]);
        // No second-scale gap inside a site: one switch each.
        assert_eq!(topo.switch, vec![0, 0, 0, 0, 1, 1, 1, 1]);
    }

    #[test]
    fn infer_keeps_flat_networks_flat() {
        struct Uniform;
        impl PairCost for Uniform {
            fn speed(&self, _p: usize) -> f64 {
                1.0
            }
            fn latency(&self, _s: usize, _d: usize) -> f64 {
                1.5e-4
            }
            fn bandwidth(&self, _s: usize, _d: usize) -> f64 {
                11e6
            }
        }
        let topo = RankTopology::infer(9, &Uniform);
        assert!(topo.site.iter().all(|&s| s == 0));
        assert!(topo.switch.iter().all(|&s| s == 0));
    }

    #[test]
    fn flat_topology_yields_no_plan() {
        let p = 6;
        let topo = RankTopology::new(vec![0; p], vec![0; p], (0..p).collect());
        for kind in [
            CollectiveKind::Bcast,
            CollectiveKind::Reduce,
            CollectiveKind::Allreduce,
            CollectiveKind::Allgather,
        ] {
            assert!(
                plan(kind, p, 0, 64, 8.0, &topo, &NET, LinkSharing::Parallel).is_none(),
                "{} must not plan hierarchically on a flat topology",
                kind.name()
            );
        }
    }

    #[test]
    fn bcast_plan_crosses_the_site_boundary_once() {
        let p = 8;
        let topo = two_site_topo(p);
        let hp = plan(
            CollectiveKind::Bcast,
            p,
            0,
            1024,
            8.0,
            &topo,
            &NET,
            LinkSharing::Parallel,
        )
        .expect("two emitting levels");
        assert!(hp.gather.is_empty());
        let cross: Vec<&Xfer> = hp
            .movement
            .iter()
            .flatten()
            .filter(|x| NET.site_of(x.src) != NET.site_of(x.dst))
            .collect();
        assert_eq!(cross.len(), 1, "exactly one WAN transfer: {cross:?}");
        assert_eq!((cross[0].src, cross[0].dst), (0, 4));
    }

    #[test]
    fn bcast_plan_covers_every_rank() {
        // Symbolic coverage replay, like the flat schedule tests.
        let p = 8;
        let n = 64;
        let topo = two_site_topo(p);
        let hp = plan(
            CollectiveKind::Bcast,
            p,
            3,
            n,
            8.0,
            &topo,
            &NET,
            LinkSharing::Parallel,
        )
        .unwrap();
        let mut owned: Vec<Vec<(usize, usize)>> = vec![Vec::new(); p];
        owned[3].push((0, n));
        for round in &hp.movement {
            let snapshot = owned.clone();
            for x in round {
                assert!(
                    snapshot[x.src].iter().any(|&(lo, hi)| lo <= x.lo && x.hi <= hi),
                    "rank {} sends [{}, {}) it does not own",
                    x.src,
                    x.lo,
                    x.hi
                );
                owned[x.dst].push((x.lo, x.hi));
            }
            for set in &mut owned {
                set.sort_unstable();
                let mut merged: Vec<(usize, usize)> = Vec::new();
                for &(lo, hi) in set.iter() {
                    match merged.last_mut() {
                        Some(last) if lo <= last.1 => last.1 = last.1.max(hi),
                        _ => merged.push((lo, hi)),
                    }
                }
                *set = merged;
            }
        }
        for (r, set) in owned.iter().enumerate() {
            assert_eq!(set, &vec![(0, n)], "rank {r} did not end with [0, {n})");
        }
    }

    #[test]
    fn reduce_plan_funnels_every_contribution_to_the_root() {
        let p = 8;
        let n = 16;
        for root in [0, 5] {
            let topo = two_site_topo(p);
            let hp = plan(
                CollectiveKind::Reduce,
                p,
                root,
                n,
                8.0,
                &topo,
                &NET,
                LinkSharing::Parallel,
            )
            .unwrap();
            assert!(hp.movement.is_empty());
            // Replay holdings: the root must end holding all p origins.
            let mut held: Vec<Vec<usize>> = (0..p).map(|r| vec![r]).collect();
            for round in &hp.gather {
                for g in round {
                    assert_eq!(
                        g.origins,
                        held[g.src],
                        "transfer must carry exactly the sender's holdings"
                    );
                    let mut add = g.origins.clone();
                    held[g.dst].append(&mut add);
                    held[g.dst].sort_unstable();
                }
            }
            assert_eq!(held[root], (0..p).collect::<Vec<_>>(), "root {root}");
            // One WAN crossing only.
            let cross = hp
                .gather
                .iter()
                .flatten()
                .filter(|g| NET.site_of(g.src) != NET.site_of(g.dst))
                .count();
            assert_eq!(cross, 1);
        }
    }

    #[test]
    fn allgather_plan_delivers_every_chunk_everywhere() {
        let p = 8;
        let n = 8 * p;
        let topo = two_site_topo(p);
        let hp = plan(
            CollectiveKind::Allgather,
            p,
            0,
            n,
            8.0,
            &topo,
            &NET,
            LinkSharing::Parallel,
        )
        .unwrap();
        assert!(hp.gather.is_empty(), "allgather plans are pure movement");
        let mut owned: Vec<Vec<(usize, usize)>> = (0..p)
            .map(|r| vec![chunk_bounds(n, p, r)])
            .collect();
        for round in &hp.movement {
            let snapshot = owned.clone();
            for x in round {
                assert!(
                    snapshot[x.src].iter().any(|&(lo, hi)| lo <= x.lo && x.hi <= hi),
                    "rank {} sends [{}, {}) it does not own",
                    x.src,
                    x.lo,
                    x.hi
                );
                owned[x.dst].push((x.lo, x.hi));
            }
            for set in &mut owned {
                set.sort_unstable();
                let mut merged: Vec<(usize, usize)> = Vec::new();
                for &(lo, hi) in set.iter() {
                    match merged.last_mut() {
                        Some(last) if lo <= last.1 => last.1 = last.1.max(hi),
                        _ => merged.push((lo, hi)),
                    }
                }
                *set = merged;
            }
        }
        for (r, set) in owned.iter().enumerate() {
            assert_eq!(set, &vec![(0, n)], "rank {r} did not end with [0, {n})");
        }
    }

    #[test]
    fn hierarchical_beats_flat_under_nic_contention_across_sites() {
        // Under serialised NICs a flat schedule queues its WAN transfers on
        // the root's NIC; the hierarchical plan crosses the WAN once.
        let p = 8;
        let n = 8192;
        let topo = two_site_topo(p);
        let hp = plan(
            CollectiveKind::Bcast,
            p,
            0,
            n,
            8.0,
            &topo,
            &NET,
            LinkSharing::PerEndpoint,
        )
        .unwrap();
        let hier = price(p, &hp.xfer_rounds(n), 8.0, &NET, LinkSharing::PerEndpoint);
        let (flat_algo, flat) = crate::collective::select(
            CollectiveKind::Bcast,
            p,
            0,
            n,
            8.0,
            &NET,
            LinkSharing::PerEndpoint,
        );
        assert!(
            hier < flat,
            "hierarchical {hier} must beat flat {} ({flat})",
            flat_algo.name()
        );
    }

    #[test]
    fn plans_are_deterministic() {
        let p = 8;
        let topo = two_site_topo(p);
        for kind in [
            CollectiveKind::Bcast,
            CollectiveKind::Reduce,
            CollectiveKind::Allreduce,
            CollectiveKind::Allgather,
        ] {
            let a = plan(kind, p, 0, 256, 8.0, &topo, &NET, LinkSharing::PerEndpoint);
            let b = plan(kind, p, 0, 256, 8.0, &topo, &NET, LinkSharing::PerEndpoint);
            assert_eq!(a, b, "{}", kind.name());
        }
    }

    #[test]
    fn allreduce_plan_is_reduce_then_bcast() {
        let p = 8;
        let n = 32;
        let topo = two_site_topo(p);
        let hp = plan(
            CollectiveKind::Allreduce,
            p,
            0,
            n,
            8.0,
            &topo,
            &NET,
            LinkSharing::Parallel,
        )
        .unwrap();
        assert!(!hp.gather.is_empty() && !hp.movement.is_empty());
        // Gather funnels to rank 0; every movement range is the full buffer
        // fan-out of the folded result.
        let mut held: Vec<Vec<usize>> = (0..p).map(|r| vec![r]).collect();
        for round in &hp.gather {
            for g in round {
                let mut add = g.origins.clone();
                held[g.dst].append(&mut add);
                held[g.dst].sort_unstable();
            }
        }
        assert_eq!(held[0], (0..p).collect::<Vec<_>>());
        assert!(hp
            .movement
            .iter()
            .flatten()
            .all(|x| x.lo == 0 && x.hi == n));
    }

    #[test]
    fn mem_bus_only_structure_plans_node_then_network() {
        // Two nodes × two co-located ranks, one site: the node level and
        // the top level both emit — the PR 8 memory-bus domain is the
        // innermost hierarchy level.
        let topo = RankTopology::new(vec![0; 4], vec![0; 4], vec![0, 0, 1, 1]);
        struct BusNet;
        impl PairCost for BusNet {
            fn speed(&self, _p: usize) -> f64 {
                1.0
            }
            fn latency(&self, s: usize, d: usize) -> f64 {
                if s / 2 == d / 2 {
                    1e-6
                } else {
                    1e-4
                }
            }
            fn bandwidth(&self, s: usize, d: usize) -> f64 {
                if s / 2 == d / 2 {
                    1e10
                } else {
                    1e7
                }
            }
            fn node_of(&self, proc: usize) -> usize {
                proc / 2
            }
        }
        let hp = plan(
            CollectiveKind::Reduce,
            4,
            0,
            16,
            8.0,
            &topo,
            &BusNet,
            LinkSharing::Parallel,
        )
        .expect("node + top levels emit");
        // Stage 1: within-node gathers (1→0, 3→2); stage 2: node leaders.
        let flat: Vec<(usize, usize)> = hp
            .gather
            .iter()
            .flatten()
            .map(|g| (g.src, g.dst))
            .collect();
        assert_eq!(flat, vec![(1, 0), (3, 2), (2, 0)]);
    }
}
