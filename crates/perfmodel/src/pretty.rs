//! Pretty-printer: AST back to model source.
//!
//! Useful for tooling (dumping a programmatically assembled model, error
//! reporting) and for testing the parser: `parse(print(parse(src)))` must
//! equal `parse(src)` for every model we ship (round-trip tests live in
//! `tests/paper_models.rs`).

use crate::ast::*;
use std::fmt::Write;

/// Renders a whole program.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for td in &p.typedefs {
        let _ = write!(out, "typedef struct {{");
        for f in &td.fields {
            let _ = write!(out, "int {f}; ");
        }
        let _ = writeln!(out, "}} {};", td.name);
    }
    for a in &p.algorithms {
        out.push_str(&print_algorithm(a));
    }
    out
}

/// Renders one algorithm definition.
pub fn print_algorithm(a: &AlgorithmDef) -> String {
    let mut out = String::new();
    let params: Vec<String> = a
        .params
        .iter()
        .map(|p| {
            let dims: String = p.dims.iter().map(|d| format!("[{}]", print_expr(d))).collect();
            format!("int {}{dims}", p.name)
        })
        .collect();
    let _ = writeln!(out, "algorithm {}({}) {{", a.name, params.join(", "));

    let coords: Vec<String> = a
        .coords
        .iter()
        .map(|(n, e)| format!("{n}={}", print_expr(e)))
        .collect();
    let _ = writeln!(out, "  coord {};", coords.join(", "));

    if !a.node_rules.is_empty() {
        let _ = writeln!(out, "  node {{");
        for r in &a.node_rules {
            let _ = writeln!(
                out,
                "    {}: bench*({});",
                print_expr(&r.guard),
                print_expr(&r.volume)
            );
        }
        let _ = writeln!(out, "  }};");
    }

    if !a.link_rules.is_empty() {
        let binders: Vec<String> = a
            .link_binders
            .iter()
            .map(|(n, e)| format!("{n}={}", print_expr(e)))
            .collect();
        if binders.is_empty() {
            let _ = writeln!(out, "  link {{");
        } else {
            let _ = writeln!(out, "  link ({}) {{", binders.join(", "));
        }
        for r in &a.link_rules {
            let _ = writeln!(
                out,
                "    {}: length*({}) [{}] -> [{}];",
                print_expr(&r.guard),
                print_expr(&r.volume),
                print_exprs(&r.src),
                print_exprs(&r.dst)
            );
        }
        let _ = writeln!(out, "  }};");
    }

    if !a.parent.is_empty() {
        let _ = writeln!(out, "  parent[{}];", print_exprs(&a.parent));
    }

    let _ = writeln!(out, "  scheme {{");
    for s in &a.scheme {
        out.push_str(&print_stmt(s, 2));
    }
    let _ = writeln!(out, "  }};");
    let _ = writeln!(out, "}}");
    out
}

fn print_exprs(es: &[Expr]) -> String {
    es.iter().map(print_expr).collect::<Vec<_>>().join(", ")
}

fn indent(depth: usize) -> String {
    "  ".repeat(depth)
}

/// Renders a statement at the given indentation depth.
pub fn print_stmt(s: &Stmt, depth: usize) -> String {
    let pad = indent(depth);
    match s {
        Stmt::Empty => format!("{pad};\n"),
        Stmt::Block(body) => {
            let mut out = format!("{pad}{{\n");
            for st in body {
                out.push_str(&print_stmt(st, depth + 1));
            }
            out.push_str(&format!("{pad}}}\n"));
            out
        }
        Stmt::Decl { ty, vars } => {
            let vs: Vec<String> = vars
                .iter()
                .map(|(n, init)| match init {
                    Some(e) => format!("{n} = {}", print_expr(e)),
                    None => n.clone(),
                })
                .collect();
            format!("{pad}{ty} {};\n", vs.join(", "))
        }
        Stmt::Assign { lv, op, rhs } => {
            let op_str = match op {
                AssignOp::Set => "=",
                AssignOp::Add => "+=",
                AssignOp::Sub => "-=",
                AssignOp::Mul => "*=",
            };
            format!("{pad}{} {op_str} {};\n", print_lvalue(lv), print_expr(rhs))
        }
        Stmt::For {
            init,
            cond,
            step,
            body,
        }
        | Stmt::Par {
            init,
            cond,
            step,
            body,
        } => {
            let kw = if matches!(s, Stmt::For { .. }) { "for" } else { "par" };
            let init_s = init.as_ref().map_or(String::new(), |i| print_header_stmt(i));
            let cond_s = cond.as_ref().map_or(String::new(), print_expr);
            let step_s = step.as_ref().map_or(String::new(), |i| print_header_stmt(i));
            let mut out = format!("{pad}{kw} ({init_s}; {cond_s}; {step_s})\n");
            out.push_str(&print_stmt(body, depth + 1));
            out
        }
        Stmt::If { cond, then, els } => {
            let mut out = format!("{pad}if ({})\n", print_expr(cond));
            out.push_str(&print_stmt(then, depth + 1));
            if let Some(e) = els {
                out.push_str(&format!("{pad}else\n"));
                out.push_str(&print_stmt(e, depth + 1));
            }
            out
        }
        Stmt::Compute { percent, proc } => {
            format!("{pad}({}) %% [{}];\n", print_expr(percent), print_exprs(proc))
        }
        Stmt::Transfer { percent, src, dst } => format!(
            "{pad}({}) %% [{}] -> [{}];\n",
            print_expr(percent),
            print_exprs(src),
            print_exprs(dst)
        ),
        Stmt::CallStmt { name, args } => {
            let rendered: Vec<String> = args
                .iter()
                .map(|a| match a {
                    CallArg::Value(e) => print_expr(e),
                    CallArg::OutRef(lv) => format!("&{}", print_lvalue(lv)),
                })
                .collect();
            format!("{pad}{name}({});\n", rendered.join(", "))
        }
    }
}

/// Renders the assignment inside a `for`/`par` header (no semicolon).
fn print_header_stmt(s: &Stmt) -> String {
    match s {
        Stmt::Assign { lv, op, rhs } => {
            let op_str = match op {
                AssignOp::Set => "=",
                AssignOp::Add => "+=",
                AssignOp::Sub => "-=",
                AssignOp::Mul => "*=",
            };
            format!("{} {op_str} {}", print_lvalue(lv), print_expr(rhs))
        }
        other => print_stmt(other, 0).trim_end().trim_end_matches(';').to_string(),
    }
}

fn print_lvalue(lv: &LValue) -> String {
    match lv {
        LValue::Var(n) => n.clone(),
        LValue::Member(n, f) => format!("{n}.{f}"),
    }
}

/// Renders an expression (fully parenthesised where precedence matters).
pub fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Int(n) => n.to_string(),
        Expr::Var(n) => n.clone(),
        Expr::Member(base, f) => format!("{}.{f}", print_expr(base)),
        Expr::Index(base, idx) => format!("{}[{}]", print_expr(base), print_expr(idx)),
        Expr::Unary(UnOp::Neg, x) => format!("(-{})", print_expr(x)),
        Expr::Unary(UnOp::Not, x) => format!("(!{})", print_expr(x)),
        Expr::Binary(op, a, b) => {
            let sym = match op {
                BinOp::Add => "+",
                BinOp::Sub => "-",
                BinOp::Mul => "*",
                BinOp::Div => "/",
                BinOp::Rem => "%",
                BinOp::Eq => "==",
                BinOp::Ne => "!=",
                BinOp::Lt => "<",
                BinOp::Gt => ">",
                BinOp::Le => "<=",
                BinOp::Ge => ">=",
                BinOp::And => "&&",
                BinOp::Or => "||",
            };
            format!("({} {sym} {})", print_expr(a), print_expr(b))
        }
        Expr::SizeOf(ty) => format!("sizeof({ty})"),
        Expr::Call(name, args) => format!("{name}({})", print_exprs(args)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    #[test]
    fn simple_roundtrip() {
        let src = r"
            algorithm T(int p, int d[p]) {
                coord I=p;
                node {I>=0: bench*(d[I]);};
                link (L=p) { I!=L: length*(d[I]*8) [I]->[L]; };
                parent[0];
                scheme {
                    int i;
                    par (i = 0; i < p; i++) 100%%[i];
                };
            }
        ";
        let ast1 = parse_program(src).unwrap();
        let printed = print_program(&ast1);
        let ast2 = parse_program(&printed).unwrap();
        assert_eq!(ast1, ast2, "printed:\n{printed}");
    }

    #[test]
    fn expr_precedence_is_preserved_by_parens() {
        let src = r"
            algorithm T(int a, int b, int c) {
                coord I=1;
                node {I>=0: bench*(a+b*c);};
                parent[0];
                scheme {;};
            }
        ";
        let ast1 = parse_program(src).unwrap();
        let printed = print_program(&ast1);
        let ast2 = parse_program(&printed).unwrap();
        assert_eq!(
            ast1.algorithms[0].node_rules[0].volume,
            ast2.algorithms[0].node_rules[0].volume
        );
    }

    #[test]
    fn statements_roundtrip() {
        let src = r"
            typedef struct {int I; int J;} Processor;
            algorithm T(int m, int w[m], int h[m][m][m][m]) {
                coord I=m, J=m;
                node {I>=0 && J>=0: bench*(1);};
                parent[0,0];
                scheme {
                    int k;
                    Processor Root;
                    for (k = 0; k < m; k++) {
                        int a = k%2, b;
                        GetProcessor(0, a, m, h, w, &Root);
                        if (Root.I != 0)
                            (100/m)%%[Root.I, Root.J];
                        else
                            b = 1;
                        b += a;
                        Root.J++;
                    }
                };
            }
        ";
        let ast1 = parse_program(src).unwrap();
        let printed = print_program(&ast1);
        let ast2 = parse_program(&printed).unwrap();
        assert_eq!(ast1, ast2, "printed:\n{printed}");
    }
}
