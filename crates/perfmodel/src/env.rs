//! Lexically scoped variable environments for model evaluation.

use crate::error::EvalError;
use crate::value::Value;
use std::collections::HashMap;

/// A stack of scopes. Parameters and coordinate variables live in the
/// outermost scope; scheme blocks push and pop inner scopes.
#[derive(Debug, Default)]
pub struct Env {
    scopes: Vec<HashMap<String, Value>>,
}

impl Env {
    /// An environment with a single (global) scope.
    pub fn new() -> Self {
        Env {
            scopes: vec![HashMap::new()],
        }
    }

    /// Enters a nested scope.
    pub fn push(&mut self) {
        self.scopes.push(HashMap::new());
    }

    /// Leaves the innermost scope.
    ///
    /// # Panics
    /// Panics if only the global scope remains (interpreter bug).
    pub fn pop(&mut self) {
        assert!(self.scopes.len() > 1, "cannot pop the global scope");
        self.scopes.pop();
    }

    /// Declares a variable in the innermost scope (shadowing outer ones).
    pub fn declare(&mut self, name: impl Into<String>, value: Value) {
        self.scopes
            .last_mut()
            .expect("at least the global scope exists")
            .insert(name.into(), value);
    }

    /// Looks a name up, innermost scope first.
    ///
    /// # Errors
    /// [`EvalError::Undefined`] if not found.
    pub fn get(&self, name: &str) -> Result<&Value, EvalError> {
        self.scopes
            .iter()
            .rev()
            .find_map(|s| s.get(name))
            .ok_or_else(|| EvalError::Undefined(name.to_string()))
    }

    /// Mutable lookup, innermost scope first.
    ///
    /// # Errors
    /// [`EvalError::Undefined`] if not found.
    pub fn get_mut(&mut self, name: &str) -> Result<&mut Value, EvalError> {
        self.scopes
            .iter_mut()
            .rev()
            .find_map(|s| s.get_mut(name))
            .ok_or_else(|| EvalError::Undefined(name.to_string()))
    }

    /// Assigns to an existing variable (the innermost binding).
    ///
    /// # Errors
    /// [`EvalError::Undefined`] if the name was never declared.
    pub fn assign(&mut self, name: &str, value: Value) -> Result<(), EvalError> {
        *self.get_mut(name)? = value;
        Ok(())
    }

    /// True if the name is bound in any scope.
    pub fn is_bound(&self, name: &str) -> bool {
        self.scopes.iter().rev().any(|s| s.contains_key(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declare_and_get() {
        let mut env = Env::new();
        env.declare("x", Value::Int(3));
        assert_eq!(env.get("x").unwrap().as_int().unwrap(), 3);
        assert!(env.get("y").is_err());
    }

    #[test]
    fn inner_scope_shadows_and_pops() {
        let mut env = Env::new();
        env.declare("x", Value::Int(1));
        env.push();
        env.declare("x", Value::Int(2));
        assert_eq!(env.get("x").unwrap().as_int().unwrap(), 2);
        env.pop();
        assert_eq!(env.get("x").unwrap().as_int().unwrap(), 1);
    }

    #[test]
    fn assign_updates_innermost_binding() {
        let mut env = Env::new();
        env.declare("x", Value::Int(1));
        env.push();
        env.assign("x", Value::Int(9)).unwrap();
        env.pop();
        assert_eq!(env.get("x").unwrap().as_int().unwrap(), 9);
    }

    #[test]
    fn assign_to_undeclared_fails() {
        let mut env = Env::new();
        assert!(env.assign("nope", Value::Int(0)).is_err());
    }

    #[test]
    #[should_panic]
    fn popping_global_scope_panics() {
        let mut env = Env::new();
        env.pop();
    }
}
