//! Compiled performance models.
//!
//! "A compiler compiles the description of this performance model to
//! generate a set of functions. The functions make up an algorithm-specific
//! part of the HMPI runtime system." — [`CompiledModel`] is the compiled
//! artefact; binding actual parameters ([`CompiledModel::instantiate`],
//! mirroring `HMPI_Pack_model_parameters`) yields a [`ModelInstance`] whose
//! [`PerformanceModel`] methods are exactly those generated functions:
//! per-processor computation volumes, pairwise communication volumes, the
//! parent, and the replayable interaction scheme.

use crate::ast::{AlgorithmDef, Program};
use crate::env::Env;
use crate::error::{EvalError, ParseError};
use crate::eval::{eval_int, eval_num, Externs};
use crate::parser::parse_program;
use crate::scheme::{run_scheme, CostModel, SchemeSink, TimelineSink};
use crate::value::{ArrayVal, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// An actual parameter supplied at instantiation.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// A scalar `int` parameter.
    Int(i64),
    /// A (possibly multi-dimensional) `int` array parameter, flattened
    /// row-major; the declared dimensions are checked at binding time.
    Array(Vec<i64>),
}

impl From<i64> for ParamValue {
    fn from(v: i64) -> Self {
        ParamValue::Int(v)
    }
}

impl From<Vec<i64>> for ParamValue {
    fn from(v: Vec<i64>) -> Self {
        ParamValue::Array(v)
    }
}

/// The generated functions every performance model exposes, whatever
/// front-end produced it (parsed source via [`CompiledModel`], or the typed
/// [`crate::builder::ModelBuilder`]).
pub trait PerformanceModel: Send + Sync {
    /// Model name (for diagnostics).
    fn name(&self) -> &str;
    /// Number of abstract processors (the product of coordinate extents).
    fn num_processors(&self) -> usize;
    /// Total computation volume of each abstract processor, in benchmark
    /// units, indexed linearly.
    fn volumes(&self) -> &[f64];
    /// Total bytes transferred between each ordered pair of abstract
    /// processors.
    fn comm_bytes(&self) -> &[Vec<f64>];
    /// Linear index of the parent processor.
    fn parent(&self) -> usize;
    /// Replays the interaction pattern into `sink`.
    ///
    /// # Errors
    /// Propagates evaluation errors from the scheme body.
    fn run_scheme(&self, sink: &mut dyn SchemeSink) -> Result<(), EvalError>;

    /// Predicted execution time against a cost model: builds a
    /// [`TimelineSink`], replays the scheme, returns the makespan in seconds.
    ///
    /// # Errors
    /// As [`PerformanceModel::run_scheme`].
    fn predict_time(&self, cost: &CostModel) -> Result<f64, EvalError> {
        let mut sink = TimelineSink::new(
            cost.clone(),
            self.volumes().to_vec(),
            self.comm_bytes().to_vec(),
        );
        self.run_scheme(&mut sink)?;
        Ok(sink.total_time())
    }
}

/// A compiled (parsed and checked) model definition, ready to be
/// instantiated with actual parameters any number of times.
///
/// ```
/// use perfmodel::{CompiledModel, CostModel, ParamValue, PerformanceModel};
///
/// let model = CompiledModel::compile(r"
///     algorithm Jobs(int p, int work[p]) {
///         coord I=p;
///         node {I>=0: bench*(work[I]);};
///         parent[0];
///         scheme {
///             int i;
///             par (i = 0; i < p; i++) 100%%[i];
///         };
///     }
/// ").unwrap();
/// let inst = model
///     .instantiate(&[ParamValue::Int(2), ParamValue::Array(vec![30, 60])])
///     .unwrap();
/// assert_eq!(inst.volumes(), &[30.0, 60.0]);
/// // Two processors of speed 30: the 60-unit one paces the program.
/// let t = inst
///     .predict_time(&CostModel::homogeneous(2, 30.0, 0.0, 1e9))
///     .unwrap();
/// assert!((t - 2.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct CompiledModel {
    algorithm: Arc<AlgorithmDef>,
    structs: Arc<HashMap<String, Vec<String>>>,
    externs: Externs,
}

impl CompiledModel {
    /// Compiles the first `algorithm` in `src`, with the builtin externs
    /// (`GetProcessor`) available.
    ///
    /// # Errors
    /// [`ParseError`] on syntax errors or if no algorithm is present.
    pub fn compile(src: &str) -> Result<CompiledModel, ParseError> {
        Self::compile_named(src, None)
    }

    /// Compiles the algorithm called `name` from `src` (a file may define
    /// several).
    ///
    /// # Errors
    /// [`ParseError`] if the algorithm is missing.
    pub fn compile_named(src: &str, name: Option<&str>) -> Result<CompiledModel, ParseError> {
        let program: Program = parse_program(src)?;
        let structs: HashMap<String, Vec<String>> = program
            .typedefs
            .iter()
            .map(|t| (t.name.clone(), t.fields.clone()))
            .collect();
        let algorithm = match name {
            None => program
                .algorithms
                .into_iter()
                .next()
                .ok_or_else(|| ParseError::new("source defines no algorithm", 1, 1))?,
            Some(n) => program
                .algorithms
                .into_iter()
                .find(|a| a.name == n)
                .ok_or_else(|| ParseError::new(format!("no algorithm named `{n}`"), 1, 1))?,
        };
        Ok(CompiledModel {
            algorithm: Arc::new(algorithm),
            structs: Arc::new(structs),
            externs: Externs::with_builtins(),
        })
    }

    /// The model's name.
    pub fn name(&self) -> &str {
        &self.algorithm.name
    }

    /// Formal parameter names, in order.
    pub fn param_names(&self) -> Vec<&str> {
        self.algorithm.params.iter().map(|p| p.name.as_str()).collect()
    }

    /// Replaces the extern-function registry (to provide custom functions to
    /// schemes).
    pub fn with_externs(mut self, externs: Externs) -> Self {
        self.externs = externs;
        self
    }

    /// Binds actual parameters, evaluates the `coord`, `node`, `link` and
    /// `parent` sections, and returns the instance.
    ///
    /// # Errors
    /// [`EvalError::BadParameters`] on arity/shape mismatches; other
    /// [`EvalError`]s from section evaluation.
    pub fn instantiate(&self, params: &[ParamValue]) -> Result<ModelInstance, EvalError> {
        let alg = &self.algorithm;
        if params.len() != alg.params.len() {
            return Err(EvalError::BadParameters(format!(
                "model `{}` takes {} parameters, got {}",
                alg.name,
                alg.params.len(),
                params.len()
            )));
        }

        // Bind parameters left-to-right; array dims may reference earlier
        // parameters (e.g. `int d[p]` after `int p`).
        let mut env = Env::new();
        let mut bindings: Vec<(String, Value)> = Vec::with_capacity(params.len());
        for (decl, actual) in alg.params.iter().zip(params) {
            let value = match (&decl.dims.is_empty(), actual) {
                (true, ParamValue::Int(v)) => Value::Int(*v),
                (false, ParamValue::Array(data)) => {
                    let mut dims = Vec::with_capacity(decl.dims.len());
                    for d in &decl.dims {
                        let extent = eval_int(&env, &self.externs, d)?;
                        if extent <= 0 {
                            return Err(EvalError::BadParameters(format!(
                                "dimension of `{}` evaluated to {extent}",
                                decl.name
                            )));
                        }
                        dims.push(extent as usize);
                    }
                    Value::Array(ArrayVal::new(dims, data.clone())?)
                }
                (true, ParamValue::Array(_)) => {
                    return Err(EvalError::BadParameters(format!(
                        "parameter `{}` is scalar but an array was supplied",
                        decl.name
                    )))
                }
                (false, ParamValue::Int(_)) => {
                    return Err(EvalError::BadParameters(format!(
                        "parameter `{}` is an array but a scalar was supplied",
                        decl.name
                    )))
                }
            };
            env.declare(decl.name.clone(), value.clone());
            bindings.push((decl.name.clone(), value));
        }

        // Coordinate space.
        let mut extents = Vec::with_capacity(alg.coords.len());
        for (cname, e) in &alg.coords {
            let extent = eval_int(&env, &self.externs, e)?;
            if extent <= 0 {
                return Err(EvalError::BadParameters(format!(
                    "coordinate `{cname}` has non-positive extent {extent}"
                )));
            }
            extents.push(extent as usize);
        }
        let n: usize = extents.iter().product();

        // Node volumes: for each processor, the first matching rule.
        let mut volumes = vec![0.0f64; n];
        for (linear, vol) in volumes.iter_mut().enumerate() {
            env.push();
            bind_coords(&mut env, &alg.coords, &extents, linear);
            for rule in &alg.node_rules {
                if eval_int(&env, &self.externs, &rule.guard)? != 0 {
                    *vol = eval_num(&env, &self.externs, &rule.volume)?;
                    break;
                }
            }
            env.pop();
        }

        // Link volumes: iterate the coordinate space x the binder space.
        let mut comm = vec![vec![0.0f64; n]; n];
        let binder_extents: Vec<usize> = {
            let mut v = Vec::with_capacity(alg.link_binders.len());
            for (bname, e) in &alg.link_binders {
                let extent = eval_int(&env, &self.externs, e)?;
                if extent <= 0 {
                    return Err(EvalError::BadParameters(format!(
                        "link binder `{bname}` has non-positive extent {extent}"
                    )));
                }
                v.push(extent as usize);
            }
            v
        };
        let binder_total: usize = binder_extents.iter().product::<usize>().max(1);
        for linear in 0..n {
            for bflat in 0..binder_total {
                env.push();
                bind_coords(&mut env, &alg.coords, &extents, linear);
                // Unflatten the binder tuple (row-major like coordinates).
                let mut rem = bflat;
                for (i, (bname, _)) in alg.link_binders.iter().enumerate().rev() {
                    let extent = binder_extents[i];
                    env.declare(bname.clone(), Value::Int((rem % extent) as i64));
                    rem /= extent;
                }
                for rule in &alg.link_rules {
                    if eval_int(&env, &self.externs, &rule.guard)? != 0 {
                        let src = linearise(&env, &self.externs, &rule.src, &extents)?;
                        let dst = linearise(&env, &self.externs, &rule.dst, &extents)?;
                        let vol = eval_num(&env, &self.externs, &rule.volume)?;
                        // Link rules *define* pair volumes (a rule not
                        // mentioning some binder matches once per binding of
                        // it); assignment rather than accumulation keeps
                        // those duplicates harmless.
                        comm[src][dst] = vol;
                    }
                }
                env.pop();
            }
        }

        // Parent.
        let parent = if alg.parent.is_empty() {
            0
        } else {
            linearise(&env, &self.externs, &alg.parent, &extents)?
        };

        Ok(ModelInstance {
            name: alg.name.clone(),
            algorithm: self.algorithm.clone(),
            structs: self.structs.clone(),
            externs: self.externs.clone(),
            bindings,
            extents,
            volumes,
            comm,
            parent,
        })
    }
}

fn bind_coords(env: &mut Env, coords: &[(String, crate::ast::Expr)], extents: &[usize], linear: usize) {
    let mut rem = linear;
    let mut vals = vec![0i64; coords.len()];
    for i in (0..coords.len()).rev() {
        vals[i] = (rem % extents[i]) as i64;
        rem /= extents[i];
    }
    for ((name, _), v) in coords.iter().zip(vals) {
        env.declare(name.clone(), Value::Int(v));
    }
}

fn linearise(
    env: &Env,
    externs: &Externs,
    coords: &[crate::ast::Expr],
    extents: &[usize],
) -> Result<usize, EvalError> {
    if coords.len() != extents.len() {
        return Err(EvalError::BadProcessor(format!(
            "{} coordinates given, {} expected",
            coords.len(),
            extents.len()
        )));
    }
    let mut linear = 0usize;
    for (e, &extent) in coords.iter().zip(extents) {
        let c = eval_int(env, externs, e)?;
        if c < 0 || c as usize >= extent {
            return Err(EvalError::BadProcessor(format!(
                "coordinate {c} outside 0..{extent}"
            )));
        }
        linear = linear * extent + c as usize;
    }
    Ok(linear)
}

/// A model with bound parameters — the algorithm-specific part of the HMPI
/// runtime system.
#[derive(Debug, Clone)]
pub struct ModelInstance {
    name: String,
    algorithm: Arc<AlgorithmDef>,
    structs: Arc<HashMap<String, Vec<String>>>,
    externs: Externs,
    bindings: Vec<(String, Value)>,
    extents: Vec<usize>,
    volumes: Vec<f64>,
    comm: Vec<Vec<f64>>,
    parent: usize,
}

impl ModelInstance {
    /// The coordinate extents (e.g. `[p]` or `[m, m]`).
    pub fn extents(&self) -> &[usize] {
        &self.extents
    }

    /// Converts a linear index to coordinates.
    pub fn coords_of(&self, linear: usize) -> Vec<usize> {
        let mut rem = linear;
        let mut out = vec![0usize; self.extents.len()];
        for i in (0..self.extents.len()).rev() {
            out[i] = rem % self.extents[i];
            rem /= self.extents[i];
        }
        out
    }

    /// Converts coordinates to a linear index.
    ///
    /// # Panics
    /// Panics on out-of-range coordinates.
    pub fn linear_of(&self, coords: &[usize]) -> usize {
        assert_eq!(coords.len(), self.extents.len());
        coords
            .iter()
            .zip(&self.extents)
            .fold(0, |acc, (&c, &e)| {
                assert!(c < e, "coordinate {c} outside 0..{e}");
                acc * e + c
            })
    }
}

impl PerformanceModel for ModelInstance {
    fn name(&self) -> &str {
        &self.name
    }

    fn num_processors(&self) -> usize {
        self.volumes.len()
    }

    fn volumes(&self) -> &[f64] {
        &self.volumes
    }

    fn comm_bytes(&self) -> &[Vec<f64>] {
        &self.comm
    }

    fn parent(&self) -> usize {
        self.parent
    }

    fn run_scheme(&self, sink: &mut dyn SchemeSink) -> Result<(), EvalError> {
        let mut env = Env::new();
        for (name, value) in &self.bindings {
            env.declare(name.clone(), value.clone());
        }
        // Coordinate variables are in scope (initialised to 0) so schemes may
        // reuse them as loop variables.
        for (cname, _) in &self.algorithm.coords {
            env.declare(cname.clone(), Value::Int(0));
        }
        if self.algorithm.scheme.is_empty() {
            // Default pattern: all transfers in parallel, then all
            // computations in parallel (one step of a bulk-synchronous
            // algorithm).
            sink.par_begin();
            for s in 0..self.num_processors() {
                for d in 0..self.num_processors() {
                    if s != d && self.comm[s][d] > 0.0 {
                        sink.transfer(s, d, 100.0);
                    }
                }
                sink.par_branch();
            }
            sink.par_end();
            sink.par_begin();
            for p in 0..self.num_processors() {
                sink.compute(p, 100.0);
                sink.par_branch();
            }
            sink.par_end();
            return Ok(());
        }
        run_scheme(
            &self.algorithm.scheme,
            &mut env,
            &self.externs,
            &self.structs,
            &self.extents,
            sink,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheme::RecordingSink;

    const EM3D_LIKE: &str = r"
        algorithm Em3d(int p, int k, int d[p], int dep[p][p]) {
            coord I=p;
            node {I>=0: bench*(d[I]/k);};
            link (L=p) {
                I>=0 && I!=L && (dep[I][L] > 0) :
                    length*(dep[I][L]*sizeof(double)) [L]->[I];
            };
            parent[0];
            scheme {
                int current, owner, remote;
                par (owner = 0; owner < p; owner++)
                    par (remote = 0; remote < p; remote++)
                        if ((owner != remote) && (dep[owner][remote] > 0))
                            100%%[remote]->[owner];
                par (current = 0; current < p; current++) 100%%[current];
            };
        }
    ";

    fn em3d_instance() -> ModelInstance {
        let model = CompiledModel::compile(EM3D_LIKE).unwrap();
        // p=3, k=10, d=[100, 200, 300], dep row-major 3x3.
        model
            .instantiate(&[
                ParamValue::Int(3),
                ParamValue::Int(10),
                ParamValue::Array(vec![100, 200, 300]),
                ParamValue::Array(vec![0, 5, 0, 5, 0, 7, 0, 7, 0]),
            ])
            .unwrap()
    }

    #[test]
    fn node_volumes_follow_d_over_k() {
        let inst = em3d_instance();
        assert_eq!(inst.num_processors(), 3);
        assert_eq!(inst.volumes(), &[10.0, 20.0, 30.0]);
        assert_eq!(inst.parent(), 0);
    }

    #[test]
    fn link_volumes_follow_dep_times_sizeof_double() {
        let inst = em3d_instance();
        let comm = inst.comm_bytes();
        // dep[I][L] counts values I needs from L; data flows L -> I.
        assert_eq!(comm[1][0], 40.0); // dep[0][1] = 5 doubles from 1 to 0
        assert_eq!(comm[0][1], 40.0); // dep[1][0] = 5
        assert_eq!(comm[2][1], 56.0); // dep[1][2] = 7
        assert_eq!(comm[1][2], 56.0); // dep[2][1] = 7
        assert_eq!(comm[0][2], 0.0);
        assert_eq!(comm[2][0], 0.0);
        assert_eq!(comm[0][0], 0.0);
    }

    #[test]
    fn scheme_replays_transfers_then_computes() {
        let inst = em3d_instance();
        let mut sink = RecordingSink::default();
        inst.run_scheme(&mut sink).unwrap();
        use crate::scheme::SchemeEvent as E;
        let transfers: Vec<_> = sink
            .events
            .iter()
            .filter_map(|e| match e {
                E::Transfer { src, dst, .. } => Some((*src, *dst)),
                _ => None,
            })
            .collect();
        assert_eq!(transfers, vec![(1, 0), (0, 1), (2, 1), (1, 2)]);
        let computes = sink
            .events
            .iter()
            .filter(|e| matches!(e, E::Compute { .. }))
            .count();
        assert_eq!(computes, 3);
    }

    #[test]
    fn predict_time_balances_by_speed() {
        let inst = em3d_instance();
        // Fast enough network that compute dominates: volumes 10/20/30 on
        // speeds 10/20/30 -> one second each, total 1 s.
        let cost = CostModel {
            speeds: vec![10.0, 20.0, 30.0],
            latency: vec![vec![0.0; 3]; 3],
            bandwidth: vec![vec![1e12; 3]; 3],
        };
        let t = inst.predict_time(&cost).unwrap();
        assert!((t - 1.0).abs() < 1e-9);

        // Same volumes on a uniform speed-10 machine: the 30-unit processor
        // dominates at 3 s.
        let cost = CostModel::homogeneous(3, 10.0, 0.0, 1e12);
        let t = inst.predict_time(&cost).unwrap();
        assert!((t - 3.0).abs() < 1e-9);
    }

    #[test]
    fn wrong_arity_and_shape_rejected() {
        let model = CompiledModel::compile(EM3D_LIKE).unwrap();
        assert!(matches!(
            model.instantiate(&[ParamValue::Int(3)]),
            Err(EvalError::BadParameters(_))
        ));
        assert!(matches!(
            model.instantiate(&[
                ParamValue::Int(3),
                ParamValue::Int(10),
                ParamValue::Array(vec![1, 2]), // wrong length for d[3]
                ParamValue::Array(vec![0; 9]),
            ]),
            Err(EvalError::BadParameters(_))
        ));
        assert!(matches!(
            model.instantiate(&[
                ParamValue::Int(3),
                ParamValue::Array(vec![1]), // scalar expected
                ParamValue::Array(vec![1, 2, 3]),
                ParamValue::Array(vec![0; 9]),
            ]),
            Err(EvalError::BadParameters(_))
        ));
    }

    #[test]
    fn two_dim_coordinate_space() {
        let src = r"
            algorithm Grid(int m, int work[m][m]) {
                coord I=m, J=m;
                node {I>=0 && J>=0: bench*(work[I][J]);};
                parent[0,0];
                scheme {;};
            }
        ";
        let model = CompiledModel::compile(src).unwrap();
        let inst = model
            .instantiate(&[
                ParamValue::Int(2),
                ParamValue::Array(vec![1, 2, 3, 4]),
            ])
            .unwrap();
        assert_eq!(inst.num_processors(), 4);
        assert_eq!(inst.volumes(), &[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(inst.coords_of(2), vec![1, 0]);
        assert_eq!(inst.linear_of(&[1, 1]), 3);
    }

    #[test]
    fn compile_named_selects_algorithm() {
        let src = r"
            algorithm A(int p) { coord I=p; node {I>=0: bench*(1);}; parent[0]; scheme {;}; }
            algorithm B(int p) { coord I=p; node {I>=0: bench*(2);}; parent[0]; scheme {;}; }
        ";
        let m = CompiledModel::compile_named(src, Some("B")).unwrap();
        assert_eq!(m.name(), "B");
        assert!(CompiledModel::compile_named(src, Some("C")).is_err());
    }

    #[test]
    fn empty_scheme_uses_default_pattern() {
        let src = r"
            algorithm D(int p, int dep[p][p]) {
                coord I=p;
                node {I>=0: bench*(10);};
                link (L=p) {
                    I>=0 && I!=L && dep[I][L] > 0 :
                        length*(dep[I][L]) [L]->[I];
                };
                parent[0];
            }
        ";
        let model = CompiledModel::compile(src).unwrap();
        let inst = model
            .instantiate(&[ParamValue::Int(2), ParamValue::Array(vec![0, 8, 8, 0])])
            .unwrap();
        let mut sink = RecordingSink::default();
        inst.run_scheme(&mut sink).unwrap();
        use crate::scheme::SchemeEvent as E;
        assert!(sink.events.iter().any(|e| matches!(e, E::Transfer { .. })));
        assert_eq!(
            sink.events
                .iter()
                .filter(|e| matches!(e, E::Compute { .. }))
                .count(),
            2
        );
    }
}
