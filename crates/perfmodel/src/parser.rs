//! Recursive-descent parser for the model-definition language.
//!
//! The grammar covers exactly what the paper's Figures 4 and 7 use:
//! `typedef struct`, `algorithm` with `coord` / `node` / `link` / `parent` /
//! `scheme` sections, C-style expressions, `for`/`par`/`if` statements,
//! declarations with initialisers, extern calls with `&` out-parameters, and
//! `%%` activity steps.

use crate::ast::*;
use crate::error::ParseError;
use crate::lexer::{lex, Spanned, Tok};
use std::collections::HashSet;

/// Parses a complete model source file.
///
/// # Errors
/// [`ParseError`] with source position on any syntax error.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        struct_names: HashSet::new(),
    };
    p.program()
}

struct Parser {
    toks: Vec<Spanned>,
    pos: usize,
    struct_names: HashSet<String>,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].tok
    }

    fn here(&self) -> (usize, usize) {
        let s = &self.toks[self.pos];
        (s.line, s.col)
    }

    fn err(&self, msg: impl Into<String>) -> ParseError {
        let (line, col) = self.here();
        ParseError::new(msg, line, col)
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, want: &Tok) -> Result<(), ParseError> {
        if self.peek() == want {
            self.bump();
            Ok(())
        } else {
            Err(self.err(format!("expected {want}, found {}", self.peek())))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> Result<(), ParseError> {
        match self.peek() {
            Tok::Ident(s) if s == kw => {
                self.bump();
                Ok(())
            }
            other => Err(self.err(format!("expected keyword `{kw}`, found {other}"))),
        }
    }

    fn is_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) => {
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected identifier, found {other}"))),
        }
    }

    // ----- top level --------------------------------------------------------

    fn program(&mut self) -> Result<Program, ParseError> {
        let mut typedefs = Vec::new();
        let mut algorithms = Vec::new();
        while self.peek() != &Tok::Eof {
            if self.is_kw("typedef") {
                let td = self.typedef()?;
                self.struct_names.insert(td.name.clone());
                typedefs.push(td);
            } else if self.is_kw("algorithm") {
                algorithms.push(self.algorithm()?);
            } else {
                return Err(self.err(format!(
                    "expected `typedef` or `algorithm`, found {}",
                    self.peek()
                )));
            }
        }
        Ok(Program {
            typedefs,
            algorithms,
        })
    }

    fn typedef(&mut self) -> Result<StructDef, ParseError> {
        self.eat_kw("typedef")?;
        self.eat_kw("struct")?;
        self.eat(&Tok::LBrace)?;
        let mut fields = Vec::new();
        while self.peek() != &Tok::RBrace {
            self.eat_kw("int")?;
            fields.push(self.ident()?);
            self.eat(&Tok::Semi)?;
        }
        self.eat(&Tok::RBrace)?;
        let name = self.ident()?;
        self.eat(&Tok::Semi)?;
        Ok(StructDef { name, fields })
    }

    fn algorithm(&mut self) -> Result<AlgorithmDef, ParseError> {
        self.eat_kw("algorithm")?;
        let name = self.ident()?;
        self.eat(&Tok::LParen)?;
        let mut params = Vec::new();
        if self.peek() != &Tok::RParen {
            loop {
                self.eat_kw("int")?;
                let pname = self.ident()?;
                let mut dims = Vec::new();
                while self.peek() == &Tok::LBracket {
                    self.bump();
                    dims.push(self.expr()?);
                    self.eat(&Tok::RBracket)?;
                }
                params.push(ParamDecl { name: pname, dims });
                if self.peek() == &Tok::Comma {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.eat(&Tok::RParen)?;
        self.eat(&Tok::LBrace)?;

        let mut coords = Vec::new();
        let mut node_rules = Vec::new();
        let mut link_binders = Vec::new();
        let mut link_rules = Vec::new();
        let mut parent = Vec::new();
        let mut scheme = Vec::new();

        while self.peek() != &Tok::RBrace {
            if self.is_kw("coord") {
                self.bump();
                loop {
                    let cname = self.ident()?;
                    self.eat(&Tok::Assign)?;
                    let extent = self.expr()?;
                    coords.push((cname, extent));
                    if self.peek() == &Tok::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.eat(&Tok::Semi)?;
            } else if self.is_kw("node") {
                self.bump();
                self.eat(&Tok::LBrace)?;
                while self.peek() != &Tok::RBrace {
                    let guard = self.expr()?;
                    self.eat(&Tok::Colon)?;
                    self.eat_kw("bench")?;
                    let volume = if self.peek() == &Tok::Star {
                        self.bump();
                        self.eat(&Tok::LParen)?;
                        let v = self.expr()?;
                        self.eat(&Tok::RParen)?;
                        v
                    } else {
                        Expr::Int(1)
                    };
                    self.eat(&Tok::Semi)?;
                    node_rules.push(NodeRule { guard, volume });
                }
                self.eat(&Tok::RBrace)?;
                self.eat(&Tok::Semi)?;
            } else if self.is_kw("link") {
                self.bump();
                if self.peek() == &Tok::LParen {
                    self.bump();
                    loop {
                        let bname = self.ident()?;
                        self.eat(&Tok::Assign)?;
                        let extent = self.expr()?;
                        link_binders.push((bname, extent));
                        if self.peek() == &Tok::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.eat(&Tok::RParen)?;
                }
                self.eat(&Tok::LBrace)?;
                while self.peek() != &Tok::RBrace {
                    let guard = self.expr()?;
                    self.eat(&Tok::Colon)?;
                    self.eat_kw("length")?;
                    self.eat(&Tok::Star)?;
                    self.eat(&Tok::LParen)?;
                    let volume = self.expr()?;
                    self.eat(&Tok::RParen)?;
                    self.eat(&Tok::LBracket)?;
                    let src = self.expr_list(&Tok::RBracket)?;
                    self.eat(&Tok::RBracket)?;
                    self.eat(&Tok::Arrow)?;
                    self.eat(&Tok::LBracket)?;
                    let dst = self.expr_list(&Tok::RBracket)?;
                    self.eat(&Tok::RBracket)?;
                    self.eat(&Tok::Semi)?;
                    link_rules.push(LinkRule {
                        guard,
                        volume,
                        src,
                        dst,
                    });
                }
                self.eat(&Tok::RBrace)?;
                self.eat(&Tok::Semi)?;
            } else if self.is_kw("parent") {
                self.bump();
                self.eat(&Tok::LBracket)?;
                parent = self.expr_list(&Tok::RBracket)?;
                self.eat(&Tok::RBracket)?;
                self.eat(&Tok::Semi)?;
            } else if self.is_kw("scheme") {
                self.bump();
                self.eat(&Tok::LBrace)?;
                while self.peek() != &Tok::RBrace {
                    scheme.push(self.stmt()?);
                }
                self.eat(&Tok::RBrace)?;
                self.eat(&Tok::Semi)?;
            } else {
                return Err(self.err(format!(
                    "expected a section (coord/node/link/parent/scheme), found {}",
                    self.peek()
                )));
            }
        }
        self.eat(&Tok::RBrace)?;
        // Figure 7 closes the algorithm with `};`.
        if self.peek() == &Tok::Semi {
            self.bump();
        }

        if coords.is_empty() {
            return Err(self.err(format!("algorithm `{name}` has no coord declaration")));
        }
        Ok(AlgorithmDef {
            name,
            params,
            coords,
            node_rules,
            link_binders,
            link_rules,
            parent,
            scheme,
        })
    }

    fn expr_list(&mut self, terminator: &Tok) -> Result<Vec<Expr>, ParseError> {
        let mut out = Vec::new();
        if self.peek() == terminator {
            return Ok(out);
        }
        loop {
            out.push(self.expr()?);
            if self.peek() == &Tok::Comma {
                self.bump();
            } else {
                break;
            }
        }
        Ok(out)
    }

    // ----- statements -------------------------------------------------------

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        match self.peek().clone() {
            Tok::Semi => {
                self.bump();
                Ok(Stmt::Empty)
            }
            Tok::LBrace => {
                self.bump();
                let mut body = Vec::new();
                while self.peek() != &Tok::RBrace {
                    body.push(self.stmt()?);
                }
                self.eat(&Tok::RBrace)?;
                Ok(Stmt::Block(body))
            }
            Tok::Ident(kw) if kw == "for" || kw == "par" => {
                self.bump();
                self.eat(&Tok::LParen)?;
                let init = if self.peek() == &Tok::Semi {
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                self.eat(&Tok::Semi)?;
                let cond = if self.peek() == &Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.eat(&Tok::Semi)?;
                let step = if self.peek() == &Tok::RParen {
                    None
                } else {
                    Some(Box::new(self.simple_stmt()?))
                };
                self.eat(&Tok::RParen)?;
                let body = Box::new(self.stmt()?);
                Ok(if kw == "for" {
                    Stmt::For {
                        init,
                        cond,
                        step,
                        body,
                    }
                } else {
                    Stmt::Par {
                        init,
                        cond,
                        step,
                        body,
                    }
                })
            }
            Tok::Ident(kw) if kw == "if" => {
                self.bump();
                self.eat(&Tok::LParen)?;
                let cond = self.expr()?;
                self.eat(&Tok::RParen)?;
                let then = Box::new(self.stmt()?);
                let els = if self.is_kw("else") {
                    self.bump();
                    Some(Box::new(self.stmt()?))
                } else {
                    None
                };
                Ok(Stmt::If { cond, then, els })
            }
            Tok::Ident(ty) if ty == "int" || self.struct_names.contains(&ty) => {
                self.bump();
                let mut vars = Vec::new();
                loop {
                    let name = self.ident()?;
                    let init = if self.peek() == &Tok::Assign {
                        self.bump();
                        Some(self.expr()?)
                    } else {
                        None
                    };
                    vars.push((name, init));
                    if self.peek() == &Tok::Comma {
                        self.bump();
                    } else {
                        break;
                    }
                }
                self.eat(&Tok::Semi)?;
                Ok(Stmt::Decl { ty, vars })
            }
            Tok::Ident(name) if self.peek2() == &Tok::LParen => {
                // Extern call statement, possibly with & out-parameters.
                self.bump();
                self.bump();
                let mut args = Vec::new();
                if self.peek() != &Tok::RParen {
                    loop {
                        if self.peek() == &Tok::Amp {
                            self.bump();
                            let lv = self.lvalue()?;
                            args.push(CallArg::OutRef(lv));
                        } else {
                            args.push(CallArg::Value(self.expr()?));
                        }
                        if self.peek() == &Tok::Comma {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                }
                self.eat(&Tok::RParen)?;
                self.eat(&Tok::Semi)?;
                Ok(Stmt::CallStmt { name, args })
            }
            _ => {
                // Expression-led: activity, or assignment.
                let e = self.expr()?;
                match self.peek().clone() {
                    Tok::PercentPercent => {
                        self.bump();
                        self.eat(&Tok::LBracket)?;
                        let first = self.expr_list(&Tok::RBracket)?;
                        self.eat(&Tok::RBracket)?;
                        if self.peek() == &Tok::Arrow {
                            self.bump();
                            self.eat(&Tok::LBracket)?;
                            let dst = self.expr_list(&Tok::RBracket)?;
                            self.eat(&Tok::RBracket)?;
                            self.eat(&Tok::Semi)?;
                            Ok(Stmt::Transfer {
                                percent: e,
                                src: first,
                                dst,
                            })
                        } else {
                            self.eat(&Tok::Semi)?;
                            Ok(Stmt::Compute {
                                percent: e,
                                proc: first,
                            })
                        }
                    }
                    _ => self.finish_assignment(e),
                }
            }
        }
    }

    /// An assignment without the trailing semicolon (for `for`/`par` headers)
    /// or a full assignment statement when called from `stmt`.
    fn simple_stmt(&mut self) -> Result<Stmt, ParseError> {
        let e = self.expr()?;
        self.assignment_after(e)
    }

    fn finish_assignment(&mut self, e: Expr) -> Result<Stmt, ParseError> {
        let s = self.assignment_after(e)?;
        self.eat(&Tok::Semi)?;
        Ok(s)
    }

    fn assignment_after(&mut self, e: Expr) -> Result<Stmt, ParseError> {
        let op = match self.peek() {
            Tok::Assign => AssignOp::Set,
            Tok::PlusAssign => AssignOp::Add,
            Tok::MinusAssign => AssignOp::Sub,
            Tok::StarAssign => AssignOp::Mul,
            Tok::Incr => {
                self.bump();
                return Ok(Stmt::Assign {
                    lv: self.as_lvalue(e)?,
                    op: AssignOp::Add,
                    rhs: Expr::Int(1),
                });
            }
            Tok::Decr => {
                self.bump();
                return Ok(Stmt::Assign {
                    lv: self.as_lvalue(e)?,
                    op: AssignOp::Sub,
                    rhs: Expr::Int(1),
                });
            }
            other => {
                return Err(self.err(format!(
                    "expected an assignment operator or `%%`, found {other}"
                )))
            }
        };
        self.bump();
        let rhs = self.expr()?;
        Ok(Stmt::Assign {
            lv: self.as_lvalue(e)?,
            op,
            rhs,
        })
    }

    fn as_lvalue(&self, e: Expr) -> Result<LValue, ParseError> {
        match e {
            Expr::Var(name) => Ok(LValue::Var(name)),
            Expr::Member(base, field) => match *base {
                Expr::Var(name) => Ok(LValue::Member(name, field)),
                _ => Err(self.err("only `var.field` member assignment is supported")),
            },
            _ => Err(self.err("expression is not assignable")),
        }
    }

    fn lvalue(&mut self) -> Result<LValue, ParseError> {
        let name = self.ident()?;
        if self.peek() == &Tok::Dot {
            self.bump();
            let field = self.ident()?;
            Ok(LValue::Member(name, field))
        } else {
            Ok(LValue::Var(name))
        }
    }

    // ----- expressions ------------------------------------------------------

    fn expr(&mut self) -> Result<Expr, ParseError> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.and_expr()?;
        while self.peek() == &Tok::OrOr {
            self.bump();
            let rhs = self.and_expr()?;
            lhs = Expr::Binary(BinOp::Or, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn and_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.cmp_expr()?;
        while self.peek() == &Tok::AndAnd {
            self.bump();
            let rhs = self.cmp_expr()?;
            lhs = Expr::Binary(BinOp::And, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn cmp_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.add_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Eq => BinOp::Eq,
                Tok::Ne => BinOp::Ne,
                Tok::Lt => BinOp::Lt,
                Tok::Gt => BinOp::Gt,
                Tok::Le => BinOp::Le,
                Tok::Ge => BinOp::Ge,
                _ => break,
            };
            self.bump();
            let rhs = self.add_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn add_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.mul_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Plus => BinOp::Add,
                Tok::Minus => BinOp::Sub,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn mul_expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.unary_expr()?;
        loop {
            let op = match self.peek() {
                Tok::Star => BinOp::Mul,
                Tok::Slash => BinOp::Div,
                Tok::Percent => BinOp::Rem,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            lhs = Expr::Binary(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek() {
            Tok::Minus => {
                self.bump();
                Ok(Expr::Unary(UnOp::Neg, Box::new(self.unary_expr()?)))
            }
            Tok::Not => {
                self.bump();
                Ok(Expr::Unary(UnOp::Not, Box::new(self.unary_expr()?)))
            }
            _ => self.postfix_expr(),
        }
    }

    fn postfix_expr(&mut self) -> Result<Expr, ParseError> {
        let mut e = self.primary_expr()?;
        loop {
            match self.peek() {
                Tok::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.eat(&Tok::RBracket)?;
                    e = Expr::Index(Box::new(e), Box::new(idx));
                }
                Tok::Dot => {
                    self.bump();
                    let field = self.ident()?;
                    e = Expr::Member(Box::new(e), field);
                }
                _ => break,
            }
        }
        Ok(e)
    }

    fn primary_expr(&mut self) -> Result<Expr, ParseError> {
        match self.peek().clone() {
            Tok::Int(n) => {
                self.bump();
                Ok(Expr::Int(n))
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.eat(&Tok::RParen)?;
                Ok(e)
            }
            Tok::Ident(name) if name == "sizeof" => {
                self.bump();
                self.eat(&Tok::LParen)?;
                let ty = self.ident()?;
                self.eat(&Tok::RParen)?;
                Ok(Expr::SizeOf(ty))
            }
            Tok::Ident(name) => {
                self.bump();
                if self.peek() == &Tok::LParen {
                    self.bump();
                    let args = self.expr_list(&Tok::RParen)?;
                    self.eat(&Tok::RParen)?;
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(self.err(format!("expected an expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_algorithm() {
        let src = r"
            algorithm Tiny(int p) {
                coord I=p;
                node {I>=0: bench*(1);};
                parent[0];
                scheme {
                    par (I = 0; I < p; I++) 100%%[I];
                };
            }
        ";
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.algorithms.len(), 1);
        let a = &prog.algorithms[0];
        assert_eq!(a.name, "Tiny");
        assert_eq!(a.coords.len(), 1);
        assert_eq!(a.node_rules.len(), 1);
        assert_eq!(a.parent, vec![Expr::Int(0)]);
        assert_eq!(a.scheme.len(), 1);
    }

    #[test]
    fn parses_link_section_with_binder() {
        let src = r"
            algorithm L(int p, int dep[p][p]) {
                coord I=p;
                node {I>=0: bench*(1);};
                link (L=p) {
                    I>=0 && I!=L && (dep[I][L] > 0) :
                        length*(dep[I][L]*sizeof(double)) [L]->[I];
                };
                parent[0];
                scheme { 100%%[0]; };
            }
        ";
        let prog = parse_program(src).unwrap();
        let a = &prog.algorithms[0];
        assert_eq!(a.link_binders, vec![("L".to_string(), Expr::Var("p".into()))]);
        assert_eq!(a.link_rules.len(), 1);
        let r = &a.link_rules[0];
        assert_eq!(r.src, vec![Expr::Var("L".into())]);
        assert_eq!(r.dst, vec![Expr::Var("I".into())]);
    }

    #[test]
    fn parses_typedef_and_member_access() {
        let src = r"
            typedef struct {int I; int J;} Processor;
            algorithm G(int m) {
                coord I=m, J=m;
                node {I>=0 && J>=0: bench*(1);};
                parent[0,0];
                scheme {
                    Processor Root;
                    Root.I = 0;
                    par(Root.J = 0; Root.J < m; Root.J++)
                        (100/m)%%[Root.I, Root.J];
                };
            }
        ";
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.typedefs[0].name, "Processor");
        assert_eq!(prog.typedefs[0].fields, vec!["I", "J"]);
        let a = &prog.algorithms[0];
        assert_eq!(a.coords.len(), 2);
        assert_eq!(a.parent.len(), 2);
    }

    #[test]
    fn parses_call_statement_with_outref() {
        let src = r"
            typedef struct {int I; int J;} Processor;
            algorithm C(int m) {
                coord I=m;
                node {I>=0: bench*(1);};
                parent[0];
                scheme {
                    Processor Root;
                    GetProcessor(0, 0, m, &Root);
                };
            }
        ";
        let prog = parse_program(src).unwrap();
        match &prog.algorithms[0].scheme[1] {
            Stmt::CallStmt { name, args } => {
                assert_eq!(name, "GetProcessor");
                assert_eq!(args.len(), 4);
                assert!(matches!(args[3], CallArg::OutRef(LValue::Var(ref v)) if v == "Root"));
            }
            other => panic!("expected call stmt, got {other:?}"),
        }
    }

    #[test]
    fn parses_for_with_compound_assign_in_body() {
        let src = r"
            algorithm F(int n) {
                coord I=n;
                node {I>=0: bench*(1);};
                parent[0];
                scheme {
                    int k;
                    for (k = 0; k < n; k++) {
                        int a = k%2, b;
                        b = 0;
                        b += a;
                        (100/n)%%[0];
                    }
                };
            }
        ";
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.algorithms[0].scheme.len(), 2);
    }

    #[test]
    fn parses_par_with_empty_step() {
        let src = r"
            algorithm P(int l) {
                coord I=l;
                node {I>=0: bench*(1);};
                parent[0];
                scheme {
                    int Arow;
                    par(Arow = 0; Arow < l; ) {
                        100%%[0];
                        Arow += 2;
                    }
                };
            }
        ";
        let prog = parse_program(src).unwrap();
        match &prog.algorithms[0].scheme[1] {
            Stmt::Par { step, .. } => assert!(step.is_none()),
            other => panic!("expected par, got {other:?}"),
        }
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_program("algorithm X(int p) { coord I=p; node }").unwrap_err();
        assert!(err.line >= 1);
        assert!(err.to_string().contains("expected"));
    }

    #[test]
    fn missing_coord_is_rejected() {
        let err = parse_program("algorithm X(int p) { parent[0]; }").unwrap_err();
        assert!(err.to_string().contains("no coord"));
    }

    #[test]
    fn nested_if_else() {
        let src = r"
            algorithm N(int p) {
                coord I=p;
                node {I>=0: bench*(1);};
                parent[0];
                scheme {
                    int x;
                    if (p > 1) x = 1; else if (p > 0) x = 2; else x = 3;
                };
            }
        ";
        assert!(parse_program(src).is_ok());
    }
}
