//! Errors of the model-language pipeline.

use std::fmt;

/// A lexing or parsing failure, with 1-based line/column of the offending
/// token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// 1-based source line.
    pub line: usize,
    /// 1-based source column.
    pub col: usize,
}

impl ParseError {
    /// Creates an error pinned to a source position.
    pub fn new(message: impl Into<String>, line: usize, col: usize) -> Self {
        ParseError {
            message: message.into(),
            line,
            col,
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

/// A runtime failure while evaluating model expressions or interpreting a
/// scheme.
#[derive(Debug, Clone, PartialEq)]
pub enum EvalError {
    /// Reference to a name not in scope.
    Undefined(String),
    /// A value was used with the wrong shape (indexing a scalar, calling an
    /// array, ...).
    TypeError(String),
    /// Array subscript out of bounds.
    IndexOutOfBounds {
        /// The array or parameter name.
        name: String,
        /// The offending flat index.
        index: i64,
        /// The dimension's extent.
        extent: usize,
    },
    /// Division or modulo by zero in an integer context.
    DivisionByZero,
    /// Wrong number or shape of model parameters at instantiation.
    BadParameters(String),
    /// An extern function rejected its arguments.
    ExternError {
        /// Function name.
        name: String,
        /// Its complaint.
        message: String,
    },
    /// An activity referenced an abstract processor outside the coordinate
    /// space.
    BadProcessor(String),
    /// A scheme loop exceeded the iteration safety cap (runaway model).
    IterationLimit(u64),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Undefined(n) => write!(f, "undefined name `{n}`"),
            EvalError::TypeError(m) => write!(f, "type error: {m}"),
            EvalError::IndexOutOfBounds {
                name,
                index,
                extent,
            } => write!(f, "index {index} out of bounds for `{name}` (extent {extent})"),
            EvalError::DivisionByZero => write!(f, "integer division by zero"),
            EvalError::BadParameters(m) => write!(f, "bad model parameters: {m}"),
            EvalError::ExternError { name, message } => {
                write!(f, "extern function `{name}`: {message}")
            }
            EvalError::BadProcessor(m) => write!(f, "bad abstract processor: {m}"),
            EvalError::IterationLimit(n) => {
                write!(f, "scheme exceeded the {n}-iteration safety cap")
            }
        }
    }
}

impl std::error::Error for EvalError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_position() {
        let e = ParseError::new("unexpected `}`", 3, 14);
        assert!(e.to_string().contains("3:14"));
    }

    #[test]
    fn eval_errors_display() {
        assert!(EvalError::Undefined("x".into()).to_string().contains("`x`"));
        assert!(EvalError::IndexOutOfBounds {
            name: "d".into(),
            index: 9,
            extent: 4
        }
        .to_string()
        .contains("extent 4"));
    }
}
