//! Tests of the p2p substrate: the eager/rendezvous protocol split, the
//! arena-backed payload lifecycle, doorbell wakeups, and large worlds on
//! small thread stacks.

use hetsim::{Cluster, ClusterBuilder, FaultEvent, FaultPlan, Link, NodeId, Protocol, SimTime};
use mpisim::{MpiError, Universe, UniverseConfig, DEFAULT_EAGER_LIMIT};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn uniform_cluster(n: usize) -> Arc<Cluster> {
    let mut b = ClusterBuilder::new();
    for i in 0..n {
        b = b.node(format!("n{i}"), 100.0);
    }
    Arc::new(b.all_to_all(Link::new(1e-4, 1e7, Protocol::Tcp)).build())
}

/// Deterministic fill for a message: sender/sequence-tagged bytes, so a
/// reordered or torn delivery is visible in the payload, not just the
/// envelope.
fn fill(seq: usize, len: usize) -> Vec<u8> {
    (0..len).map(|j| ((seq * 31 + j) % 251) as u8).collect()
}

// ---------- satellite: 1024-rank worlds on small stacks ------------------

#[test]
fn kilorank_world_runs_on_small_stacks() {
    let n = 1024;
    let u = Universe::with_config(
        uniform_cluster(n),
        UniverseConfig::new().stack_size(256 * 1024),
    );
    let report = u.run(|proc| {
        let world = proc.world();
        let me = world.rank();
        let (right, left) = ((me + 1) % n, (me + n - 1) % n);
        let (rx, st) = world
            .sendrecv::<u32, u32>(&[me as u32], right, 7, left, 7)
            .expect("ring exchange");
        assert_eq!(rx, vec![left as u32], "rank {me} got the wrong neighbour");
        assert_eq!(st.source, left);
        me
    });
    assert_eq!(report.results.len(), n);
    for (i, &r) in report.results.iter().enumerate() {
        assert_eq!(r, i);
    }
    assert_eq!(report.pool.outstanding, 0, "leaked rendezvous leases");
}

// ---------- satellite: doorbell wakeups on peer failure -------------------

/// A receive blocked on a peer that exits must be woken by the
/// termination doorbell, not by the 250 ms wake backstop: the whole run
/// (spawn + block + verdict) has to finish well inside one backstop
/// period, and the receiver's virtual clock must not advance at all —
/// failure detection costs zero virtual time (well under one tick).
#[test]
fn guarded_receive_notices_terminated_peer_before_backstop() {
    let u = Universe::new(uniform_cluster(2));
    let start = Instant::now();
    let report = u.run(|proc| {
        let world = proc.world();
        if world.rank() == 1 {
            return Ok(()); // exit without sending
        }
        let before = proc.clock().now();
        let r = world.recv::<u8>(1, 0);
        let after = proc.clock().now();
        match r {
            Err(MpiError::PeerTerminated { world_rank: 1 }) => {
                assert_eq!(
                    after, before,
                    "failure detection must not advance virtual time"
                );
                Ok(())
            }
            other => Err(format!("expected PeerTerminated from rank 1, got {other:?}")),
        }
    });
    let elapsed = start.elapsed();
    for r in &report.results {
        assert_eq!(r, &Ok(()));
    }
    assert!(
        elapsed < Duration::from_millis(200),
        "receiver took {elapsed:?}; it waited out the wake backstop instead \
         of being woken by the termination doorbell"
    );
}

/// Same for a fail-stop crash mid-run: the dying rank's `mark_failed`
/// rings every mailbox, so the blocked receiver resolves immediately with
/// the typed error instead of sleeping toward the backstop.
#[test]
fn guarded_receive_notices_crashed_peer_before_backstop() {
    let cluster = Arc::new(
        ClusterBuilder::new()
            .node("a", 100.0)
            .node("b", 100.0)
            .all_to_all(Link::new(1e-4, 1e7, Protocol::Tcp))
            .faults(FaultPlan::new(vec![FaultEvent::NodeCrash {
                node: NodeId(1),
                at: SimTime::from_secs(0.5),
            }]))
            .build(),
    );
    let start = Instant::now();
    let report = Universe::new(cluster).run(|proc| {
        let world = proc.world();
        if world.rank() == 1 {
            // Compute past the crash time and die.
            return match proc.try_compute(1_000_000.0) {
                Err(MpiError::NodeFailed { world_rank: 1 }) => Ok(()),
                other => Err(format!("expected own crash, got {other:?}")),
            };
        }
        match world.recv::<u8>(1, 0) {
            Err(MpiError::NodeFailed { world_rank: 1 }) => Ok(()),
            other => Err(format!("expected NodeFailed(1), got {other:?}")),
        }
    });
    let elapsed = start.elapsed();
    for r in &report.results {
        assert_eq!(r, &Ok(()));
    }
    assert!(
        elapsed < Duration::from_millis(200),
        "receiver took {elapsed:?}; the crash doorbell did not wake it"
    );
}

// ---------- satellite: ordering across the protocol boundary --------------

proptest! {
    /// Per-pair non-overtaking holds when consecutive messages straddle
    /// the eager/rendezvous boundary in arbitrary patterns: the receiver
    /// sees them in send order with bit-exact payloads, whichever
    /// protocol each one rode.
    #[test]
    fn non_overtaking_across_protocol_boundary(
        sizes in proptest::collection::vec(0usize..4 * DEFAULT_EAGER_LIMIT, 1..16)
    ) {
        let u = Universe::new(uniform_cluster(2));
        let szs = sizes.clone();
        let report = u.run(move |proc| {
            let world = proc.world();
            if world.rank() == 1 {
                for (i, &len) in szs.iter().enumerate() {
                    world.send(&fill(i, len), 0, 5).expect("send");
                }
            } else {
                for (i, &len) in szs.iter().enumerate() {
                    let (rx, st) = world.recv::<u8>(1, 5).expect("recv");
                    assert_eq!(st.bytes, len, "message {i} out of order");
                    assert_eq!(rx, fill(i, len), "message {i} corrupted");
                }
            }
        });
        prop_assert_eq!(report.pool.outstanding, 0, "leaked rendezvous leases");
    }

    /// `ANY_SOURCE`/`ANY_TAG` fan-in across the boundary: every message
    /// arrives exactly once, and per-sender sequence numbers are strictly
    /// increasing at the receiver (wildcards never break non-overtaking).
    #[test]
    fn wildcard_fan_in_across_protocol_boundary(
        msgs in proptest::collection::vec(
            (1usize..3, 1usize..4 * DEFAULT_EAGER_LIMIT, 0i32..4),
            1..20,
        )
    ) {
        // msgs: (sender in {1, 2}, payload length, tag).
        let u = Universe::new(uniform_cluster(3));
        let plan = msgs.clone();
        let report = u.run(move |proc| {
            let world = proc.world();
            let me = world.rank();
            if me != 0 {
                for (seq, &(s, len, tag)) in plan.iter().enumerate() {
                    if s == me {
                        // First byte carries the per-sender sequence number.
                        let mut payload = fill(seq, len);
                        payload[0] = seq as u8;
                        world.send(&payload, 0, tag).expect("send");
                    }
                }
                return;
            }
            let total = plan.len();
            let mut last_seq = [None::<u8>; 3];
            let mut got = vec![false; total];
            for _ in 0..total {
                let (rx, st) = world.recv_any::<u8>(None, None).expect("recv_any");
                let seq = rx[0] as usize;
                assert!(seq < total && !got[seq], "message {seq} duplicated or bogus");
                got[seq] = true;
                let (s, len, tag) = plan[seq];
                assert_eq!(st.source, s, "message {seq} from the wrong sender");
                assert_eq!(st.tag, tag);
                assert_eq!(rx.len(), len);
                let mut expect = fill(seq, len);
                expect[0] = seq as u8;
                assert_eq!(rx, expect, "message {seq} corrupted");
                if let Some(prev) = last_seq[s] {
                    assert!(
                        (prev as usize) < seq,
                        "sender {s}: seq {seq} overtook {prev}"
                    );
                }
                last_seq[s] = Some(seq as u8);
            }
            assert!(got.iter().all(|&g| g), "messages lost");
        });
        prop_assert_eq!(report.pool.outstanding, 0, "leaked rendezvous leases");
    }
}
