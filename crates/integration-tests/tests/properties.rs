//! Property-based tests over the core data structures and invariants.

use hetsim::{Cluster, ClusterBuilder, Link, NodeId, Protocol, SimTime, SpeedEstimates};
use hmpi::{select_mapping, MappingAlgorithm, SelectionCtx};
use hmpi_apps::matmul::dist::{proportional_partition, GeneralizedBlockDist};
use mpisim::{datatype, Group};
use perfmodel::{CostModel, ModelBuilder, PerformanceModel};
use proptest::prelude::*;

// ---------- mpisim: datatype codec --------------------------------------

proptest! {
    #[test]
    fn f64_codec_roundtrips(data in proptest::collection::vec(any::<f64>(), 0..64)) {
        let bytes = datatype::encode(&data);
        let back: Vec<f64> = datatype::decode(&bytes).unwrap();
        // Compare bit patterns so NaNs round-trip too.
        let a: Vec<u64> = data.iter().map(|x| x.to_bits()).collect();
        let b: Vec<u64> = back.iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(a, b);
    }

    #[test]
    fn i64_codec_roundtrips(data in proptest::collection::vec(any::<i64>(), 0..64)) {
        let bytes = datatype::encode(&data);
        let back: Vec<i64> = datatype::decode(&bytes).unwrap();
        prop_assert_eq!(back, data);
    }
}

// ---------- mpisim: group algebra ----------------------------------------

fn group_strategy(world: usize) -> impl Strategy<Value = Group> {
    proptest::collection::vec(0..world, 0..world)
        .prop_map(|mut v| {
            v.sort_unstable();
            v.dedup();
            Group::from_world_ranks(v).unwrap()
        })
}

proptest! {
    #[test]
    fn group_set_laws(a in group_strategy(12), b in group_strategy(12)) {
        let union = a.union(&b);
        let inter = a.intersection(&b);
        let diff = a.difference(&b);

        // |A ∪ B| = |A| + |B| - |A ∩ B|
        prop_assert_eq!(union.size(), a.size() + b.size() - inter.size());
        // A \ B and A ∩ B partition A.
        prop_assert_eq!(diff.size() + inter.size(), a.size());
        // Every member of the intersection is in both.
        for &w in inter.world_ranks() {
            prop_assert!(a.contains_world(w) && b.contains_world(w));
        }
        // Difference has no member of B.
        for &w in diff.world_ranks() {
            prop_assert!(!b.contains_world(w));
        }
        // Union keeps A as a prefix.
        prop_assert_eq!(&union.world_ranks()[..a.size()], a.world_ranks());
    }

    #[test]
    fn group_translate_is_consistent_with_membership(
        a in group_strategy(10),
        b in group_strategy(10),
    ) {
        let ranks: Vec<usize> = (0..a.size()).collect();
        let images = a.translate_ranks(&ranks, &b);
        for (r, img) in ranks.iter().zip(&images) {
            let w = a.world_rank_of(*r);
            match b.rank_of_world(w) {
                Some(rb) => prop_assert_eq!(*img, rb as isize),
                None => prop_assert_eq!(*img, -1),
            }
        }
    }
}

// ---------- hetsim: link and load invariants ------------------------------

proptest! {
    #[test]
    fn transfer_time_is_monotone_in_size(
        latency in 0.0..1e-2f64,
        bandwidth in 1e3..1e9f64,
        small in 0usize..100_000,
        extra in 1usize..100_000,
    ) {
        let link = Link::new(latency, bandwidth, Protocol::Tcp);
        let t1 = link.transfer_time(small);
        let t2 = link.transfer_time(small + extra);
        prop_assert!(t2 > t1);
        prop_assert!(t1.as_secs() >= latency);
    }

    #[test]
    fn speed_estimates_refresh_is_last_writer_wins(
        s1 in proptest::collection::vec(0.1..1e4f64, 4),
        s2 in proptest::collection::vec(0.1..1e4f64, 4),
    ) {
        let est = SpeedEstimates::from_speeds(vec![1.0; 4]);
        est.refresh(s1, SimTime::from_secs(1.0));
        est.refresh(s2.clone(), SimTime::from_secs(2.0));
        prop_assert_eq!(est.snapshot(), s2);
        prop_assert_eq!(est.generation(), 2);
    }
}

// ---------- matmul distribution invariants --------------------------------

proptest! {
    #[test]
    fn partition_sums_and_bounds(
        total in 3usize..200,
        weights in proptest::collection::vec(0.01..100.0f64, 1..8),
    ) {
        prop_assume!(total >= weights.len());
        let parts = proportional_partition(total, &weights);
        prop_assert_eq!(parts.iter().sum::<usize>(), total);
        prop_assert!(parts.iter().all(|&p| p >= 1));
    }

    #[test]
    fn generalized_block_covers_exactly(
        m in 2usize..4,
        l_extra in 0usize..8,
        speeds in proptest::collection::vec(1.0..200.0f64, 16),
    ) {
        let l = m + l_extra;
        let speeds = &speeds[..m * m];
        let dist = GeneralizedBlockDist::heterogeneous(m, l, speeds);
        // Widths and heights tile the l x l square exactly.
        prop_assert_eq!(dist.w.iter().sum::<usize>(), l);
        for j in 0..m {
            prop_assert_eq!(dist.heights[j].iter().sum::<usize>(), l);
        }
        // Every cell has exactly one owner and areas add up.
        let mut count = 0;
        for i in 0..l {
            for j in 0..l {
                let (gi, gj) = dist.owner_of_block(i, j);
                prop_assert!(gi < m && gj < m);
                count += 1;
            }
        }
        prop_assert_eq!(count, l * l);
        let area_sum: usize = (0..m)
            .flat_map(|i| (0..m).map(move |j| (i, j)))
            .map(|(i, j)| dist.area(i, j))
            .sum();
        prop_assert_eq!(area_sum, l * l);
    }

    #[test]
    fn h_array_is_symmetric_and_diagonal_correct(
        m in 2usize..4,
        l_extra in 0usize..6,
        speeds in proptest::collection::vec(1.0..200.0f64, 16),
    ) {
        let l = m + l_extra;
        let dist = GeneralizedBlockDist::heterogeneous(m, l, &speeds[..m * m]);
        let h = dist.h_array();
        let at = |i: usize, j: usize, k: usize, q: usize| h[((i * m + j) * m + k) * m + q];
        for i in 0..m {
            for j in 0..m {
                prop_assert_eq!(at(i, j, i, j) as usize, dist.heights[j][i]);
                for k in 0..m {
                    for q in 0..m {
                        prop_assert_eq!(at(i, j, k, q), at(k, q, i, j));
                    }
                }
            }
        }
    }
}

// ---------- hmpi: mapping invariants --------------------------------------

fn hetero_cluster(speeds: &[f64]) -> Cluster {
    let mut b = ClusterBuilder::new();
    for (i, &s) in speeds.iter().enumerate() {
        b = b.node(format!("n{i}"), s);
    }
    b.all_to_all(Link::new(1e-4, 1e7, Protocol::Tcp)).build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn mappings_are_injective_and_within_candidates(
        speeds in proptest::collection::vec(1.0..200.0f64, 4..8),
        volumes in proptest::collection::vec(1.0..1000.0f64, 2..4),
    ) {
        prop_assume!(volumes.len() <= speeds.len());
        let cluster = hetero_cluster(&speeds);
        let placement: Vec<NodeId> = cluster.node_ids().collect();
        let estimates = SpeedEstimates::from_base_speeds(&cluster);
        let ctx = SelectionCtx {
            cluster: &cluster,
            placement: &placement,
            estimates: &estimates,
            candidates: (0..speeds.len()).collect(),
            pinned_parent: Some(0),
        };
        let model = ModelBuilder::new("p")
            .processors(volumes.len())
            .volumes(volumes.clone())
            .build()
            .unwrap();
        for algo in [
            MappingAlgorithm::Greedy,
            MappingAlgorithm::GreedyRefined { max_rounds: 16 },
            MappingAlgorithm::Annealing { seed: 3, iters: 100 },
        ] {
            let m = select_mapping(algo, &model, &ctx).unwrap();
            prop_assert_eq!(m.assignment.len(), volumes.len());
            prop_assert_eq!(m.assignment[model.parent()], 0);
            let mut sorted = m.assignment.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), volumes.len(), "injective");
            prop_assert!(m.predicted.is_finite() && m.predicted > 0.0);
        }
    }

    #[test]
    fn refined_never_predicts_worse_than_greedy(
        speeds in proptest::collection::vec(1.0..200.0f64, 4..7),
        volumes in proptest::collection::vec(1.0..1000.0f64, 3..5),
    ) {
        prop_assume!(volumes.len() <= speeds.len());
        let cluster = hetero_cluster(&speeds);
        let placement: Vec<NodeId> = cluster.node_ids().collect();
        let estimates = SpeedEstimates::from_base_speeds(&cluster);
        let ctx = SelectionCtx {
            cluster: &cluster,
            placement: &placement,
            estimates: &estimates,
            candidates: (0..speeds.len()).collect(),
            pinned_parent: Some(0),
        };
        let model = ModelBuilder::new("p")
            .processors(volumes.len())
            .volumes(volumes.clone())
            .comm_fn(|s, d| ((s + d) % 3) as f64 * 1e5)
            .build()
            .unwrap();
        let g = select_mapping(MappingAlgorithm::Greedy, &model, &ctx).unwrap();
        let r = select_mapping(
            MappingAlgorithm::GreedyRefined { max_rounds: 16 },
            &model,
            &ctx,
        )
        .unwrap();
        prop_assert!(r.predicted <= g.predicted + 1e-9);
    }
}

// ---------- perfmodel: timeline invariants ---------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn predicted_time_scales_inversely_with_uniform_speed(
        volumes in proptest::collection::vec(1.0..100.0f64, 1..6),
        speed in 1.0..100.0f64,
    ) {
        let model = ModelBuilder::new("v")
            .processors(volumes.len())
            .volumes(volumes.clone())
            .build()
            .unwrap();
        let t1 = model
            .predict_time(&CostModel::homogeneous(volumes.len(), speed, 0.0, 1e12))
            .unwrap();
        let t2 = model
            .predict_time(&CostModel::homogeneous(volumes.len(), 2.0 * speed, 0.0, 1e12))
            .unwrap();
        prop_assert!((t1 - 2.0 * t2).abs() < 1e-9 * t1.max(1.0));
        // And equals the bottleneck volume / speed.
        let bottleneck = volumes.iter().cloned().fold(0.0, f64::max);
        prop_assert!((t1 - bottleneck / speed).abs() < 1e-9);
    }

    #[test]
    fn adding_communication_never_speeds_things_up(
        volumes in proptest::collection::vec(1.0..100.0f64, 2..5),
        bytes in 1.0..1e7f64,
    ) {
        let n = volumes.len();
        let quiet = ModelBuilder::new("q")
            .processors(n)
            .volumes(volumes.clone())
            .build()
            .unwrap();
        let chatty = ModelBuilder::new("c")
            .processors(n)
            .volumes(volumes.clone())
            .comm_fn(move |_, _| bytes)
            .build()
            .unwrap();
        let cost = CostModel::homogeneous(n, 10.0, 1e-4, 1e6);
        let tq = quiet.predict_time(&cost).unwrap();
        let tc = chatty.predict_time(&cost).unwrap();
        prop_assert!(tc >= tq - 1e-12);
    }
}
