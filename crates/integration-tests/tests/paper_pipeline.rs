//! End-to-end tests of the full paper pipeline across every crate:
//! model source → compiled model → HMPI runtime → message-passing execution
//! on the simulated heterogeneous LAN.

use hetsim::{Cluster, ClusterBuilder, Link, Protocol};
use hmpi::{HmpiRuntime, RuntimeConfig};
use hmpi_apps::em3d::{self, Em3dConfig, Em3dSystem};
use hmpi_apps::matmul::{self, GeneralizedBlockDist};
use perfmodel::CompiledModel;
use std::sync::Arc;

#[test]
fn figure4_text_drives_group_create_end_to_end() {
    // Compile the *paper's* model text, instantiate it from a generated
    // system, and create a group with it on the paper LAN.
    let cluster = Arc::new(Cluster::paper_lan_em3d());
    let cfg = Em3dConfig::ramp(9, 80, 2.0, 99);
    let runtime = HmpiRuntime::new(cluster);
    let report = runtime.run(|h| {
        let system = Em3dSystem::generate(&cfg);
        let compiled = CompiledModel::compile(em3d::EM3D_MODEL_SOURCE).unwrap();
        let model = compiled
            .instantiate(&em3d::em3d_params(&system, 10))
            .unwrap();
        let group = h.group_create(&model).unwrap();
        let members = group.members().to_vec();
        if group.is_member() {
            h.group_free(group).unwrap();
        }
        members
    });
    let members = &report.results[0];
    assert_eq!(members.len(), 9);
    for r in &report.results {
        assert_eq!(r, members, "all ranks agree on the selection");
    }
}

#[test]
fn figure7_text_predicts_block_size_tradeoff() {
    // The Figure 8 sweep over the paper's Figure 7 text: predicted time
    // must vary with l and be minimal somewhere inside the range.
    let speeds = [46.0, 46.0, 46.0, 46.0, 46.0, 46.0, 176.0, 106.0, 9.0];
    let cluster = Arc::new(Cluster::paper_lan_matmul());
    let runtime = HmpiRuntime::new(cluster);
    let report = runtime.run(|h| {
        if !h.is_host() {
            return None;
        }
        let n = 18;
        let mut grid_speeds = vec![speeds[0]];
        let mut rest: Vec<f64> = speeds[1..].to_vec();
        rest.sort_by(|a, b| b.total_cmp(a));
        grid_speeds.extend(rest);
        let mut series = Vec::new();
        for l in 3..=n {
            let dist = GeneralizedBlockDist::heterogeneous(3, l, &grid_speeds);
            let model = matmul::matmul_model(&dist, 8, n).unwrap();
            series.push((l, h.timeof(&model).unwrap()));
        }
        Some(series)
    });
    let series = report.results[0].as_ref().unwrap();
    let best = series
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap();
    let worst = series
        .iter()
        .max_by(|a, b| a.1.total_cmp(&b.1))
        .unwrap();
    assert!(
        worst.1 > best.1 * 1.2,
        "block size must matter: best {best:?} worst {worst:?}"
    );
    assert!(best.0 > 3, "the fully cyclic l=3 must not be optimal");
}

#[test]
fn virtual_times_are_deterministic_across_runs() {
    let cfg = Em3dConfig::ramp(6, 50, 2.0, 5);
    let cluster = Arc::new(Cluster::paper_lan_em3d());
    let a = em3d::run_mpi(cluster.clone(), &cfg, 3);
    let b = em3d::run_mpi(cluster, &cfg, 3);
    assert_eq!(a.time, b.time, "ParallelLinks timing is fully deterministic");
    let c = em3d::run_hmpi(Arc::new(Cluster::paper_lan_em3d()), &cfg, 3, 10);
    let d = em3d::run_hmpi(Arc::new(Cluster::paper_lan_em3d()), &cfg, 3, 10);
    assert_eq!(c.time, d.time);
    assert_eq!(c.members, d.members);
}

#[test]
fn hmpi_never_loses_to_rank_order_mpi() {
    // Across several seeds and decomposition shapes, the HMPI group must be
    // at least as fast as the rank-order MPI group (the paper's claim:
    // "the running time of the HMPI program will always be less than the
    // running time of the corresponding MPI program" — equality happens
    // when rank order is accidentally optimal).
    for seed in [1u64, 2, 3] {
        for spread in [1.0, 2.0, 4.0] {
            let cfg = Em3dConfig::ramp(9, 40, spread, seed);
            let mpi = em3d::run_mpi(Arc::new(Cluster::paper_lan_em3d()), &cfg, 2);
            let hmpi = em3d::run_hmpi(Arc::new(Cluster::paper_lan_em3d()), &cfg, 2, 10);
            assert!(
                hmpi.time <= mpi.time * 1.02,
                "seed {seed} spread {spread}: HMPI {} vs MPI {}",
                hmpi.time,
                mpi.time
            );
        }
    }
}

#[test]
fn smaller_models_leave_processes_free_for_second_group() {
    // Two disjoint 4-processor groups coexist on the 9-machine LAN and both
    // run a real collective.
    let cluster = Arc::new(Cluster::paper_lan_em3d());
    let runtime = HmpiRuntime::new(cluster);
    let report = runtime.run(|h| {
        let model = perfmodel::ModelBuilder::new("four")
            .processors(4)
            .volumes(vec![10.0; 4])
            .build()
            .unwrap();
        let g1 = h.group_create(&model).unwrap();
        let mut sums = Vec::new();
        if let Some(comm) = g1.comm() {
            sums.push(
                comm.allreduce_one_i64(1, mpisim::ReduceOp::Sum).unwrap(),
            );
        }
        // Second group from the remaining free processes (plus host).
        if h.is_host() || h.is_free() {
            let g2 = h.group_create(&model).unwrap();
            if let Some(comm) = g2.comm() {
                sums.push(
                    comm.allreduce_one_i64(10, mpisim::ReduceOp::Sum).unwrap(),
                );
            }
            if g2.is_member() {
                h.group_free(g2).unwrap();
            }
        }
        if g1.is_member() {
            h.group_free(g1).unwrap();
        }
        sums
    });
    // Group collectives completed: members of g1 saw 4, members of g2 saw 40.
    let mut seen4 = 0;
    let mut seen40 = 0;
    for sums in &report.results {
        for s in sums {
            match s {
                4 => seen4 += 1,
                40 => seen40 += 1,
                other => panic!("unexpected sum {other}"),
            }
        }
    }
    assert_eq!(seen4, 4);
    assert_eq!(seen40, 4);
}

#[test]
fn multi_protocol_links_shift_the_selection() {
    // Two equally fast far nodes; one pair is connected by a fast custom
    // interconnect. A communication-heavy 2-processor model must pick the
    // well-connected pair.
    let fast_link = Link::new(2e-6, 1e9, Protocol::Custom("myrinet".into()));
    let cluster = Arc::new(
        ClusterBuilder::new()
            .node("host", 50.0)
            .node("a", 50.0)
            .node("b", 50.0)
            .all_to_all(Link::new(10e-3, 1e6, Protocol::Tcp))
            .link_between(0, 2, fast_link)
            .build(),
    );
    let runtime = HmpiRuntime::with_config(
        cluster,
        RuntimeConfig::new().mapping_algorithm(hmpi::MappingAlgorithm::Exhaustive),
    );
    let report = runtime.run(|h| {
        let model = perfmodel::ModelBuilder::new("chatty")
            .processors(2)
            .volumes(vec![1.0, 1.0])
            .comm_fn(|_, _| 50e6)
            .build()
            .unwrap();
        let g = h.group_create(&model).unwrap();
        let members = g.members().to_vec();
        if g.is_member() {
            h.group_free(g).unwrap();
        }
        members
    });
    assert_eq!(
        report.results[0],
        vec![0, 2],
        "the myrinet-connected pair must win"
    );
}
