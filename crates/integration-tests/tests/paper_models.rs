//! The paper's model sources (Figures 4 and 7) through the full language
//! toolchain: parse → pretty-print → re-parse round-trip, and the model
//! linter must report both clean.

use hmpi_apps::em3d::{self, Em3dConfig, Em3dSystem, EM3D_MODEL_SOURCE};
use hmpi_apps::matmul::{matmul_model, GeneralizedBlockDist, MATMUL_MODEL_SOURCE};
use perfmodel::{analyze, parse_program, pretty, CompiledModel, PerformanceModel};

#[test]
fn figure4_round_trips_through_the_pretty_printer() {
    let ast1 = parse_program(EM3D_MODEL_SOURCE).unwrap();
    let printed = pretty::print_program(&ast1);
    let ast2 = parse_program(&printed).unwrap();
    assert_eq!(ast1, ast2, "printed:\n{printed}");
}

#[test]
fn figure7_round_trips_through_the_pretty_printer() {
    let ast1 = parse_program(MATMUL_MODEL_SOURCE).unwrap();
    let printed = pretty::print_program(&ast1);
    let ast2 = parse_program(&printed).unwrap();
    assert_eq!(ast1, ast2, "printed:\n{printed}");
}

#[test]
fn reparsed_figure4_behaves_identically() {
    // Semantics preserved, not just syntax: volumes, comm and parent agree
    // between the original and the round-tripped model.
    let system = Em3dSystem::generate(&Em3dConfig::ramp(5, 60, 2.0, 3));
    let params = em3d::em3d_params(&system, 10);

    let original = CompiledModel::compile(EM3D_MODEL_SOURCE)
        .unwrap()
        .instantiate(&params)
        .unwrap();
    let printed = pretty::print_program(&parse_program(EM3D_MODEL_SOURCE).unwrap());
    let roundtrip = CompiledModel::compile(&printed)
        .unwrap()
        .instantiate(&params)
        .unwrap();

    assert_eq!(original.volumes(), roundtrip.volumes());
    assert_eq!(original.comm_bytes(), roundtrip.comm_bytes());
    assert_eq!(original.parent(), roundtrip.parent());
}

#[test]
fn figure4_model_lints_clean() {
    let system = Em3dSystem::generate(&Em3dConfig::ramp(6, 60, 3.0, 11));
    let model = em3d::em3d_model(&system, 10).unwrap();
    let report = analyze(&model).unwrap();
    assert!(
        report.is_clean(),
        "Figure 4 should fully cover its volumes: {:?}",
        report.findings
    );
    // The scheme has nested par blocks (transfers inside a 2-level par).
    assert!(report.coverage.max_par_depth >= 2);
}

#[test]
fn figure7_model_lints_clean_when_l_divides_n() {
    // The paper's own percentage algebra is exact when n/l is integral.
    let speeds = [46.0, 46.0, 46.0, 46.0, 46.0, 46.0, 176.0, 106.0, 9.0];
    let dist = GeneralizedBlockDist::heterogeneous(3, 9, &speeds);
    let model = matmul_model(&dist, 8, 18).unwrap();
    let report = analyze(&model).unwrap();
    assert!(
        report.is_clean(),
        "Figure 7 should fully cover its volumes: {:?}",
        report.findings
    );
}

#[test]
fn figure7_coverage_totals_are_exactly_100() {
    let speeds = [46.0, 46.0, 46.0, 46.0, 46.0, 46.0, 176.0, 106.0, 9.0];
    let dist = GeneralizedBlockDist::heterogeneous(3, 9, &speeds);
    let model = matmul_model(&dist, 8, 9).unwrap();
    let report = analyze(&model).unwrap();
    for (p, &total) in report.coverage.compute.iter().enumerate() {
        assert!(
            (total - 100.0).abs() < 1e-6,
            "proc {p} computes {total:.4}%"
        );
    }
}

#[test]
fn lint_catches_a_deliberately_broken_scheme() {
    // Mutate Figure 4's scheme to perform only half the computation; the
    // linter must notice.
    let broken = EM3D_MODEL_SOURCE.replace(
        "par (current = 0; current < p; current++) 100%%[current];",
        "par (current = 0; current < p; current++) 50%%[current];",
    );
    assert_ne!(broken, EM3D_MODEL_SOURCE);
    let system = Em3dSystem::generate(&Em3dConfig::ramp(4, 60, 2.0, 3));
    let model = CompiledModel::compile(&broken)
        .unwrap()
        .instantiate(&em3d::em3d_params(&system, 10))
        .unwrap();
    let report = analyze(&model).unwrap();
    let flagged = report
        .findings
        .iter()
        .filter(|f| matches!(f, perfmodel::Finding::ComputeCoverage { .. }))
        .count();
    assert_eq!(flagged, 4, "all four processors are undercovered");
}
