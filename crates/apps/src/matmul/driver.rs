//! Matrix-multiplication drivers: homogeneous MPI baseline vs the paper's
//! Figure 8 HMPI program.
//!
//! The HMPI driver follows Figure 8 step by step: `HMPI_Recon` with the
//! `rMxM` benchmark, a `HMPI_Timeof` sweep choosing the optimal generalised
//! block size `l`, `HMPI_Group_create` with the Figure 7 model, then the
//! block-cyclic computation over the group communicator. The MPI baseline
//! uses the homogeneous distribution on the first `m²` processes of
//! `MPI_COMM_WORLD` — the paper's "pure chance" group.

use crate::matmul::block::BlockMatrix;
use crate::matmul::dist::GeneralizedBlockDist;
use crate::matmul::model::matmul_model;
use crate::matmul::parallel::DistributedMatmul;
use hetsim::Cluster;
use hmpi::{HmpiError, HmpiGroup, HmpiRuntime, MappingAlgorithm, Recon, RecoveryPolicy, RuntimeConfig};
use mpisim::{MpiResult, Universe};
use std::sync::Arc;

/// Seeds for the deterministic input matrices (shared by every driver so
/// results are comparable).
pub const SEED_A: u64 = 101;
/// Seed for matrix B.
pub const SEED_B: u64 = 202;

/// Outcome of one matrix-multiplication execution.
#[derive(Debug, Clone)]
pub struct MatmulRun {
    /// Virtual execution time of the parallel algorithm, seconds.
    pub time: f64,
    /// `members[grid linear index] = world rank`.
    pub members: Vec<usize>,
    /// The gathered result matrix (from the grid root), for verification.
    pub c: Option<BlockMatrix>,
    /// `HMPI_Group_create`'s predicted time (HMPI runs only).
    pub predicted: Option<f64>,
    /// The generalised block size used.
    pub l: usize,
}

/// The MPI baseline: homogeneous 2D block-cyclic distribution on the first
/// `m²` world ranks. `l` must be a multiple of `m` (default the paper-style
/// fully cyclic `l = m` when `None`).
///
/// # Panics
/// Panics if the cluster hosts fewer than `m²` processes or `m` does not
/// divide `l`.
pub fn run_mpi(
    cluster: Arc<Cluster>,
    m: usize,
    n: usize,
    r: usize,
    l: Option<usize>,
) -> MatmulRun {
    let l = l.unwrap_or(m);
    let universe = Universe::new(cluster);
    assert!(m * m <= universe.size());
    let report = universe.run(|proc| {
        let world = proc.world();
        let me = world.rank();
        let grid_comm = world
            .split((me < m * m).then_some(1), 1)
            .expect("split cannot fail");
        let grid_comm = grid_comm?;
        let dist = GeneralizedBlockDist::homogeneous(m, l);
        let mut mm = DistributedMatmul::new(dist, n, r, grid_comm.rank(), SEED_A, SEED_B);
        let t0 = grid_comm.clock().now();
        mm.run(&grid_comm).expect("MM kernel");
        grid_comm.barrier().expect("closing barrier");
        let dur = (grid_comm.clock().now() - t0).as_secs();
        let c = mm.gather_c(&grid_comm).expect("gather C");
        Some((dur, c))
    });
    let mut time = 0.0f64;
    let mut c = None;
    for outcome in report.results.iter().flatten() {
        time = time.max(outcome.0);
        if outcome.1.is_some() {
            c = outcome.1.clone();
        }
    }
    MatmulRun {
        time,
        members: (0..m * m).collect(),
        c,
        predicted: None,
        l,
    }
}

/// The Figure 8 HMPI program. With `l = None`, the host selects the optimal
/// generalised block size by an `HMPI_Timeof` sweep over `m..=n`.
///
/// # Panics
/// Panics if the cluster hosts fewer than `m²` processes.
pub fn run_hmpi(
    cluster: Arc<Cluster>,
    m: usize,
    n: usize,
    r: usize,
    l: Option<usize>,
) -> MatmulRun {
    run_hmpi_with(cluster, m, n, r, l, MappingAlgorithm::default())
}

/// [`run_hmpi`] with an explicit selection algorithm (for ablations).
///
/// # Panics
/// As [`run_hmpi`].
pub fn run_hmpi_with(
    cluster: Arc<Cluster>,
    m: usize,
    n: usize,
    r: usize,
    l: Option<usize>,
    algo: MappingAlgorithm,
) -> MatmulRun {
    run_hmpi_inner(cluster, m, n, r, l, algo, false).0
}

/// A traced HMPI run: the run itself, the full virtual-time trace, and the
/// prediction-vs-actual report comparing `HMPI_Group_create`'s whole-run
/// prediction against the measured kernel time, with the per-rank
/// compute / comm / wait breakdown of the whole traced run.
#[derive(Debug, Clone)]
pub struct MatmulTracedRun {
    /// The run outcome (same as [`run_hmpi`]).
    pub run: MatmulRun,
    /// Every recorded span: recon, selection, compute, sends, receives.
    pub trace: hetsim::Trace,
    /// Prediction accuracy plus phase breakdown.
    pub report: hetsim::PredictionReport,
}

/// [`run_hmpi`] with tracing enabled (DESIGN.md §9).
///
/// # Panics
/// As [`run_hmpi`].
pub fn run_hmpi_traced(
    cluster: Arc<Cluster>,
    m: usize,
    n: usize,
    r: usize,
    l: Option<usize>,
) -> MatmulTracedRun {
    let n_ranks = cluster.len();
    let (run, trace) = run_hmpi_inner(cluster, m, n, r, l, MappingAlgorithm::default(), true);
    let trace = trace.expect("tracing was enabled");
    // The Figure 7 model describes the whole multiplication.
    let predicted = run.predicted.expect("HMPI runs carry a prediction");
    let report = hetsim::PredictionReport::new(
        predicted,
        hetsim::SimTime::from_secs(run.time),
        &trace,
        n_ranks,
    );
    MatmulTracedRun { run, trace, report }
}

fn run_hmpi_inner(
    cluster: Arc<Cluster>,
    m: usize,
    n: usize,
    r: usize,
    l: Option<usize>,
    algo: MappingAlgorithm,
    traced: bool,
) -> (MatmulRun, Option<hetsim::Trace>) {
    let runtime = HmpiRuntime::with_config(
        cluster,
        RuntimeConfig::new().mapping_algorithm(algo).tracing(traced),
    );
    assert!(m * m <= runtime.universe().size());

    type Out = (Option<(f64, Option<BlockMatrix>)>, Option<(Vec<usize>, f64, usize)>);
    let report = runtime.run(|h| -> Out {
        // HMPI_Recon with the rMxM benchmark: one r x r block update.
        h.recon_opts(Recon::new(1.0).bench(|hh: &hmpi::Hmpi| hh.compute(1.0)))
            .expect("recon");

        // The host arranges the m^2 best processors on the grid (its own
        // speed at the parent position (0,0)) and picks l by Timeof sweep.
        // Every rank pre-sizes the [l, grid speeds...] message so the
        // engine's schedule-driven broadcast can ship it.
        let mut msg = vec![0.0f64; 1 + m * m];
        if h.is_host() {
            let placement = h.process().placement();
            let est = h.estimates();
            let mut others: Vec<f64> = (1..h.size())
                .map(|rank| est.speed(placement[rank]))
                .collect();
            others.sort_by(|a, b| b.total_cmp(a));
            let mut grid_speeds = Vec::with_capacity(m * m);
            grid_speeds.push(est.speed(placement[0]));
            grid_speeds.extend(others.into_iter().take(m * m - 1));

            let l = match l {
                Some(l) => l,
                None => {
                    // Figure 8: sweep bsize, keep the predicted minimum.
                    // timeof_sweep keeps the first strict minimum (same
                    // tie-break as a manual loop) and surfaces the first
                    // error if every candidate fails to evaluate.
                    let models: Vec<_> = (m..=n)
                        .map(|cand| {
                            let dist =
                                GeneralizedBlockDist::heterogeneous(m, cand, &grid_speeds);
                            matmul_model(&dist, r, n).expect("Figure 7 model")
                        })
                        .collect();
                    let (idx, _) = h
                        .timeof_sweep(
                            models
                                .iter()
                                .map(|mo| mo as &dyn perfmodel::PerformanceModel),
                        )
                        .expect("timeof sweep")
                        .expect("bsize sweep is non-empty");
                    m + idx
                }
            };
            msg[0] = l as f64;
            msg[1..].copy_from_slice(&grid_speeds);
        }
        h.world().bcast_into(&mut msg, 0).expect("bcast l + speeds");
        let l = msg[0] as usize;
        let grid_speeds = msg[1..].to_vec();

        let dist = GeneralizedBlockDist::heterogeneous(m, l, &grid_speeds);
        let model = matmul_model(&dist, r, n).expect("Figure 7 model");
        let group = h.group_create(&model).expect("group_create");
        let meta = if h.is_host() {
            Some((group.members().to_vec(), group.predicted_time(), l))
        } else {
            None
        };

        let outcome = if let Some(comm) = group.comm() {
            let mut mm = DistributedMatmul::new(dist, n, r, comm.rank(), SEED_A, SEED_B);
            let t0 = comm.clock().now();
            mm.run(comm).expect("MM kernel");
            comm.barrier().expect("closing barrier");
            let dur = (comm.clock().now() - t0).as_secs();
            let c = mm.gather_c(comm).expect("gather C");
            Some((dur, c))
        } else {
            None
        };
        if group.is_member() {
            h.group_free(group).expect("group_free");
        }
        h.finalize().expect("finalize");
        (outcome, meta)
    });

    let trace = report.trace;
    let mut time = 0.0f64;
    let mut c = None;
    let mut meta = None;
    for (outcome, m_) in report.results {
        if let Some((dur, cm)) = outcome {
            time = time.max(dur);
            if cm.is_some() {
                c = cm;
            }
        }
        if m_.is_some() {
            meta = m_;
        }
    }
    let (members, predicted, l) = meta.expect("host reported the selection");
    (
        MatmulRun {
            time,
            members,
            c,
            predicted: Some(predicted),
            l,
        },
        trace,
    )
}

/// Outcome of one fault-tolerant matrix multiplication ([`run_hmpi_ft`]).
///
/// Unlike EM3D, the *problem* never shrinks — only the process grid does: a
/// rebuild drops to the largest `m' x m'` grid the survivors can fill, so
/// the final `C` always equals the full serial product.
#[derive(Debug, Clone)]
pub struct MatmulFtRun {
    /// The grid `HMPI_Group_create` originally selected.
    pub initial_members: Vec<usize>,
    /// Predicted time of the initial grid, seconds.
    pub initial_predicted: f64,
    /// The grid that completed the run (== initial when nothing failed).
    pub final_members: Vec<usize>,
    /// Predicted time of the final grid, seconds.
    pub final_predicted: f64,
    /// How many times the grid was shrunk with `rebuild_group`.
    pub rebuilds: usize,
    /// Side of the final process grid (`final_members.len() == final_m²`).
    pub final_m: usize,
    /// Generalised block size of the final attempt.
    pub l: usize,
    /// Virtual time of the final, successful attempt, seconds.
    pub time: f64,
    /// Virtual time of the whole run including failed attempts, seconds.
    pub makespan: f64,
    /// The gathered result matrix (from the final grid root).
    pub c: Option<BlockMatrix>,
}

/// What the host learned over the FT run; `None` on every other rank.
#[derive(Debug, Clone)]
struct MmFtMeta {
    initial: (Vec<usize>, f64),
    fin: Option<(Vec<usize>, f64)>,
    rebuilds: usize,
}

/// The largest grid side `m' <= m_max` with `m'²` processes available.
fn grid_for(m_max: usize, procs: usize) -> usize {
    (1..=m_max).rev().find(|&mm| mm * mm <= procs).unwrap_or(0)
}

/// The generalised block size for an `m_eff` grid: the requested `l`
/// clamped into the feasible `[m_eff, n]` range (default fully blocked).
fn block_for(l: Option<usize>, m_eff: usize, n: usize) -> usize {
    l.unwrap_or(n).clamp(m_eff, n)
}

/// Exact integer square root of a perfect square (group sizes are `m'²`).
fn grid_side(procs: usize) -> usize {
    let s = (procs as f64).sqrt().round() as usize;
    debug_assert_eq!(s * s, procs, "FT grids are always square");
    s
}

/// The fault-tolerant HMPI matmul: FT recon, `group_create`, then the
/// multiplication under a [`RecoveryPolicy`] — every attempt ends in an
/// agreement round, and a failure verdict answers with `rebuild_group`
/// and a restart on a smaller grid.
///
/// Each attempt rebuilds the distribution for the current grid from the
/// shared speed estimates (grid position `i` holds group member `i`), so
/// every member derives the identical partitioning without a broadcast on
/// a possibly-dirty communicator. The matrices are regenerated from their
/// seeds, so the result after any number of mid-run crashes equals the
/// full serial product.
///
/// Returns `None` when the run could not complete at all: the host's node
/// died (host failure is unrecoverable), or too few nodes survived to fill
/// even a 1 x 1 grid.
///
/// # Panics
/// Panics if the cluster hosts fewer than `m²` processes.
pub fn run_hmpi_ft(
    cluster: Arc<Cluster>,
    m: usize,
    n: usize,
    r: usize,
    l: Option<usize>,
) -> Option<MatmulFtRun> {
    let runtime = HmpiRuntime::new(cluster);
    assert!(m * m <= runtime.universe().size());

    type Out = (Option<(f64, Option<BlockMatrix>)>, Option<MmFtMeta>);
    let report = runtime.run(|h| -> Out {
        // FT recon on a faulty cluster doubles as the failure detector.
        if h
            .recon_opts(Recon::new(1.0).bench(|hh: &hmpi::Hmpi| hh.compute(1.0)))
            .is_err()
        {
            return (None, None); // this rank's own node died during recon
        }

        let placement = h.process().placement().to_vec();
        let est = h.estimates();
        // The model factory runs on the host with the roll-call survivors
        // (host first); at creation time every rank evaluates it with the
        // same alive list, computed from the shared estimates.
        let mut model_for = |survivors: &[usize]| {
            let m_eff = grid_for(m, survivors.len());
            if m_eff == 0 {
                return Err(HmpiError::Aborted);
            }
            let l_eff = block_for(l, m_eff, n);
            let mut others: Vec<f64> = survivors[1..]
                .iter()
                .map(|&w| est.speed(placement[w]))
                .collect();
            others.sort_by(|a, b| b.total_cmp(a));
            let mut grid_speeds = Vec::with_capacity(m_eff * m_eff);
            grid_speeds.push(est.speed(placement[survivors[0]]));
            grid_speeds.extend(others.into_iter().take(m_eff * m_eff - 1));
            let dist = GeneralizedBlockDist::heterogeneous(m_eff, l_eff, &grid_speeds);
            matmul_model(&dist, r, n).map_err(|_| HmpiError::Aborted)
        };

        let alive = h.alive_world_ranks();
        if alive.first() != Some(&0) {
            return (None, None); // the host's node is gone: unrecoverable
        }
        let model = match model_for(&alive) {
            Ok(mo) => mo,
            Err(_) => return (None, None),
        };
        let group = match h.group_create(&model) {
            Ok(g) => g,
            Err(_) => return (None, None), // infeasible from the start
        };
        let mut meta = h.is_host().then(|| MmFtMeta {
            initial: (group.members().to_vec(), group.predicted_time()),
            fin: None,
            rebuilds: 0,
        });
        if !group.is_member() {
            return (None, meta); // never selected; free processes stand by
        }

        let policy = RecoveryPolicy::new().with_max_rebuilds(h.size());
        let attempt = |group: &HmpiGroup, _round: usize| -> MpiResult<_> {
            let comm = group.comm().expect("member has a comm");
            let m_eff = grid_side(group.size());
            let l_eff = block_for(l, m_eff, n);
            // Grid position i = group member i: the same distribution on
            // every member, derived purely from shared state.
            let grid_speeds: Vec<f64> = group
                .members()
                .iter()
                .map(|&w| est.speed(placement[w]))
                .collect();
            let dist = GeneralizedBlockDist::heterogeneous(m_eff, l_eff, &grid_speeds);
            let mut mm = DistributedMatmul::new(dist, n, r, comm.rank(), SEED_A, SEED_B);
            let t0 = comm.clock().now();
            mm.run(comm)?;
            comm.barrier()?;
            let dur = (comm.clock().now() - t0).as_secs();
            let c = mm.gather_c(comm)?;
            Ok((dur, c))
        };
        match policy.run(h, group, &mut model_for, attempt) {
            Ok(rec) => {
                if let Some(meta) = meta.as_mut() {
                    meta.fin = Some((rec.group.members().to_vec(), rec.group.predicted_time()));
                    meta.rebuilds = rec.rebuilds;
                }
                // Lenient free: a peer may die between the success verdict
                // and the free barriers.
                let _ = h.group_free(rec.group);
                (Some(rec.result), meta)
            }
            Err(e) => {
                if let Some(meta) = meta.as_mut() {
                    meta.rebuilds = e.rebuilds;
                }
                (None, meta)
            }
        }
    });

    let mut outcomes = Vec::with_capacity(report.results.len());
    let mut meta = None;
    for (o, m_) in report.results {
        outcomes.push(o);
        if m_.is_some() {
            meta = m_;
        }
    }
    let meta = meta?;
    let (final_members, final_predicted) = meta.fin?;
    let mut time = 0.0f64;
    let mut c = None;
    for &w in &final_members {
        let (dur, cm) = outcomes[w].clone()?;
        time = time.max(dur);
        if cm.is_some() {
            c = cm;
        }
    }
    let final_m = grid_side(final_members.len());
    Some(MatmulFtRun {
        initial_members: meta.initial.0,
        initial_predicted: meta.initial.1,
        final_members,
        final_predicted,
        rebuilds: meta.rebuilds,
        final_m,
        l: block_for(l, final_m, n),
        time,
        makespan: report.makespan.as_secs(),
        c,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::block::{serial_matmul, BlockMatrix};

    fn paper_cluster() -> Arc<Cluster> {
        Arc::new(Cluster::paper_lan_matmul())
    }

    fn reference(n: usize, r: usize) -> BlockMatrix {
        serial_matmul(
            &BlockMatrix::deterministic(n, r, SEED_A),
            &BlockMatrix::deterministic(n, r, SEED_B),
        )
    }

    fn assert_matches(c: &BlockMatrix, want: &BlockMatrix) {
        for (x, y) in c.data().iter().zip(want.data()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn mpi_baseline_is_correct() {
        let n = 9;
        let r = 4;
        let run = run_mpi(paper_cluster(), 3, n, r, None);
        assert_matches(run.c.as_ref().unwrap(), &reference(n, r));
    }

    #[test]
    fn hmpi_is_correct_with_fixed_l() {
        let n = 9;
        let r = 4;
        let run = run_hmpi(paper_cluster(), 3, n, r, Some(9));
        assert_matches(run.c.as_ref().unwrap(), &reference(n, r));
        assert_eq!(run.l, 9);
    }

    #[test]
    fn hmpi_beats_homogeneous_mpi_on_paper_lan() {
        // The paper's headline MM result: ~3x on the 9-machine LAN.
        let n = 9;
        let r = 8;
        let mpi = run_mpi(paper_cluster(), 3, n, r, None);
        let hmpi = run_hmpi(paper_cluster(), 3, n, r, Some(9));
        assert!(
            hmpi.time < mpi.time,
            "HMPI ({}) must beat MPI ({})",
            hmpi.time,
            mpi.time
        );
        let speedup = mpi.time / hmpi.time;
        assert!(speedup > 1.5, "expected a large speedup, got {speedup:.2}");
    }

    #[test]
    fn timeof_sweep_chooses_a_valid_l() {
        let n = 9;
        let r = 4;
        let run = run_hmpi(paper_cluster(), 3, n, r, None);
        assert!((3..=9).contains(&run.l), "chosen l = {}", run.l);
        assert_matches(run.c.as_ref().unwrap(), &reference(n, r));
    }

    #[test]
    fn traced_run_reports_prediction_accuracy() {
        let n = 9;
        let r = 4;
        let traced = run_hmpi_traced(paper_cluster(), 3, n, r, Some(9));
        assert_matches(traced.run.c.as_ref().unwrap(), &reference(n, r));
        assert!(!traced.trace.is_empty(), "tracing must record events");
        let rep = &traced.report;
        assert!(rep.predicted > 0.0 && rep.measured > 0.0);
        let compute: f64 = rep.phases.iter().map(|p| p.compute.as_secs()).sum();
        assert!(compute > 0.0);
    }

    #[test]
    fn ft_driver_is_exact_without_faults() {
        // With an empty fault plan the FT driver completes on the full
        // 3 x 3 grid with zero rebuilds and an exact product.
        let n = 9;
        let r = 4;
        let ft = run_hmpi_ft(paper_cluster(), 3, n, r, Some(9)).expect("fault-free run");
        assert_eq!(ft.rebuilds, 0);
        assert_eq!(ft.final_m, 3);
        assert_eq!(ft.initial_members, ft.final_members);
        assert_matches(ft.c.as_ref().unwrap(), &reference(n, r));
    }

    #[test]
    fn ft_driver_recovers_onto_a_smaller_grid() {
        // Node 7 (speed 106) fail-stops at t=1.5 — mid-multiplication (the
        // fault-free kernel spans roughly t=0.12..3.1). Eight survivors
        // cannot fill a 3 x 3 grid, so recovery drops to 2 x 2 — and the
        // product is still the exact full-problem result, because the
        // problem never shrinks, only the grid does.
        use hetsim::{FaultEvent, FaultPlan, NodeId, SimTime};
        let plan = FaultPlan::none().with(FaultEvent::NodeCrash {
            node: NodeId(7),
            at: SimTime::from_secs(1.5),
        });
        let speeds = [46.0, 46.0, 46.0, 46.0, 46.0, 46.0, 176.0, 106.0, 9.0];
        let cluster = Arc::new(Cluster::paper_lan_with_faults(&speeds, plan));
        let n = 9;
        let r = 4;
        let ft = run_hmpi_ft(cluster, 3, n, r, Some(9)).expect("survivors complete");

        assert!(ft.rebuilds >= 1, "the crash must force a rebuild");
        assert_eq!(ft.initial_members.len(), 9, "everyone starts on the grid");
        assert_eq!(ft.final_m, 2, "eight survivors fill a 2x2 grid");
        assert_eq!(ft.final_members.len(), 4);
        assert!(
            !ft.final_members.contains(&7),
            "the dead node must be excluded, got {:?}",
            ft.final_members
        );
        // The survivors still computed the *full* product, exactly.
        assert_matches(ft.c.as_ref().unwrap(), &reference(n, r));
        // The makespan pays for the aborted attempt and the recovery.
        assert!(ft.makespan > ft.time);
    }

    #[test]
    fn members_are_distinct_and_parent_hosted() {
        let run = run_hmpi(paper_cluster(), 3, 9, 4, Some(9));
        assert_eq!(run.members.len(), 9);
        let mut sorted = run.members.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 9);
        assert_eq!(run.members[0], 0, "grid (0,0) is the parent/host");
    }
}

#[cfg(test)]
mod grid_size_tests {
    use super::*;
    use crate::matmul::block::{serial_matmul, BlockMatrix};
    use hetsim::{Link, Protocol, TopologyBuilder};

    #[test]
    fn two_by_two_grid_on_a_five_node_cluster() {
        // m = 2 uses 4 of 5 machines; the speed-5 node must be left out and
        // the result must still be exact.
        // Declared through the topology builder: one level, so the cluster
        // is bit-identical to the classic flat construction.
        let (cluster, _) = TopologyBuilder::new()
            .node("host", 60.0)
            .node("big", 150.0)
            .node("mid", 90.0)
            .node("ok", 70.0)
            .node("tiny", 5.0)
            .intra_switch(Link::with_defaults(Protocol::Tcp))
            .build()
            .into_parts();
        let cluster = Arc::new(cluster);
        let n = 8;
        let r = 3;
        let run = run_hmpi(cluster, 2, n, r, None);
        assert_eq!(run.members.len(), 4);
        assert!(!run.members.contains(&4), "speed-5 node must be excluded");
        let want = serial_matmul(
            &BlockMatrix::deterministic(n, r, SEED_A),
            &BlockMatrix::deterministic(n, r, SEED_B),
        );
        let got = run.c.unwrap();
        for (x, y) in got.data().iter().zip(want.data()) {
            assert!((x - y).abs() < 1e-9);
        }
    }
}
