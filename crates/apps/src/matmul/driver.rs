//! Matrix-multiplication drivers: homogeneous MPI baseline vs the paper's
//! Figure 8 HMPI program.
//!
//! The HMPI driver follows Figure 8 step by step: `HMPI_Recon` with the
//! `rMxM` benchmark, a `HMPI_Timeof` sweep choosing the optimal generalised
//! block size `l`, `HMPI_Group_create` with the Figure 7 model, then the
//! block-cyclic computation over the group communicator. The MPI baseline
//! uses the homogeneous distribution on the first `m²` processes of
//! `MPI_COMM_WORLD` — the paper's "pure chance" group.

use crate::matmul::block::BlockMatrix;
use crate::matmul::dist::GeneralizedBlockDist;
use crate::matmul::model::matmul_model;
use crate::matmul::parallel::DistributedMatmul;
use hetsim::Cluster;
use hmpi::{HmpiRuntime, MappingAlgorithm, Recon};
use mpisim::Universe;
use std::sync::Arc;

/// Seeds for the deterministic input matrices (shared by every driver so
/// results are comparable).
pub const SEED_A: u64 = 101;
/// Seed for matrix B.
pub const SEED_B: u64 = 202;

/// Outcome of one matrix-multiplication execution.
#[derive(Debug, Clone)]
pub struct MatmulRun {
    /// Virtual execution time of the parallel algorithm, seconds.
    pub time: f64,
    /// `members[grid linear index] = world rank`.
    pub members: Vec<usize>,
    /// The gathered result matrix (from the grid root), for verification.
    pub c: Option<BlockMatrix>,
    /// `HMPI_Group_create`'s predicted time (HMPI runs only).
    pub predicted: Option<f64>,
    /// The generalised block size used.
    pub l: usize,
}

/// The MPI baseline: homogeneous 2D block-cyclic distribution on the first
/// `m²` world ranks. `l` must be a multiple of `m` (default the paper-style
/// fully cyclic `l = m` when `None`).
///
/// # Panics
/// Panics if the cluster hosts fewer than `m²` processes or `m` does not
/// divide `l`.
pub fn run_mpi(
    cluster: Arc<Cluster>,
    m: usize,
    n: usize,
    r: usize,
    l: Option<usize>,
) -> MatmulRun {
    let l = l.unwrap_or(m);
    let universe = Universe::new(cluster);
    assert!(m * m <= universe.size());
    let report = universe.run(|proc| {
        let world = proc.world();
        let me = world.rank();
        let grid_comm = world
            .split((me < m * m).then_some(1), 1)
            .expect("split cannot fail");
        let grid_comm = grid_comm?;
        let dist = GeneralizedBlockDist::homogeneous(m, l);
        let mut mm = DistributedMatmul::new(dist, n, r, grid_comm.rank(), SEED_A, SEED_B);
        let t0 = grid_comm.clock().now();
        mm.run(&grid_comm).expect("MM kernel");
        grid_comm.barrier().expect("closing barrier");
        let dur = (grid_comm.clock().now() - t0).as_secs();
        let c = mm.gather_c(&grid_comm).expect("gather C");
        Some((dur, c))
    });
    let mut time = 0.0f64;
    let mut c = None;
    for outcome in report.results.iter().flatten() {
        time = time.max(outcome.0);
        if outcome.1.is_some() {
            c = outcome.1.clone();
        }
    }
    MatmulRun {
        time,
        members: (0..m * m).collect(),
        c,
        predicted: None,
        l,
    }
}

/// The Figure 8 HMPI program. With `l = None`, the host selects the optimal
/// generalised block size by an `HMPI_Timeof` sweep over `m..=n`.
///
/// # Panics
/// Panics if the cluster hosts fewer than `m²` processes.
pub fn run_hmpi(
    cluster: Arc<Cluster>,
    m: usize,
    n: usize,
    r: usize,
    l: Option<usize>,
) -> MatmulRun {
    run_hmpi_with(cluster, m, n, r, l, MappingAlgorithm::default())
}

/// [`run_hmpi`] with an explicit selection algorithm (for ablations).
///
/// # Panics
/// As [`run_hmpi`].
pub fn run_hmpi_with(
    cluster: Arc<Cluster>,
    m: usize,
    n: usize,
    r: usize,
    l: Option<usize>,
    algo: MappingAlgorithm,
) -> MatmulRun {
    run_hmpi_inner(cluster, m, n, r, l, algo, false).0
}

/// A traced HMPI run: the run itself, the full virtual-time trace, and the
/// prediction-vs-actual report comparing `HMPI_Group_create`'s whole-run
/// prediction against the measured kernel time, with the per-rank
/// compute / comm / wait breakdown of the whole traced run.
#[derive(Debug, Clone)]
pub struct MatmulTracedRun {
    /// The run outcome (same as [`run_hmpi`]).
    pub run: MatmulRun,
    /// Every recorded span: recon, selection, compute, sends, receives.
    pub trace: hetsim::Trace,
    /// Prediction accuracy plus phase breakdown.
    pub report: hetsim::PredictionReport,
}

/// [`run_hmpi`] with tracing enabled (DESIGN.md §9).
///
/// # Panics
/// As [`run_hmpi`].
pub fn run_hmpi_traced(
    cluster: Arc<Cluster>,
    m: usize,
    n: usize,
    r: usize,
    l: Option<usize>,
) -> MatmulTracedRun {
    let n_ranks = cluster.len();
    let (run, trace) = run_hmpi_inner(cluster, m, n, r, l, MappingAlgorithm::default(), true);
    let trace = trace.expect("tracing was enabled");
    // The Figure 7 model describes the whole multiplication.
    let predicted = run.predicted.expect("HMPI runs carry a prediction");
    let report = hetsim::PredictionReport::new(
        predicted,
        hetsim::SimTime::from_secs(run.time),
        &trace,
        n_ranks,
    );
    MatmulTracedRun { run, trace, report }
}

fn run_hmpi_inner(
    cluster: Arc<Cluster>,
    m: usize,
    n: usize,
    r: usize,
    l: Option<usize>,
    algo: MappingAlgorithm,
    traced: bool,
) -> (MatmulRun, Option<hetsim::Trace>) {
    let mut runtime = HmpiRuntime::new(cluster).with_algorithm(algo);
    if traced {
        runtime = runtime.with_tracing();
    }
    assert!(m * m <= runtime.universe().size());

    type Out = (Option<(f64, Option<BlockMatrix>)>, Option<(Vec<usize>, f64, usize)>);
    let report = runtime.run(|h| -> Out {
        // HMPI_Recon with the rMxM benchmark: one r x r block update.
        h.recon_opts(Recon::new(1.0).bench(|hh: &hmpi::Hmpi| hh.compute(1.0)))
            .expect("recon");

        // The host arranges the m^2 best processors on the grid (its own
        // speed at the parent position (0,0)) and picks l by Timeof sweep.
        // Every rank pre-sizes the [l, grid speeds...] message so the
        // engine's schedule-driven broadcast can ship it.
        let mut msg = vec![0.0f64; 1 + m * m];
        if h.is_host() {
            let placement = h.process().placement();
            let est = h.estimates();
            let mut others: Vec<f64> = (1..h.size())
                .map(|rank| est.speed(placement[rank]))
                .collect();
            others.sort_by(|a, b| b.total_cmp(a));
            let mut grid_speeds = Vec::with_capacity(m * m);
            grid_speeds.push(est.speed(placement[0]));
            grid_speeds.extend(others.into_iter().take(m * m - 1));

            let l = match l {
                Some(l) => l,
                None => {
                    // Figure 8: sweep bsize, keep the predicted minimum.
                    // timeof_sweep keeps the first strict minimum (same
                    // tie-break as a manual loop) and surfaces the first
                    // error if every candidate fails to evaluate.
                    let models: Vec<_> = (m..=n)
                        .map(|cand| {
                            let dist =
                                GeneralizedBlockDist::heterogeneous(m, cand, &grid_speeds);
                            matmul_model(&dist, r, n).expect("Figure 7 model")
                        })
                        .collect();
                    let (idx, _) = h
                        .timeof_sweep(
                            models
                                .iter()
                                .map(|mo| mo as &dyn perfmodel::PerformanceModel),
                        )
                        .expect("timeof sweep")
                        .expect("bsize sweep is non-empty");
                    m + idx
                }
            };
            msg[0] = l as f64;
            msg[1..].copy_from_slice(&grid_speeds);
        }
        h.world().bcast_into(&mut msg, 0).expect("bcast l + speeds");
        let l = msg[0] as usize;
        let grid_speeds = msg[1..].to_vec();

        let dist = GeneralizedBlockDist::heterogeneous(m, l, &grid_speeds);
        let model = matmul_model(&dist, r, n).expect("Figure 7 model");
        let group = h.group_create(&model).expect("group_create");
        let meta = if h.is_host() {
            Some((group.members().to_vec(), group.predicted_time(), l))
        } else {
            None
        };

        let outcome = if let Some(comm) = group.comm() {
            let mut mm = DistributedMatmul::new(dist, n, r, comm.rank(), SEED_A, SEED_B);
            let t0 = comm.clock().now();
            mm.run(comm).expect("MM kernel");
            comm.barrier().expect("closing barrier");
            let dur = (comm.clock().now() - t0).as_secs();
            let c = mm.gather_c(comm).expect("gather C");
            Some((dur, c))
        } else {
            None
        };
        if group.is_member() {
            h.group_free(group).expect("group_free");
        }
        h.finalize().expect("finalize");
        (outcome, meta)
    });

    let trace = report.trace;
    let mut time = 0.0f64;
    let mut c = None;
    let mut meta = None;
    for (outcome, m_) in report.results {
        if let Some((dur, cm)) = outcome {
            time = time.max(dur);
            if cm.is_some() {
                c = cm;
            }
        }
        if m_.is_some() {
            meta = m_;
        }
    }
    let (members, predicted, l) = meta.expect("host reported the selection");
    (
        MatmulRun {
            time,
            members,
            c,
            predicted: Some(predicted),
            l,
        },
        trace,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::block::{serial_matmul, BlockMatrix};

    fn paper_cluster() -> Arc<Cluster> {
        Arc::new(Cluster::paper_lan_matmul())
    }

    fn reference(n: usize, r: usize) -> BlockMatrix {
        serial_matmul(
            &BlockMatrix::deterministic(n, r, SEED_A),
            &BlockMatrix::deterministic(n, r, SEED_B),
        )
    }

    fn assert_matches(c: &BlockMatrix, want: &BlockMatrix) {
        for (x, y) in c.data().iter().zip(want.data()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn mpi_baseline_is_correct() {
        let n = 9;
        let r = 4;
        let run = run_mpi(paper_cluster(), 3, n, r, None);
        assert_matches(run.c.as_ref().unwrap(), &reference(n, r));
    }

    #[test]
    fn hmpi_is_correct_with_fixed_l() {
        let n = 9;
        let r = 4;
        let run = run_hmpi(paper_cluster(), 3, n, r, Some(9));
        assert_matches(run.c.as_ref().unwrap(), &reference(n, r));
        assert_eq!(run.l, 9);
    }

    #[test]
    fn hmpi_beats_homogeneous_mpi_on_paper_lan() {
        // The paper's headline MM result: ~3x on the 9-machine LAN.
        let n = 9;
        let r = 8;
        let mpi = run_mpi(paper_cluster(), 3, n, r, None);
        let hmpi = run_hmpi(paper_cluster(), 3, n, r, Some(9));
        assert!(
            hmpi.time < mpi.time,
            "HMPI ({}) must beat MPI ({})",
            hmpi.time,
            mpi.time
        );
        let speedup = mpi.time / hmpi.time;
        assert!(speedup > 1.5, "expected a large speedup, got {speedup:.2}");
    }

    #[test]
    fn timeof_sweep_chooses_a_valid_l() {
        let n = 9;
        let r = 4;
        let run = run_hmpi(paper_cluster(), 3, n, r, None);
        assert!((3..=9).contains(&run.l), "chosen l = {}", run.l);
        assert_matches(run.c.as_ref().unwrap(), &reference(n, r));
    }

    #[test]
    fn traced_run_reports_prediction_accuracy() {
        let n = 9;
        let r = 4;
        let traced = run_hmpi_traced(paper_cluster(), 3, n, r, Some(9));
        assert_matches(traced.run.c.as_ref().unwrap(), &reference(n, r));
        assert!(!traced.trace.is_empty(), "tracing must record events");
        let rep = &traced.report;
        assert!(rep.predicted > 0.0 && rep.measured > 0.0);
        let compute: f64 = rep.phases.iter().map(|p| p.compute.as_secs()).sum();
        assert!(compute > 0.0);
    }

    #[test]
    fn members_are_distinct_and_parent_hosted() {
        let run = run_hmpi(paper_cluster(), 3, 9, 4, Some(9));
        assert_eq!(run.members.len(), 9);
        let mut sorted = run.members.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 9);
        assert_eq!(run.members[0], 0, "grid (0,0) is the parent/host");
    }
}

#[cfg(test)]
mod grid_size_tests {
    use super::*;
    use crate::matmul::block::{serial_matmul, BlockMatrix};
    use hetsim::{ClusterBuilder, Link, Protocol};

    #[test]
    fn two_by_two_grid_on_a_five_node_cluster() {
        // m = 2 uses 4 of 5 machines; the speed-5 node must be left out and
        // the result must still be exact.
        let cluster = Arc::new(
            ClusterBuilder::new()
                .node("host", 60.0)
                .node("big", 150.0)
                .node("mid", 90.0)
                .node("ok", 70.0)
                .node("tiny", 5.0)
                .all_to_all(Link::with_defaults(Protocol::Tcp))
                .build(),
        );
        let n = 8;
        let r = 3;
        let run = run_hmpi(cluster, 2, n, r, None);
        assert_eq!(run.members.len(), 4);
        assert!(!run.members.contains(&4), "speed-5 node must be excluded");
        let want = serial_matmul(
            &BlockMatrix::deterministic(n, r, SEED_A),
            &BlockMatrix::deterministic(n, r, SEED_B),
        );
        let got = run.c.unwrap();
        for (x, y) in got.data().iter().zip(want.data()) {
            assert!((x - y).abs() < 1e-9);
        }
    }
}
