//! Heterogeneous parallel matrix multiplication (paper Section 4).
//!
//! "The main idea of efficient solving a regular problem is to reduce it to
//! such an irregular problem, the structure of which is determined by the
//! irregularity of underlying hardware rather than the irregularity of the
//! problem itself." The algorithm is the ScaLAPACK 2D block-cyclic matrix
//! multiplication, modified to use the heterogeneous generalised-block data
//! distribution of Kalinov–Lastovetsky (the paper's reference \[6\]).

pub mod block;
pub mod dist;
pub mod driver;
pub mod model;
pub mod parallel;

pub use block::BlockMatrix;
pub use dist::GeneralizedBlockDist;
pub use driver::{run_hmpi, run_hmpi_traced, run_hmpi_with, run_mpi, MatmulRun, MatmulTracedRun};
pub use model::{matmul_model, matmul_params, MATMUL_MODEL_SOURCE};
pub use parallel::DistributedMatmul;
