//! The matrix-multiplication performance model — the paper's Figure 7.
//!
//! Six parameters: `m` (grid side), `r` (block size), `n` (matrix size in
//! blocks), `l` (generalised block size), `w[m]` (column slice widths) and
//! `h[m][m][m][m]` (pairwise rectangle row overlaps). The `scheme` walks the
//! `n` steps of the algorithm: the pivot column of `A` is broadcast
//! horizontally, the pivot row of `B` vertically, then every processor
//! updates its rectangle of `C` — `100/n` percent of its total volume per
//! step.
//!
//! One transcription note: the paper's figure prints the vertical (matrix
//! `B`) link volume as `w[I]*...`; the accompanying text derives
//! `w[J]*h[I][J][I][J]*(n/l)*(n/l)` — the number of `r × r` blocks of `B`
//! assigned to `P_IJ` — so `w[J]` is used here.

use crate::matmul::dist::GeneralizedBlockDist;
use perfmodel::{CompiledModel, EvalError, ModelInstance, ParamValue, ParseError};

/// Figure 7 of the paper (with the `w[I]`→`w[J]` fix described in the
/// module docs).
pub const MATMUL_MODEL_SOURCE: &str = r"
typedef struct {int I; int J;} Processor;

algorithm ParallelAxB(int m, int r, int n, int l, int w[m],
                      int h[m][m][m][m])
{
  coord I=m, J=m;
  node {I>=0 && J>=0: bench*(w[J]*(h[I][J][I][J])*(n/l)*(n/l)*n);};
  link (K=m, L=m)
  {
    I>=0 && J>=0 && I!=K :
      length*(w[J]*(h[I][J][I][J])*(n/l)*(n/l)*(r*r)*sizeof(double))
             [I, J] -> [K, J];
    I>=0 && J>=0 && J!=L && ((h[I][J][K][L]) > 0) :
      length*(w[J]*(h[I][J][K][L])*(n/l)*(n/l)*(r*r)*sizeof(double))
             [I, J] -> [K, L];
  };
  parent[0,0];
  scheme
  {
    int k;
    Processor Root, Receiver, Current;
    for(k = 0; k < n; k++)
    {
      int Acolumn = k%l, Arow;
      int Brow = k%l, Bcolumn;
      par(Arow = 0; Arow < l; )
      {
        GetProcessor(Arow, Acolumn, m, h, w, &Root);
        par(Receiver.I = 0; Receiver.I < m; Receiver.I++)
          par(Receiver.J = 0; Receiver.J < m; Receiver.J++)
            if((Root.I != Receiver.I || Root.J != Receiver.J) &&
               Root.J != Receiver.J)
              if((h[Root.I][Root.J][Receiver.I][Receiver.J]) > 0)
                (100/(w[Root.J]*(n/l)))%%
                       [Root.I, Root.J] -> [Receiver.I, Receiver.J];
        Arow += h[Root.I][Root.J][Root.I][Root.J];
      }
      par(Bcolumn = 0; Bcolumn < l; )
      {
        GetProcessor(Brow, Bcolumn, m, h, w, &Root);
        par(Receiver.I = 0; Receiver.I < m; Receiver.I++)
          if(Root.I != Receiver.I)
            (100/((h[Root.I][Root.J][Root.I][Root.J])*(n/l))) %%
                  [Root.I, Root.J] -> [Receiver.I, Root.J];
        Bcolumn += w[Root.J];
      }
      par(Current.I = 0; Current.I < m; Current.I++)
        par(Current.J = 0; Current.J < m; Current.J++)
          (100/n) %% [Current.I, Current.J];
    }
  };
};
";

/// Compiles the Figure 7 model.
///
/// # Errors
/// Never fails in practice (compile-time constant source, covered by tests).
pub fn matmul_compiled() -> Result<CompiledModel, ParseError> {
    CompiledModel::compile(MATMUL_MODEL_SOURCE)
}

/// Packs the model parameters for a distribution — the Figure 8 program's
/// `model_params` with `param_count = 4 + m + m*m*m*m`.
pub fn matmul_params(
    dist: &GeneralizedBlockDist,
    r: usize,
    n: usize,
) -> Vec<ParamValue> {
    vec![
        ParamValue::Int(dist.m as i64),
        ParamValue::Int(r as i64),
        ParamValue::Int(n as i64),
        ParamValue::Int(dist.l as i64),
        ParamValue::Array(dist.w_array()),
        ParamValue::Array(dist.h_array()),
    ]
}

/// Compiles and instantiates the Figure 7 model for a distribution — the
/// `HMPI_Model_ParallelAxB` handle.
///
/// # Errors
/// [`EvalError`] on inconsistent parameters.
pub fn matmul_model(
    dist: &GeneralizedBlockDist,
    r: usize,
    n: usize,
) -> Result<ModelInstance, EvalError> {
    let compiled = matmul_compiled().expect("Figure 7 source is valid");
    compiled.instantiate(&matmul_params(dist, r, n))
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use perfmodel::{PerformanceModel, RecordingSink, SchemeEvent};

    fn paper_speeds() -> Vec<f64> {
        vec![46.0, 46.0, 46.0, 46.0, 46.0, 46.0, 176.0, 106.0, 9.0]
    }

    #[test]
    fn figure7_source_parses() {
        let m = matmul_compiled().unwrap();
        assert_eq!(m.name(), "ParallelAxB");
        assert_eq!(m.param_names(), vec!["m", "r", "n", "l", "w", "h"]);
    }

    #[test]
    fn volumes_match_rectangle_areas() {
        let dist = GeneralizedBlockDist::heterogeneous(3, 9, &paper_speeds());
        let n = 18;
        let inst = matmul_model(&dist, 8, n).unwrap();
        assert_eq!(inst.num_processors(), 9);
        let ng = (n / dist.l) * (n / dist.l);
        for gi in 0..3 {
            for gj in 0..3 {
                let linear = gi * 3 + gj;
                let want = (dist.area(gi, gj) * ng * n) as f64;
                assert!(
                    (inst.volumes()[linear] - want).abs() < 1e-9,
                    "volume of ({gi},{gj})"
                );
            }
        }
        assert_eq!(inst.parent(), 0);
    }

    #[test]
    fn vertical_links_cover_columns() {
        let dist = GeneralizedBlockDist::heterogeneous(3, 9, &paper_speeds());
        let n = 9;
        let inst = matmul_model(&dist, 8, n).unwrap();
        let comm = inst.comm_bytes();
        // Same-column pairs (vertical, matrix B): P(0,0) -> P(1,0) carries
        // all of P(0,0)'s B blocks: w[0]*h[0][0][0][0]*(n/l)^2*r^2*8 bytes.
        let bytes = (dist.w[0] * dist.heights[0][0]) as f64 * 1.0 * (8.0 * 8.0) * 8.0;
        assert!((comm[0][3] - bytes).abs() < 1e-9, "{} vs {bytes}", comm[0][3]);
        // A processor never sends to itself.
        for i in 0..9 {
            assert_eq!(comm[i][i], 0.0);
        }
    }

    #[test]
    fn horizontal_links_follow_row_overlap() {
        let dist = GeneralizedBlockDist::heterogeneous(3, 9, &paper_speeds());
        let n = 9;
        let inst = matmul_model(&dist, 8, n).unwrap();
        let comm = inst.comm_bytes();
        let h = dist.h_array();
        let m = 3;
        let at = |i: usize, j: usize, k: usize, l: usize| h[((i * m + j) * m + k) * m + l];
        // P(0,0) -> P(k,l) for l != 0 carries w[0]*h[0][0][k][l] blocks.
        for k in 0..3 {
            for l in 1..3usize {
                let want = (dist.w[0] as i64 * at(0, 0, k, l)) as f64 * 64.0 * 8.0;
                let got = comm[0][k * 3 + l];
                assert!((got - want).abs() < 1e-9, "pair (0,0)->({k},{l})");
            }
        }
    }

    #[test]
    fn scheme_emits_n_compute_rounds() {
        let dist = GeneralizedBlockDist::heterogeneous(2, 4, &[46.0, 176.0, 106.0, 9.0]);
        let n = 8;
        let inst = matmul_model(&dist, 4, n).unwrap();
        let mut sink = RecordingSink::default();
        inst.run_scheme(&mut sink).unwrap();
        let computes: Vec<(usize, f64)> = sink
            .events
            .iter()
            .filter_map(|e| match e {
                SchemeEvent::Compute { proc, percent } => Some((*proc, *percent)),
                _ => None,
            })
            .collect();
        // n steps x m^2 processors, each at 100/n percent.
        assert_eq!(computes.len(), n * 4);
        for (_, pct) in computes {
            assert!((pct - 100.0 / n as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn scheme_transfer_percentages_sum_to_about_100() {
        // Over all n steps, each pair's transfer percentages should total
        // ~100% of the declared volume.
        let dist = GeneralizedBlockDist::heterogeneous(2, 4, &[46.0, 176.0, 106.0, 9.0]);
        let n = 8;
        let inst = matmul_model(&dist, 4, n).unwrap();
        let mut sink = RecordingSink::default();
        inst.run_scheme(&mut sink).unwrap();
        let mut totals = vec![vec![0.0f64; 4]; 4];
        for e in &sink.events {
            if let SchemeEvent::Transfer { src, dst, percent } = e {
                totals[*src][*dst] += percent;
            }
        }
        for s in 0..4 {
            for d in 0..4 {
                if inst.comm_bytes()[s][d] > 0.0 {
                    assert!(
                        (totals[s][d] - 100.0).abs() < 1.0,
                        "pair {s}->{d} transferred {:.2}%",
                        totals[s][d]
                    );
                }
            }
        }
    }

    #[test]
    fn predicted_time_has_block_size_tradeoff_inputs() {
        // Larger l -> better balance granularity but the model stays
        // well-defined across the sweep range.
        let speeds = paper_speeds();
        for l in [3usize, 9, 18] {
            let dist = GeneralizedBlockDist::heterogeneous(3, l, &speeds);
            let inst = matmul_model(&dist, 8, 18).unwrap();
            let cost = perfmodel::CostModel::homogeneous(9, 50.0, 1e-4, 1e7);
            let t = inst.predict_time(&cost).unwrap();
            assert!(t.is_finite() && t > 0.0, "l={l}");
        }
    }
}
