//! Distributed 2D block-cyclic matrix multiplication over an
//! [`mpisim::Comm`].
//!
//! At each step `k`, owners of the pivot column of `A` send their blocks
//! horizontally, owners of the pivot row of `B` send vertically (paper
//! Figure 6), and every processor updates its rectangle of `C` with one
//! block-multiply per owned block. The same code runs the heterogeneous
//! distribution (HMPI) and the homogeneous one (the MPI baseline) — only the
//! [`GeneralizedBlockDist`] differs.

use crate::matmul::block::{block_multiply_add, BlockMatrix};
use crate::matmul::dist::GeneralizedBlockDist;
use mpisim::{Comm, MpiResult};
use std::collections::HashMap;

const TAG_A_BASE: i32 = 10_000;
const TAG_B_BASE: i32 = 2_000_000;

/// One grid processor's share of the computation.
#[derive(Debug, Clone)]
pub struct DistributedMatmul {
    /// Matrix size in blocks.
    pub n: usize,
    /// Block side in elements.
    pub r: usize,
    /// Grid side.
    pub m: usize,
    /// The data distribution.
    pub dist: GeneralizedBlockDist,
    /// My grid row.
    pub my_i: usize,
    /// My grid column.
    pub my_j: usize,
    a: HashMap<(usize, usize), Vec<f64>>,
    b: HashMap<(usize, usize), Vec<f64>>,
    c: HashMap<(usize, usize), Vec<f64>>,
    /// Block rows `i` with at least one owned `C` block.
    my_rows: Vec<usize>,
    /// Block columns `j` with at least one owned `C` block.
    my_cols: Vec<usize>,
}

impl DistributedMatmul {
    /// Builds rank `rank`'s share (grid position `(rank / m, rank % m)`)
    /// from deterministic input matrices.
    pub fn new(
        dist: GeneralizedBlockDist,
        n: usize,
        r: usize,
        rank: usize,
        seed_a: u64,
        seed_b: u64,
    ) -> Self {
        let m = dist.m;
        assert!(rank < m * m);
        assert!(n >= dist.l, "the paper requires l <= n");
        let (my_i, my_j) = (rank / m, rank % m);
        let a_full = BlockMatrix::deterministic(n, r, seed_a);
        let b_full = BlockMatrix::deterministic(n, r, seed_b);

        let mut a = HashMap::new();
        let mut b = HashMap::new();
        let mut c = HashMap::new();
        for i in 0..n {
            for j in 0..n {
                if dist.owner_of_block(i, j) == (my_i, my_j) {
                    a.insert((i, j), a_full.block(i, j).to_vec());
                    b.insert((i, j), b_full.block(i, j).to_vec());
                    c.insert((i, j), vec![0.0; r * r]);
                }
            }
        }
        let my_rows: Vec<usize> = (0..n)
            .filter(|&i| dist.row_slice(i % dist.l, my_j) == my_i)
            .collect();
        let my_cols: Vec<usize> = (0..n)
            .filter(|&j| dist.col_slice(j % dist.l) == my_j)
            .collect();
        DistributedMatmul {
            n,
            r,
            m,
            dist,
            my_i,
            my_j,
            a,
            b,
            c,
            my_rows,
            my_cols,
        }
    }

    /// Grid position to communicator rank.
    fn rank_of(&self, gi: usize, gj: usize) -> usize {
        gi * self.m + gj
    }

    /// Number of owned `C` blocks — the per-step computation volume in
    /// block updates.
    pub fn owned_blocks(&self) -> usize {
        self.c.len()
    }

    /// One step `k` of the algorithm: pivot-column broadcast of `A`,
    /// pivot-row broadcast of `B`, rank-1 block update of `C`.
    ///
    /// # Errors
    /// Propagates transport errors.
    pub fn step(&mut self, k: usize, comm: &Comm) -> MpiResult<()> {
        let me = (self.my_i, self.my_j);

        // Send my pivot-column A blocks horizontally: a(i, k) goes to the
        // owner of c(i, ·) in every grid column.
        for i in 0..self.n {
            if let Some(block) = self.a.get(&(i, k)) {
                for gj in 0..self.m {
                    let gi = self.dist.row_slice(i % self.dist.l, gj);
                    if (gi, gj) != me {
                        comm.send(block, self.rank_of(gi, gj), TAG_A_BASE + i as i32)?;
                    }
                }
            }
        }
        // Send my pivot-row B blocks vertically: b(k, j) goes to every grid
        // row of my column slice.
        for j in 0..self.n {
            if let Some(block) = self.b.get(&(k, j)) {
                let gj = self.dist.col_slice(j % self.dist.l);
                debug_assert_eq!(gj, self.my_j);
                for gi in 0..self.m {
                    if (gi, gj) != me {
                        comm.send(block, self.rank_of(gi, gj), TAG_B_BASE + j as i32)?;
                    }
                }
            }
        }

        // Receive the pivot blocks I need.
        let mut a_pivot: HashMap<usize, Vec<f64>> = HashMap::new();
        for &i in &self.my_rows {
            if let Some(own) = self.a.get(&(i, k)) {
                a_pivot.insert(i, own.clone());
            } else {
                let (gi, gj) = self.dist.owner_of_block(i, k);
                let (block, _) =
                    comm.recv::<f64>(self.rank_of(gi, gj), TAG_A_BASE + i as i32)?;
                a_pivot.insert(i, block);
            }
        }
        let mut b_pivot: HashMap<usize, Vec<f64>> = HashMap::new();
        for &j in &self.my_cols {
            if let Some(own) = self.b.get(&(k, j)) {
                b_pivot.insert(j, own.clone());
            } else {
                let (gi, gj) = self.dist.owner_of_block(k, j);
                let (block, _) =
                    comm.recv::<f64>(self.rank_of(gi, gj), TAG_B_BASE + j as i32)?;
                b_pivot.insert(j, block);
            }
        }

        // Update every owned C block: c(i,j) += a(i,k) * b(k,j).
        let r = self.r;
        for (&(i, j), cblock) in &mut self.c {
            let ab = &a_pivot[&i];
            let bb = &b_pivot[&j];
            block_multiply_add(cblock, ab, bb, r);
        }
        // Virtual cost: one block update per owned block.
        comm.compute(self.c.len() as f64);
        Ok(())
    }

    /// Runs all `n` steps.
    ///
    /// # Errors
    /// Propagates transport errors.
    pub fn run(&mut self, comm: &Comm) -> MpiResult<()> {
        for k in 0..self.n {
            self.step(k, comm)?;
        }
        Ok(())
    }

    /// Gathers the distributed `C` to communicator rank 0 for verification.
    /// Encodes each block as `[i, j, elements...]`.
    ///
    /// # Errors
    /// Propagates transport errors.
    pub fn gather_c(&self, comm: &Comm) -> MpiResult<Option<BlockMatrix>> {
        let r = self.r;
        let mut payload: Vec<f64> = Vec::with_capacity(self.c.len() * (2 + r * r));
        let mut keys: Vec<&(usize, usize)> = self.c.keys().collect();
        keys.sort();
        for &(i, j) in keys {
            payload.push(i as f64);
            payload.push(j as f64);
            payload.extend_from_slice(&self.c[&(i, j)]);
        }
        let gathered = comm.gather(&payload, 0)?;
        Ok(gathered.map(|parts| {
            let mut full = BlockMatrix::zeros(self.n, r);
            for part in parts {
                let stride = 2 + r * r;
                assert_eq!(part.len() % stride, 0);
                for chunk in part.chunks_exact(stride) {
                    let i = chunk[0] as usize;
                    let j = chunk[1] as usize;
                    full.block_mut(i, j).copy_from_slice(&chunk[2..]);
                }
            }
            full
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matmul::block::serial_matmul;
    use hetsim::{ClusterBuilder, Link, Protocol};
    use mpisim::Universe;
    use std::sync::Arc;

    fn uniform_cluster(n: usize) -> Arc<hetsim::Cluster> {
        let mut b = ClusterBuilder::new();
        for i in 0..n {
            b = b.node(format!("h{i}"), 100.0);
        }
        Arc::new(b.all_to_all(Link::new(1e-4, 1e7, Protocol::Tcp)).build())
    }

    fn check_against_serial(dist: GeneralizedBlockDist, n: usize, r: usize) {
        let m = dist.m;
        let u = Universe::new(uniform_cluster(m * m));
        let report = u.run(move |proc| {
            let world = proc.world();
            let mut mm = DistributedMatmul::new(dist.clone(), n, r, world.rank(), 5, 11);
            mm.run(&world).unwrap();
            mm.gather_c(&world).unwrap()
        });
        let a = BlockMatrix::deterministic(n, r, 5);
        let b = BlockMatrix::deterministic(n, r, 11);
        let want = serial_matmul(&a, &b);
        let got = report.results[0].as_ref().unwrap();
        for (x, y) in got.data().iter().zip(want.data()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn homogeneous_distribution_matches_serial() {
        check_against_serial(GeneralizedBlockDist::homogeneous(2, 4), 8, 3);
    }

    #[test]
    fn heterogeneous_distribution_matches_serial() {
        let speeds = vec![46.0, 176.0, 106.0, 9.0];
        check_against_serial(GeneralizedBlockDist::heterogeneous(2, 6, &speeds), 12, 2);
    }

    #[test]
    fn heterogeneous_3x3_matches_serial() {
        let speeds = vec![46.0, 46.0, 46.0, 46.0, 46.0, 46.0, 176.0, 106.0, 9.0];
        check_against_serial(GeneralizedBlockDist::heterogeneous(3, 6, &speeds), 6, 2);
    }

    #[test]
    fn non_dividing_generalised_block_still_correct() {
        // l = 5 does not divide n = 8: partial generalised blocks at the
        // edges must still multiply correctly.
        let speeds = vec![100.0, 50.0, 25.0, 10.0];
        check_against_serial(GeneralizedBlockDist::heterogeneous(2, 5, &speeds), 8, 2);
    }

    #[test]
    fn owned_blocks_sum_to_n_squared() {
        let speeds = vec![46.0, 46.0, 46.0, 46.0, 46.0, 46.0, 176.0, 106.0, 9.0];
        let dist = GeneralizedBlockDist::heterogeneous(3, 9, &speeds);
        let n = 9;
        let total: usize = (0..9)
            .map(|rank| DistributedMatmul::new(dist.clone(), n, 2, rank, 1, 2).owned_blocks())
            .sum();
        assert_eq!(total, n * n);
    }

    #[test]
    fn heterogeneous_balances_virtual_time() {
        // With the distribution matched to the speeds, per-step compute time
        // should be nearly equal across ranks; with homogeneous it is not.
        let speeds = vec![100.0, 100.0, 100.0, 10.0];
        let cluster = Arc::new(
            ClusterBuilder::new()
                .node("a", 100.0)
                .node("b", 100.0)
                .node("c", 100.0)
                .node("d", 10.0)
                .all_to_all(Link::new(1e-5, 1e9, Protocol::Tcp))
                .build(),
        );
        let n = 8;
        let run = |dist: GeneralizedBlockDist| {
            let u = Universe::new(cluster.clone());
            let report = u.run(move |proc| {
                let world = proc.world();
                let mut mm = DistributedMatmul::new(dist.clone(), n, 2, world.rank(), 1, 2);
                mm.run(&world).unwrap();
                world.barrier().unwrap();
                world.clock().now().as_secs()
            });
            report.makespan.as_secs()
        };
        let hom = run(GeneralizedBlockDist::homogeneous(2, 8));
        let het = run(GeneralizedBlockDist::heterogeneous(2, 8, &speeds));
        assert!(
            het < hom,
            "heterogeneous ({het}) must beat homogeneous ({hom})"
        );
    }
}
