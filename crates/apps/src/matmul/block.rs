//! Block matrices: `n × n` arrays of `r × r` blocks of `f64`.
//!
//! "Each element in A, B, and C is a square r×r block and the unit of
//! computation is the updating of one block, i.e., a matrix multiplication
//! of size r."

/// A dense square matrix stored as `n × n` blocks of `r × r` elements,
//  block-major (block `(i, j)` is contiguous).
#[derive(Debug, Clone, PartialEq)]
pub struct BlockMatrix {
    /// Matrix size in blocks per side.
    pub n: usize,
    /// Block size in elements per side.
    pub r: usize,
    data: Vec<f64>,
}

impl BlockMatrix {
    /// A zero matrix.
    pub fn zeros(n: usize, r: usize) -> Self {
        assert!(n >= 1 && r >= 1);
        BlockMatrix {
            n,
            r,
            data: vec![0.0; n * n * r * r],
        }
    }

    /// A deterministic test matrix: element `(gi, gj)` (global element
    /// coordinates) gets a small value derived from its position and `seed`.
    pub fn deterministic(n: usize, r: usize, seed: u64) -> Self {
        let mut m = BlockMatrix::zeros(n, r);
        for bi in 0..n {
            for bj in 0..n {
                for i in 0..r {
                    for j in 0..r {
                        let gi = bi * r + i;
                        let gj = bj * r + j;
                        let v = ((gi
                            .wrapping_mul(31)
                            .wrapping_add(gj.wrapping_mul(17))
                            .wrapping_add(seed as usize))
                            % 1000) as f64
                            / 1000.0
                            - 0.5;
                        *m.at_mut(bi, bj, i, j) = v;
                    }
                }
            }
        }
        m
    }

    fn block_offset(&self, bi: usize, bj: usize) -> usize {
        debug_assert!(bi < self.n && bj < self.n);
        (bi * self.n + bj) * self.r * self.r
    }

    /// A block as a slice of `r * r` elements, row-major.
    pub fn block(&self, bi: usize, bj: usize) -> &[f64] {
        let off = self.block_offset(bi, bj);
        &self.data[off..off + self.r * self.r]
    }

    /// A mutable block.
    pub fn block_mut(&mut self, bi: usize, bj: usize) -> &mut [f64] {
        let off = self.block_offset(bi, bj);
        &mut self.data[off..off + self.r * self.r]
    }

    /// Element access by block and intra-block coordinates.
    pub fn at(&self, bi: usize, bj: usize, i: usize, j: usize) -> f64 {
        self.block(bi, bj)[i * self.r + j]
    }

    /// Mutable element access.
    pub fn at_mut(&mut self, bi: usize, bj: usize, i: usize, j: usize) -> &mut f64 {
        let r = self.r;
        &mut self.block_mut(bi, bj)[i * r + j]
    }

    /// The whole backing store (tests).
    pub fn data(&self) -> &[f64] {
        &self.data
    }
}

/// The unit of computation: `c += a × b` on `r × r` row-major blocks — the
/// paper's `rMxM` benchmark kernel.
///
/// # Panics
/// Panics (debug) on mismatched slice lengths.
pub fn block_multiply_add(c: &mut [f64], a: &[f64], b: &[f64], r: usize) {
    debug_assert_eq!(a.len(), r * r);
    debug_assert_eq!(b.len(), r * r);
    debug_assert_eq!(c.len(), r * r);
    for i in 0..r {
        for k in 0..r {
            let aik = a[i * r + k];
            if aik == 0.0 {
                continue;
            }
            let brow = &b[k * r..(k + 1) * r];
            let crow = &mut c[i * r..(i + 1) * r];
            for j in 0..r {
                crow[j] += aik * brow[j];
            }
        }
    }
}

/// Serial blocked reference: `C = A × B`.
///
/// # Panics
/// Panics if shapes disagree.
pub fn serial_matmul(a: &BlockMatrix, b: &BlockMatrix) -> BlockMatrix {
    assert_eq!(a.n, b.n);
    assert_eq!(a.r, b.r);
    let (n, r) = (a.n, a.r);
    let mut c = BlockMatrix::zeros(n, r);
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                let mut tmp = c.block(i, j).to_vec();
                block_multiply_add(&mut tmp, a.block(i, k), b.block(k, j), r);
                c.block_mut(i, j).copy_from_slice(&tmp);
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_layout_roundtrip() {
        let mut m = BlockMatrix::zeros(3, 2);
        *m.at_mut(1, 2, 0, 1) = 7.5;
        assert_eq!(m.at(1, 2, 0, 1), 7.5);
        assert_eq!(m.block(1, 2)[1], 7.5);
        assert_eq!(m.at(0, 0, 0, 0), 0.0);
    }

    #[test]
    fn block_multiply_add_matches_manual() {
        // 2x2: a = [[1,2],[3,4]], b = [[5,6],[7,8]], c starts at identity.
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut c = [1.0, 0.0, 0.0, 1.0];
        block_multiply_add(&mut c, &a, &b, 2);
        assert_eq!(c, [20.0, 22.0, 43.0, 51.0]);
    }

    #[test]
    fn serial_matmul_identity() {
        let n = 3;
        let r = 4;
        let a = BlockMatrix::deterministic(n, r, 1);
        let mut id = BlockMatrix::zeros(n, r);
        for bi in 0..n {
            for i in 0..r {
                *id.at_mut(bi, bi, i, i) = 1.0;
            }
        }
        let c = serial_matmul(&a, &id);
        for (x, y) in c.data().iter().zip(a.data()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn serial_matmul_matches_elementwise_reference() {
        let n = 2;
        let r = 3;
        let a = BlockMatrix::deterministic(n, r, 3);
        let b = BlockMatrix::deterministic(n, r, 9);
        let c = serial_matmul(&a, &b);
        let size = n * r;
        let get = |m: &BlockMatrix, gi: usize, gj: usize| m.at(gi / r, gj / r, gi % r, gj % r);
        for gi in 0..size {
            for gj in 0..size {
                let mut want = 0.0;
                for gk in 0..size {
                    want += get(&a, gi, gk) * get(&b, gk, gj);
                }
                assert!(
                    (get(&c, gi, gj) - want).abs() < 1e-9,
                    "element ({gi},{gj})"
                );
            }
        }
    }

    #[test]
    fn deterministic_is_deterministic() {
        assert_eq!(
            BlockMatrix::deterministic(3, 3, 5),
            BlockMatrix::deterministic(3, 3, 5)
        );
        assert_ne!(
            BlockMatrix::deterministic(3, 3, 5),
            BlockMatrix::deterministic(3, 3, 6)
        );
    }
}
