//! The heterogeneous generalised-block distribution (paper reference \[6\]).
//!
//! "Each matrix is partitioned into generalized blocks of the same size
//! (l×r)×(l×r), where m ≤ l ≤ n. The generalized blocks are identically
//! partitioned into m² rectangles, each being assigned to a different
//! processor. The area of each rectangle is proportional to the speed of the
//! processor": first the `l × l` square is cut into `m` vertical slices with
//! areas proportional to the column speed sums, then each vertical slice is
//! cut independently into `m` horizontal slices proportional to the
//! individual processor speeds.

/// Partitions `total` into `weights.len()` non-negative integers summing to
/// `total`, proportional to `weights`, each at least 1 (largest-remainder
/// method).
///
/// # Panics
/// Panics if `total < weights.len()` or all weights are zero/negative.
pub fn proportional_partition(total: usize, weights: &[f64]) -> Vec<usize> {
    let k = weights.len();
    assert!(k >= 1);
    assert!(
        total >= k,
        "cannot give each of {k} parts at least 1 out of {total}"
    );
    let sum: f64 = weights.iter().sum();
    assert!(sum > 0.0, "weights must have positive sum");

    // Start from the floor of the proportional share, but at least 1.
    let spare = total - k; // amount distributable above the per-part minimum
    let shares: Vec<f64> = weights.iter().map(|w| spare as f64 * w / sum).collect();
    let mut parts: Vec<usize> = shares.iter().map(|s| 1 + s.floor() as usize).collect();
    let assigned: usize = parts.iter().sum();
    let mut remaining = total - assigned;

    // Largest fractional remainders get the leftovers.
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| {
        let fa = shares[a] - shares[a].floor();
        let fb = shares[b] - shares[b].floor();
        fb.total_cmp(&fa).then(a.cmp(&b))
    });
    for &i in order.iter().cycle().take(remaining.min(k * 2)) {
        if remaining == 0 {
            break;
        }
        parts[i] += 1;
        remaining -= 1;
    }
    debug_assert_eq!(parts.iter().sum::<usize>(), total);
    parts
}

/// A generalised-block data distribution over an `m × m` processor grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneralizedBlockDist {
    /// Grid side.
    pub m: usize,
    /// Generalised block side, in `r × r` blocks.
    pub l: usize,
    /// Vertical slice widths `w[J]`, summing to `l`.
    pub w: Vec<usize>,
    /// Horizontal slice heights per column: `heights[J][I]`, each column
    /// summing to `l`.
    pub heights: Vec<Vec<usize>>,
}

impl GeneralizedBlockDist {
    /// The heterogeneous distribution: rectangle areas proportional to
    /// processor speeds. `speeds[I * m + J]` is the speed of grid processor
    /// `(I, J)`.
    ///
    /// # Panics
    /// Panics if `l < m` or the speed vector has the wrong length.
    pub fn heterogeneous(m: usize, l: usize, speeds: &[f64]) -> Self {
        assert!(m >= 1 && l >= m, "the paper requires m <= l");
        assert_eq!(speeds.len(), m * m);
        // Column slice areas proportional to column speed sums.
        let col_speed: Vec<f64> = (0..m)
            .map(|j| (0..m).map(|i| speeds[i * m + j]).sum())
            .collect();
        let w = proportional_partition(l, &col_speed);
        // Rows within each column proportional to the individual speeds.
        let heights = (0..m)
            .map(|j| {
                let col: Vec<f64> = (0..m).map(|i| speeds[i * m + j]).collect();
                proportional_partition(l, &col)
            })
            .collect();
        GeneralizedBlockDist { m, l, w, heights }
    }

    /// The homogeneous (standard ScaLAPACK block-cyclic) distribution:
    /// equal rectangles.
    ///
    /// # Panics
    /// Panics unless `m` divides `l`.
    pub fn homogeneous(m: usize, l: usize) -> Self {
        assert!(l.is_multiple_of(m), "homogeneous distribution needs m | l");
        GeneralizedBlockDist {
            m,
            l,
            w: vec![l / m; m],
            heights: vec![vec![l / m; m]; m],
        }
    }

    /// Grid column owning column `c` of a generalised block (`0 <= c < l`).
    ///
    /// # Panics
    /// Panics if `c >= l`.
    pub fn col_slice(&self, c: usize) -> usize {
        assert!(c < self.l);
        let mut acc = 0;
        for (j, &wj) in self.w.iter().enumerate() {
            acc += wj;
            if c < acc {
                return j;
            }
        }
        unreachable!("widths sum to l")
    }

    /// Grid row owning row `rrow` of a generalised block, within grid
    /// column `j`.
    ///
    /// # Panics
    /// Panics if `rrow >= l`.
    pub fn row_slice(&self, rrow: usize, j: usize) -> usize {
        assert!(rrow < self.l);
        let mut acc = 0;
        for (i, &h) in self.heights[j].iter().enumerate() {
            acc += h;
            if rrow < acc {
                return i;
            }
        }
        unreachable!("heights sum to l")
    }

    /// Owner `(I, J)` of matrix block `(i, j)` (block coordinates).
    pub fn owner_of_block(&self, i: usize, j: usize) -> (usize, usize) {
        let jj = self.col_slice(j % self.l);
        let ii = self.row_slice(i % self.l, jj);
        (ii, jj)
    }

    /// Row range `[start, end)` of rectangle `(I, J)` within a generalised
    /// block.
    pub fn row_range(&self, i: usize, j: usize) -> (usize, usize) {
        let start: usize = self.heights[j][..i].iter().sum();
        (start, start + self.heights[j][i])
    }

    /// The paper's `h[I][J][K][L]` parameter: the height of the rectangle
    /// area of `R_IJ` required by processor `P_KL` — the overlap of the two
    /// rectangles' row ranges. Flattened row-major `m⁴` for the model.
    pub fn h_array(&self) -> Vec<i64> {
        let m = self.m;
        let mut h = vec![0i64; m * m * m * m];
        for i in 0..m {
            for j in 0..m {
                let (s1, e1) = self.row_range(i, j);
                for k in 0..m {
                    for l in 0..m {
                        let (s2, e2) = self.row_range(k, l);
                        let overlap = e1.min(e2).saturating_sub(s1.max(s2));
                        h[((i * m + j) * m + k) * m + l] = overlap as i64;
                    }
                }
            }
        }
        h
    }

    /// The `w` parameter as `i64` for the model.
    pub fn w_array(&self) -> Vec<i64> {
        self.w.iter().map(|&x| x as i64).collect()
    }

    /// Rectangle area (in blocks) of processor `(I, J)` per generalised
    /// block — proportional to its share of the work.
    pub fn area(&self, i: usize, j: usize) -> usize {
        self.w[j] * self.heights[j][i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proportional_partition_sums_and_minimum() {
        let p = proportional_partition(10, &[1.0, 1.0, 8.0]);
        assert_eq!(p.iter().sum::<usize>(), 10);
        assert!(p.iter().all(|&x| x >= 1));
        assert!(p[2] > p[0]);
    }

    #[test]
    fn proportional_partition_equal_weights() {
        assert_eq!(proportional_partition(9, &[1.0, 1.0, 1.0]), vec![3, 3, 3]);
    }

    #[test]
    fn proportional_partition_tiny_weight_still_gets_one() {
        let p = proportional_partition(6, &[1e-9, 1.0, 1.0]);
        assert_eq!(p.iter().sum::<usize>(), 6);
        assert_eq!(p[0], 1);
    }

    #[test]
    #[should_panic]
    fn proportional_partition_rejects_too_small_total() {
        proportional_partition(2, &[1.0, 1.0, 1.0]);
    }

    #[test]
    fn homogeneous_is_equal_split() {
        let d = GeneralizedBlockDist::homogeneous(3, 9);
        assert_eq!(d.w, vec![3, 3, 3]);
        for j in 0..3 {
            assert_eq!(d.heights[j], vec![3, 3, 3]);
        }
        assert_eq!(d.owner_of_block(4, 7), (1, 2));
        // Cyclic repetition beyond one generalised block.
        assert_eq!(d.owner_of_block(13, 16), (1, 2));
    }

    fn paper_speeds() -> Vec<f64> {
        // 3x3 grid from the paper LAN: rows of [46,46,46 / 46,46,46 /
        // 176,106,9].
        vec![46.0, 46.0, 46.0, 46.0, 46.0, 46.0, 176.0, 106.0, 9.0]
    }

    #[test]
    fn heterogeneous_areas_track_speeds() {
        let d = GeneralizedBlockDist::heterogeneous(3, 9, &paper_speeds());
        assert_eq!(d.w.iter().sum::<usize>(), 9);
        for j in 0..3 {
            assert_eq!(d.heights[j].iter().sum::<usize>(), 9);
        }
        // Column 0 (total 268) gets the widest slice; column 2 (101) the
        // narrowest.
        assert!(d.w[0] >= d.w[1]);
        assert!(d.w[1] >= d.w[2]);
        // Within column 0, the 176-speed processor (grid row 2) gets the
        // tallest slice.
        assert!(d.heights[0][2] >= d.heights[0][0]);
        // Area of the fastest processor exceeds the slowest's.
        assert!(d.area(2, 0) > d.area(2, 2));
    }

    #[test]
    fn every_block_has_exactly_one_owner() {
        let d = GeneralizedBlockDist::heterogeneous(3, 9, &paper_speeds());
        let mut counts = [0usize; 9];
        for i in 0..9 {
            for j in 0..9 {
                let (gi, gj) = d.owner_of_block(i, j);
                counts[gi * 3 + gj] += 1;
            }
        }
        assert_eq!(counts.iter().sum::<usize>(), 81);
        // Each processor's count equals its rectangle area.
        for gi in 0..3 {
            for gj in 0..3 {
                assert_eq!(counts[gi * 3 + gj], d.area(gi, gj));
            }
        }
    }

    #[test]
    fn h_array_properties() {
        let d = GeneralizedBlockDist::heterogeneous(3, 9, &paper_speeds());
        let m = 3;
        let h = d.h_array();
        let at = |i: usize, j: usize, k: usize, l: usize| h[((i * m + j) * m + k) * m + l];
        for i in 0..m {
            for j in 0..m {
                // Diagonal: h[I][J][I][J] is the rectangle's own height.
                assert_eq!(at(i, j, i, j) as usize, d.heights[j][i]);
                for k in 0..m {
                    for l in 0..m {
                        // Symmetry promised by the paper.
                        assert_eq!(at(i, j, k, l), at(k, l, i, j));
                        assert!(at(i, j, k, l) >= 0);
                    }
                }
            }
        }
    }

    #[test]
    fn row_and_col_slices_cover_block() {
        let d = GeneralizedBlockDist::heterogeneous(3, 12, &paper_speeds());
        for c in 0..12 {
            assert!(d.col_slice(c) < 3);
        }
        for rr in 0..12 {
            for j in 0..3 {
                assert!(d.row_slice(rr, j) < 3);
            }
        }
    }

    #[test]
    fn homogeneous_equals_heterogeneous_with_equal_speeds() {
        let hom = GeneralizedBlockDist::homogeneous(2, 6);
        let het = GeneralizedBlockDist::heterogeneous(2, 6, &[1.0; 4]);
        assert_eq!(hom, het);
    }
}
