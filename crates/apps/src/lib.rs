//! # hmpi-apps — the paper's two applications
//!
//! Section 3 and Section 4 of the paper demonstrate HMPI with:
//!
//! * [`em3d`] — an *irregular* problem: simulation of interacting electric
//!   and magnetic fields on a three-dimensional object decomposed into
//!   sub-bodies, with a bipartite dependency graph between E and H nodes
//!   (after Culler et al.'s Split-C EM3D benchmark). The HMPI performance
//!   model is the paper's Figure 4, shipped here as model source text and
//!   parsed by the [`perfmodel`] pipeline.
//! * [`nbody`] — a third application in the same lineage (the mpC papers'
//!   galaxy-of-groups example): all-pairs gravity over irregular body
//!   groups, exchanged with allgather collectives each step.
//! * [`matmul`] — a *regular* problem made irregular by the hardware:
//!   ScaLAPACK-style 2D block-cyclic matrix multiplication with the
//!   heterogeneous generalised-block distribution of Kalinov–Lastovetsky
//!   (reference \[6\] of the paper). The performance model is Figure 7.
//!
//! Each application provides a serial reference implementation, a real
//! message-passing parallel implementation over [`mpisim`], a plain-MPI
//! driver (the paper's baseline: processes chosen "by pure chance", i.e. in
//! world-rank order, with homogeneous data distribution), and an HMPI driver
//! (recon → model → `group_create` → run), so the paper's comparisons can be
//! regenerated end to end.
//!
//! ## Unit conventions
//!
//! Virtual-time units follow the paper's benchmark-code convention. For
//! EM3D, one cluster speed unit is *one node update per second*; the model's
//! `bench` is `k` node updates, so recon-derived estimates are in units of
//! `1/k` of the cluster's — consistently on both sides of every division,
//! which is all that matters. For MM, one unit is *one `r × r` block
//! update*.

#![warn(missing_docs)]

pub mod em3d;
pub mod matmul;
pub mod nbody;
