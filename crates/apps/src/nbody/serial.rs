//! Serial N-body reference (symplectic Euler integration).

use crate::nbody::body::{accelerations, Bodies, NbodyConfig};

/// One integration step over all bodies in place.
#[allow(clippy::needless_range_loop)]
pub fn serial_step(bodies: &mut Bodies, dt: f64) {
    let acc = accelerations(&bodies.pos, &bodies.pos, &bodies.mass);
    for i in 0..bodies.vel.len() {
        bodies.vel[i] += dt * acc[i];
    }
    for i in 0..bodies.pos.len() {
        bodies.pos[i] += dt * bodies.vel[i];
    }
}

/// Generates the full system and runs `niter` steps; returns the final
/// store (groups concatenated in order).
pub fn serial_run(cfg: &NbodyConfig, niter: usize) -> Bodies {
    let groups: Vec<Bodies> = (0..cfg.p())
        .map(|g| Bodies::generate_group(cfg, g))
        .collect();
    let mut all = Bodies::concat(&groups);
    for _ in 0..niter {
        serial_step(&mut all, cfg.dt);
    }
    all
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let cfg = NbodyConfig::ramp(3, 8, 2.0, 5);
        assert_eq!(serial_run(&cfg, 4), serial_run(&cfg, 4));
    }

    #[test]
    fn bodies_move() {
        let cfg = NbodyConfig::ramp(2, 8, 2.0, 5);
        let before = serial_run(&cfg, 0);
        let after = serial_run(&cfg, 3);
        assert_ne!(before.pos, after.pos);
        assert_eq!(before.mass, after.mass, "masses are conserved");
    }

    #[test]
    fn momentum_is_approximately_conserved() {
        // Pairwise forces are equal and opposite; with equal dt updates the
        // total momentum drift per step is O(dt * force asymmetry) = 0 for
        // exact arithmetic.
        let cfg = NbodyConfig::ramp(2, 10, 1.5, 3);
        let start = serial_run(&cfg, 0);
        let end = serial_run(&cfg, 10);
        let momentum = |b: &Bodies| {
            let mut p = [0.0f64; 3];
            for i in 0..b.len() {
                for d in 0..3 {
                    p[d] += b.mass[i] * b.vel[3 * i + d];
                }
            }
            p
        };
        let p0 = momentum(&start);
        let p1 = momentum(&end);
        for d in 0..3 {
            assert!(
                (p0[d] - p1[d]).abs() < 1e-9,
                "momentum drifted in dim {d}: {} -> {}",
                p0[d],
                p1[d]
            );
        }
    }

    #[test]
    fn values_stay_finite() {
        let cfg = NbodyConfig::ramp(3, 12, 3.0, 8);
        let end = serial_run(&cfg, 25);
        assert!(end.pos.iter().all(|v| v.is_finite()));
        assert!(end.vel.iter().all(|v| v.is_finite()));
    }
}
