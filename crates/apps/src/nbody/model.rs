//! The N-body performance model, written in the paper's model-definition
//! language (following the Figure 4 conventions).
//!
//! Parameters: `p` groups, benchmark size `k` (interactions computed by the
//! recon benchmark), `d[p]` bodies per group, and `total` bodies overall.
//! Processor `I` computes `d[I] * total / k` benchmark units per step and
//! sends its group state (3 position doubles + 1 mass double per body) to
//! every other processor — an all-to-all pattern, unlike EM3D's sparse
//! neighbour exchange.

use crate::nbody::body::NbodyConfig;
use perfmodel::{CompiledModel, EvalError, ModelInstance, ParamValue, ParseError};

/// The model source.
pub const NBODY_MODEL_SOURCE: &str = r"
algorithm Nbody(int p, int k, int d[p], int total) {
  coord I=p;
  node {I>=0: bench*(d[I]*total/k);};
  link (L=p) {
    I>=0 && I!=L :
      length*(d[I]*4*sizeof(double)) [I]->[L];
  };
  parent[0];
  scheme {
    int i, j;
    par (i = 0; i < p; i++)
      par (j = 0; j < p; j++)
        if (i != j) 100%%[i]->[j];
    par (i = 0; i < p; i++) 100%%[i];
  };
}
";

/// Compiles the N-body model.
///
/// # Errors
/// Never fails in practice (compile-time constant source).
pub fn nbody_compiled() -> Result<CompiledModel, ParseError> {
    CompiledModel::compile(NBODY_MODEL_SOURCE)
}

/// Packs the model parameters for a configuration.
pub fn nbody_params(cfg: &NbodyConfig, k: usize) -> Vec<ParamValue> {
    vec![
        ParamValue::Int(cfg.p() as i64),
        ParamValue::Int(k as i64),
        ParamValue::Array(
            cfg.bodies_per_group
                .iter()
                .map(|&d| d as i64)
                .collect(),
        ),
        ParamValue::Int(cfg.total() as i64),
    ]
}

/// Compiles and instantiates in one call.
///
/// # Errors
/// [`EvalError`] on inconsistent parameters.
pub fn nbody_model(cfg: &NbodyConfig, k: usize) -> Result<ModelInstance, EvalError> {
    nbody_compiled()
        .expect("N-body model source is valid")
        .instantiate(&nbody_params(cfg, k))
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)]
mod tests {
    use super::*;
    use perfmodel::{analyze, PerformanceModel};

    #[test]
    fn source_parses_and_volumes_scale() {
        let cfg = NbodyConfig::ramp(4, 10, 3.0, 1);
        let inst = nbody_model(&cfg, 10).unwrap();
        assert_eq!(inst.num_processors(), 4);
        let total = cfg.total() as f64;
        for (i, &v) in inst.volumes().iter().enumerate() {
            let want = cfg.bodies_per_group[i] as f64 * total / 10.0;
            assert!((v - want).abs() < 1e-9);
        }
    }

    #[test]
    fn comm_is_all_to_all_with_group_sized_payloads() {
        let cfg = NbodyConfig::ramp(3, 10, 2.0, 1);
        let inst = nbody_model(&cfg, 10).unwrap();
        let comm = inst.comm_bytes();
        for i in 0..3 {
            for j in 0..3 {
                if i == j {
                    assert_eq!(comm[i][j], 0.0);
                } else {
                    assert_eq!(comm[i][j], (cfg.bodies_per_group[i] * 32) as f64);
                }
            }
        }
    }

    #[test]
    fn model_lints_clean() {
        let cfg = NbodyConfig::ramp(5, 8, 2.0, 2);
        let inst = nbody_model(&cfg, 10).unwrap();
        let report = analyze(&inst).unwrap();
        assert!(report.is_clean(), "{:?}", report.findings);
    }
}
