//! Message-passing N-body over an [`mpisim::Comm`]: one body group per
//! rank, positions and masses exchanged with an allgather each step.

use crate::nbody::body::{accelerations, Bodies, NbodyConfig};
use mpisim::{Comm, MpiResult};

/// One rank's group plus the exchange/update logic.
#[derive(Debug, Clone)]
pub struct ParallelGroup {
    /// This rank's group index (== group rank).
    pub me: usize,
    /// The owned bodies.
    pub bodies: Bodies,
    dt: f64,
    /// Cached masses of every group (exchanged once; masses are constant).
    all_masses: Option<Vec<f64>>,
}

impl ParallelGroup {
    /// Builds rank `me`'s group.
    pub fn new(cfg: &NbodyConfig, me: usize) -> Self {
        ParallelGroup {
            me,
            bodies: Bodies::generate_group(cfg, me),
            dt: cfg.dt,
            all_masses: None,
        }
    }

    /// One step: allgather positions (and masses on the first step), compute
    /// accelerations of own bodies from all bodies, integrate. The virtual
    /// compute cost is `own_bodies × total_bodies` interaction units scaled
    /// by `1/k` (the recon benchmark computes `k` interactions).
    ///
    /// # Errors
    /// Propagates transport errors.
    #[allow(clippy::needless_range_loop)]
    pub fn step(&mut self, comm: &Comm, k: usize) -> MpiResult<()> {
        // Masses once (they never change), positions every step.
        if self.all_masses.is_none() {
            let masses = comm.allgather(&self.bodies.mass)?;
            self.all_masses = Some(masses.concat());
        }
        let all_pos = comm.allgather(&self.bodies.pos)?.concat();
        let all_mass = self.all_masses.as_ref().expect("gathered above");

        let acc = accelerations(&self.bodies.pos, &all_pos, all_mass);
        // d[me] * total interactions, in units of k-interaction benchmarks.
        let interactions = (self.bodies.len() * all_mass.len()) as f64;
        comm.compute(interactions / k as f64);

        for i in 0..self.bodies.vel.len() {
            self.bodies.vel[i] += self.dt * acc[i];
        }
        for i in 0..self.bodies.pos.len() {
            self.bodies.pos[i] += self.dt * self.bodies.vel[i];
        }
        Ok(())
    }

    /// Runs `niter` steps.
    ///
    /// # Errors
    /// Propagates transport errors.
    pub fn run(&mut self, comm: &Comm, niter: usize, k: usize) -> MpiResult<()> {
        for _ in 0..niter {
            self.step(comm, k)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nbody::serial::serial_run;
    use hetsim::{ClusterBuilder, Link, Protocol};
    use mpisim::Universe;
    use std::sync::Arc;

    #[test]
    fn parallel_matches_serial() {
        let cfg = NbodyConfig::ramp(4, 8, 2.5, 17);
        let niter = 4;
        let want = serial_run(&cfg, niter);

        let mut b = ClusterBuilder::new();
        for i in 0..4 {
            b = b.node(format!("h{i}"), 100.0);
        }
        let cluster = Arc::new(b.all_to_all(Link::new(1e-4, 1e7, Protocol::Tcp)).build());
        let u = Universe::new(cluster);
        let report = u.run(move |proc| {
            let world = proc.world();
            let mut pg = ParallelGroup::new(&cfg, world.rank());
            pg.run(&world, niter, 10).unwrap();
            pg.bodies
        });

        // Stitch the groups back together and compare.
        let got = Bodies::concat(&report.results);
        assert_eq!(got.mass, want.mass);
        for (a, b) in got.pos.iter().zip(&want.pos) {
            assert!((a - b).abs() < 1e-10, "position mismatch");
        }
        for (a, b) in got.vel.iter().zip(&want.vel) {
            assert!((a - b).abs() < 1e-10, "velocity mismatch");
        }
    }
}
