//! N-body drivers: rank-order MPI baseline vs HMPI-selected group.

use crate::nbody::body::{Bodies, NbodyConfig};
use crate::nbody::model::nbody_model;
use crate::nbody::parallel::ParallelGroup;
use hetsim::Cluster;
use hmpi::{HmpiRuntime, MappingAlgorithm, RuntimeConfig};
use mpisim::Universe;
use std::sync::Arc;

/// Outcome of one N-body execution.
#[derive(Debug, Clone)]
pub struct NbodyRun {
    /// Virtual execution time (max over executing ranks), seconds.
    pub time: f64,
    /// `members[group index] = world rank`.
    pub members: Vec<usize>,
    /// Final bodies per group, for verification.
    pub groups: Vec<Bodies>,
    /// Predicted time (HMPI runs).
    pub predicted: Option<f64>,
}

type RankOutcome = Option<(f64, Bodies)>;

fn assemble(outcomes: Vec<RankOutcome>, members: Vec<usize>, predicted: Option<f64>) -> NbodyRun {
    let mut time = 0.0f64;
    let mut groups = vec![Bodies::default(); members.len()];
    for (g, &world) in members.iter().enumerate() {
        let (dur, bodies) = outcomes[world].clone().expect("member produced an outcome");
        time = time.max(dur);
        groups[g] = bodies;
    }
    NbodyRun {
        time,
        members,
        groups,
        predicted,
    }
}

/// Plain MPI: group `i` on world rank `i`.
///
/// # Panics
/// Panics if the cluster hosts fewer processes than groups.
pub fn run_mpi(cluster: Arc<Cluster>, cfg: &NbodyConfig, niter: usize, k: usize) -> NbodyRun {
    let p = cfg.p();
    let universe = Universe::new(cluster);
    assert!(p <= universe.size());
    let report = universe.run(|proc| -> RankOutcome {
        let world = proc.world();
        let comm = world.split((world.rank() < p).then_some(1), 1).unwrap()?;
        let mut pg = ParallelGroup::new(cfg, comm.rank());
        let t0 = comm.clock().now();
        pg.run(&comm, niter, k).expect("nbody kernel");
        comm.barrier().expect("closing barrier");
        let dur = (comm.clock().now() - t0).as_secs();
        Some((dur, pg.bodies))
    });
    assemble(report.results, (0..p).collect(), None)
}

/// HMPI: recon → model → `group_create` → run.
///
/// # Panics
/// Panics if the cluster hosts fewer processes than groups.
pub fn run_hmpi(cluster: Arc<Cluster>, cfg: &NbodyConfig, niter: usize, k: usize) -> NbodyRun {
    run_hmpi_with(cluster, cfg, niter, k, MappingAlgorithm::default())
}

/// [`run_hmpi`] with an explicit selection algorithm.
///
/// # Panics
/// As [`run_hmpi`].
pub fn run_hmpi_with(
    cluster: Arc<Cluster>,
    cfg: &NbodyConfig,
    niter: usize,
    k: usize,
    algo: MappingAlgorithm,
) -> NbodyRun {
    let p = cfg.p();
    let runtime = HmpiRuntime::with_config(cluster, RuntimeConfig::new().mapping_algorithm(algo));
    assert!(p <= runtime.universe().size());
    let report = runtime.run(|h| -> (RankOutcome, Option<(Vec<usize>, f64)>) {
        // Recon benchmark: k body-body interactions.
        h.recon(1.0).expect("recon");
        let model = nbody_model(cfg, k).expect("model");
        let group = h.group_create(&model).expect("group_create");
        let meta = h
            .is_host()
            .then(|| (group.members().to_vec(), group.predicted_time()));
        let outcome = if let Some(comm) = group.comm() {
            let mut pg = ParallelGroup::new(cfg, comm.rank());
            let t0 = comm.clock().now();
            pg.run(comm, niter, k).expect("nbody kernel");
            comm.barrier().expect("closing barrier");
            let dur = (comm.clock().now() - t0).as_secs();
            Some((dur, pg.bodies.clone()))
        } else {
            None
        };
        if group.is_member() {
            h.group_free(group).expect("group_free");
        }
        h.finalize().expect("finalize");
        (outcome, meta)
    });

    let mut outcomes = Vec::with_capacity(report.results.len());
    let mut meta = None;
    for (o, m) in report.results {
        outcomes.push(o);
        if m.is_some() {
            meta = m;
        }
    }
    let (members, predicted) = meta.expect("host reported");
    assemble(outcomes, members, Some(predicted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nbody::serial::serial_run;

    fn paper_cluster() -> Arc<Cluster> {
        Arc::new(Cluster::paper_lan_em3d())
    }

    #[test]
    fn both_drivers_match_serial() {
        let cfg = NbodyConfig::ramp(9, 6, 2.0, 77);
        let niter = 3;
        let want = serial_run(&cfg, niter);
        for run in [
            run_mpi(paper_cluster(), &cfg, niter, 10),
            run_hmpi(paper_cluster(), &cfg, niter, 10),
        ] {
            let got = Bodies::concat(&run.groups);
            for (a, b) in got.pos.iter().zip(&want.pos) {
                assert!((a - b).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn hmpi_beats_rank_order_mpi() {
        let cfg = NbodyConfig::ramp(9, 20, 3.0, 31);
        let mpi = run_mpi(paper_cluster(), &cfg, 2, 10);
        let hmpi = run_hmpi(paper_cluster(), &cfg, 2, 10);
        assert!(
            hmpi.time < mpi.time,
            "HMPI {} vs MPI {}",
            hmpi.time,
            mpi.time
        );
    }

    #[test]
    fn biggest_group_avoids_the_slow_machine() {
        let cfg = NbodyConfig::ramp(9, 20, 3.0, 31);
        let hmpi = run_hmpi(paper_cluster(), &cfg, 2, 10);
        assert_ne!(hmpi.members[8], 8, "biggest group must not sit on speed-9");
    }
}
