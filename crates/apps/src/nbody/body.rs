//! Body groups and deterministic initial conditions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Gravitational constant of the simulation (arbitrary units).
pub const G: f64 = 6.674e-3;

/// Softening length avoiding singular forces.
pub const SOFTENING: f64 = 1e-2;

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct NbodyConfig {
    /// Bodies per group; length determines the number of groups `p`.
    pub bodies_per_group: Vec<usize>,
    /// Integration time step.
    pub dt: f64,
    /// RNG seed.
    pub seed: u64,
}

impl NbodyConfig {
    /// `p` groups ramping from `base` to `base * spread` bodies.
    pub fn ramp(p: usize, base: usize, spread: f64, seed: u64) -> Self {
        assert!(p >= 1 && base >= 1);
        let bodies_per_group = (0..p)
            .map(|i| {
                let f = if p == 1 {
                    1.0
                } else {
                    1.0 + (spread - 1.0) * i as f64 / (p - 1) as f64
                };
                ((base as f64 * f) as usize).max(1)
            })
            .collect();
        NbodyConfig {
            bodies_per_group,
            dt: 1e-3,
            seed,
        }
    }

    /// Number of groups.
    pub fn p(&self) -> usize {
        self.bodies_per_group.len()
    }

    /// Total body count.
    pub fn total(&self) -> usize {
        self.bodies_per_group.iter().sum()
    }
}

/// A flat, structure-of-arrays body store (3D positions, velocities,
/// masses).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Bodies {
    /// Positions, `[x0, y0, z0, x1, ...]`.
    pub pos: Vec<f64>,
    /// Velocities, same layout.
    pub vel: Vec<f64>,
    /// Masses.
    pub mass: Vec<f64>,
}

impl Bodies {
    /// Number of bodies.
    pub fn len(&self) -> usize {
        self.mass.len()
    }

    /// True if there are no bodies.
    pub fn is_empty(&self) -> bool {
        self.mass.is_empty()
    }

    /// Deterministically generates one group's bodies. Group `g` is centred
    /// on a point of a ring so groups are spatially clustered (forces within
    /// a group dominate, like the paper's sub-bodies).
    pub fn generate_group(cfg: &NbodyConfig, g: usize) -> Bodies {
        let n = cfg.bodies_per_group[g];
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(g as u64 * 0x9E37_79B9));
        let angle = 2.0 * std::f64::consts::PI * g as f64 / cfg.p() as f64;
        let (cx, cy) = (10.0 * angle.cos(), 10.0 * angle.sin());
        let mut b = Bodies::default();
        for _ in 0..n {
            b.pos.push(cx + rng.random_range(-1.0..1.0));
            b.pos.push(cy + rng.random_range(-1.0..1.0));
            b.pos.push(rng.random_range(-1.0..1.0));
            b.vel.push(rng.random_range(-0.1..0.1));
            b.vel.push(rng.random_range(-0.1..0.1));
            b.vel.push(rng.random_range(-0.1..0.1));
            b.mass.push(rng.random_range(0.5..2.0));
        }
        b
    }

    /// Concatenates groups into one store (serial reference layout).
    pub fn concat(groups: &[Bodies]) -> Bodies {
        let mut out = Bodies::default();
        for g in groups {
            out.pos.extend_from_slice(&g.pos);
            out.vel.extend_from_slice(&g.vel);
            out.mass.extend_from_slice(&g.mass);
        }
        out
    }
}

/// Accelerations on `targets` due to `sources` (all-pairs, softened
/// Newtonian gravity). Returns a flat `[ax0, ay0, az0, ...]` vector.
pub fn accelerations(
    target_pos: &[f64],
    source_pos: &[f64],
    source_mass: &[f64],
) -> Vec<f64> {
    let nt = target_pos.len() / 3;
    let ns = source_mass.len();
    let mut acc = vec![0.0; nt * 3];
    for t in 0..nt {
        let (tx, ty, tz) = (
            target_pos[3 * t],
            target_pos[3 * t + 1],
            target_pos[3 * t + 2],
        );
        let (mut ax, mut ay, mut az) = (0.0, 0.0, 0.0);
        for s in 0..ns {
            let dx = source_pos[3 * s] - tx;
            let dy = source_pos[3 * s + 1] - ty;
            let dz = source_pos[3 * s + 2] - tz;
            let d2 = dx * dx + dy * dy + dz * dz + SOFTENING * SOFTENING;
            let inv = 1.0 / (d2 * d2.sqrt());
            let f = G * source_mass[s] * inv;
            ax += f * dx;
            ay += f * dy;
            az += f * dz;
        }
        acc[3 * t] = ax;
        acc[3 * t + 1] = ay;
        acc[3 * t + 2] = az;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_group() {
        let cfg = NbodyConfig::ramp(3, 10, 2.0, 42);
        assert_eq!(
            Bodies::generate_group(&cfg, 1),
            Bodies::generate_group(&cfg, 1)
        );
        assert_ne!(
            Bodies::generate_group(&cfg, 0),
            Bodies::generate_group(&cfg, 1)
        );
    }

    #[test]
    fn ramp_sizes() {
        let cfg = NbodyConfig::ramp(4, 10, 3.0, 1);
        assert_eq!(cfg.bodies_per_group, vec![10, 16, 23, 30]);
        assert_eq!(cfg.total(), 79);
    }

    #[test]
    fn acceleration_points_towards_source() {
        // One target at origin, one heavy source at +x.
        let acc = accelerations(&[0.0, 0.0, 0.0], &[1.0, 0.0, 0.0], &[10.0]);
        assert!(acc[0] > 0.0);
        assert!(acc[1].abs() < 1e-15);
        assert!(acc[2].abs() < 1e-15);
    }

    #[test]
    fn self_interaction_is_softened_to_zero_force() {
        // A body acting on itself: zero displacement, softened denominator,
        // so zero force (dx = 0) — no NaN.
        let acc = accelerations(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0], &[5.0]);
        assert_eq!(acc, vec![0.0, 0.0, 0.0]);
    }

    #[test]
    fn superposition_holds() {
        // Acceleration from two sources equals the sum from each alone.
        let t = [0.0, 0.0, 0.0];
        let s1 = [1.0, 0.0, 0.0];
        let s2 = [0.0, 2.0, 0.0];
        let both: Vec<f64> = accelerations(
            &t,
            &[s1[0], s1[1], s1[2], s2[0], s2[1], s2[2]],
            &[3.0, 4.0],
        );
        let a1 = accelerations(&t, &s1, &[3.0]);
        let a2 = accelerations(&t, &s2, &[4.0]);
        for i in 0..3 {
            assert!((both[i] - (a1[i] + a2[i])).abs() < 1e-15);
        }
    }

    #[test]
    fn concat_preserves_order_and_counts() {
        let cfg = NbodyConfig::ramp(3, 5, 2.0, 9);
        let groups: Vec<Bodies> = (0..3).map(|g| Bodies::generate_group(&cfg, g)).collect();
        let all = Bodies::concat(&groups);
        assert_eq!(all.len(), cfg.total());
        assert_eq!(&all.mass[..groups[0].len()], &groups[0].mass[..]);
    }
}
