//! N-body simulation with irregular body groups.
//!
//! A third application beyond the paper's two, from the same research
//! lineage (the mpC papers use a "galaxy of star groups" example): `p`
//! groups of bodies of different sizes, one group per process. Every step,
//! each process needs the positions and masses of *all* bodies (gravity is
//! all-pairs), so groups are exchanged with an allgather; each process then
//! computes forces for its own bodies only — `d[i] × total` interactions —
//! which makes computation volumes irregular and communication all-to-all:
//! a different shape from both EM3D (sparse neighbour exchange) and MM
//! (row/column broadcasts), exercising the collective path of the
//! substrate.

pub mod body;
pub mod driver;
pub mod model;
pub mod parallel;
pub mod serial;

pub use body::{Bodies, NbodyConfig};
pub use driver::{run_hmpi, run_mpi, NbodyRun};
pub use model::{nbody_model, nbody_params, NBODY_MODEL_SOURCE};
pub use parallel::ParallelGroup;
pub use serial::{serial_run, serial_step};
