//! EM3D: irregular electric/magnetic field simulation (paper Section 3).
//!
//! "The system consists of a few large subbodies resulting from a
//! decomposition of the three-dimensional object. The subbodies contain
//! varying number of E nodes where electric field values are calculated and
//! H nodes where magnetic fields are calculated. The changes in the electric
//! field of an E node are calculated as a linear function of the magnetic
//! field values of its neighboring H nodes and vice versa."

pub mod body;
pub mod driver;
pub mod model;
pub mod parallel;
pub mod serial;

pub use body::{Em3dConfig, Em3dSystem, NodeRef, SubBody};
pub use driver::{
    run_hmpi, run_hmpi_ft, run_hmpi_traced, run_hmpi_with, run_mpi, Em3dFtRun, Em3dRun,
    Em3dTracedRun,
};
pub use model::{em3d_model, em3d_params, EM3D_MODEL_SOURCE};
pub use parallel::ParallelBody;
pub use serial::{serial_bench_units, serial_run, serial_step};
