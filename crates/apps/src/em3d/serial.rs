//! Serial EM3D reference.
//!
//! Operates on the whole [`Em3dSystem`] at once (ghost machinery resolved
//! directly against the owning body), providing both the ground truth the
//! parallel implementation is checked against and the `HMPI_Recon` benchmark
//! body (`Serial_em3d` in the paper's Figure 5).

use crate::em3d::body::{Em3dSystem, NodeRef};

/// Resolves a dependency reference against the global system state.
fn resolve(system: &Em3dSystem, me: usize, r: NodeRef, want_h: bool, exports_of_me: bool) -> f64 {
    let _ = exports_of_me;
    match r {
        NodeRef::Local(idx) => {
            if want_h {
                system.bodies[me].h_values[idx]
            } else {
                system.bodies[me].e_values[idx]
            }
        }
        NodeRef::Remote { body, slot } => {
            // The ghost slot indexes the owner's export list towards `me`.
            if want_h {
                let idx = system.bodies[body].h_exports[me][slot];
                system.bodies[body].h_values[idx]
            } else {
                let idx = system.bodies[body].e_exports[me][slot];
                system.bodies[body].e_values[idx]
            }
        }
    }
}

/// One full iteration: update every E node from H values, then every H node
/// from the *new* E values — the paper's algorithm order (gather H, compute
/// E, gather E, compute H).
pub fn serial_step(system: &mut Em3dSystem) {
    let p = system.p();
    // E phase.
    for me in 0..p {
        let new_e: Vec<f64> = system.bodies[me]
            .e_deps
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&(r, w)| w * resolve(system, me, r, true, false))
                    .sum()
            })
            .collect();
        system.bodies[me].e_values = new_e;
    }
    // H phase (uses updated E values).
    for me in 0..p {
        let new_h: Vec<f64> = system.bodies[me]
            .h_deps
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&(r, w)| w * resolve(system, me, r, false, false))
                    .sum()
            })
            .collect();
        system.bodies[me].h_values = new_h;
    }
}

/// Runs `niter` iterations and returns the final field values per body as
/// `(e_values, h_values)` pairs.
pub fn serial_run(mut system: Em3dSystem, niter: usize) -> Vec<(Vec<f64>, Vec<f64>)> {
    for _ in 0..niter {
        serial_step(&mut system);
    }
    system
        .bodies
        .into_iter()
        .map(|b| (b.e_values, b.h_values))
        .collect()
}

/// The virtual-computation volume (in node updates) of one serial benchmark
/// run over `k` nodes — the `HMPI_Recon` nominal volume.
pub fn serial_bench_units(k: usize) -> f64 {
    k as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::em3d::body::Em3dConfig;

    #[test]
    fn step_is_deterministic() {
        let cfg = Em3dConfig::ramp(3, 30, 2.0, 5);
        let a = serial_run(Em3dSystem::generate(&cfg), 4);
        let b = serial_run(Em3dSystem::generate(&cfg), 4);
        assert_eq!(a, b);
    }

    #[test]
    fn fields_change_each_step() {
        let cfg = Em3dConfig::ramp(2, 30, 1.5, 5);
        let mut s = Em3dSystem::generate(&cfg);
        let before = s.bodies[0].e_values.clone();
        serial_step(&mut s);
        assert_ne!(s.bodies[0].e_values, before);
    }

    #[test]
    fn values_stay_finite_over_many_steps() {
        let cfg = Em3dConfig::ramp(3, 24, 2.0, 11);
        let out = serial_run(Em3dSystem::generate(&cfg), 20);
        for (e, h) in out {
            assert!(e.iter().all(|v| v.is_finite()));
            assert!(h.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn h_phase_sees_new_e_values() {
        // With a single body, H updates must read the E values computed in
        // the same step; verify by comparing against a manual computation.
        let cfg = Em3dConfig::ramp(1, 10, 1.0, 2);
        let mut s = Em3dSystem::generate(&cfg);
        let e0 = s.bodies[0].e_values.clone();
        let h0 = s.bodies[0].h_values.clone();
        let e_deps = s.bodies[0].e_deps.clone();
        let h_deps = s.bodies[0].h_deps.clone();
        serial_step(&mut s);
        // Manual E update.
        let e1: Vec<f64> = e_deps
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&(r, w)| match r {
                        NodeRef::Local(i) => w * h0[i],
                        NodeRef::Remote { .. } => unreachable!("single body"),
                    })
                    .sum()
            })
            .collect();
        let h1: Vec<f64> = h_deps
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&(r, w)| match r {
                        NodeRef::Local(i) => w * e1[i],
                        NodeRef::Remote { .. } => unreachable!("single body"),
                    })
                    .sum()
            })
            .collect();
        let _ = e0;
        assert_eq!(s.bodies[0].e_values, e1);
        assert_eq!(s.bodies[0].h_values, h1);
    }

    #[test]
    fn bench_units_scale_with_k() {
        assert_eq!(serial_bench_units(50), 50.0);
    }
}
