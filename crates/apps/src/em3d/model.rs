//! The EM3D performance model — the paper's Figure 4, verbatim.
//!
//! The model has four parameters: `p` (number of abstract processors), `k`
//! (nodes computed by the recon benchmark), `d[p]` (nodes per sub-body) and
//! `dep[p][p]` (nodal values communicated between pairs of sub-bodies). The
//! `node` declaration scales each processor's volume by `d[I]/k` benchmark
//! units; the `link` declaration transfers `dep[I][L]*sizeof(double)` bytes
//! from `L` to `I`; the `scheme` declaration performs all boundary transfers
//! in parallel, then all computations in parallel — one iteration of the
//! algorithm, which is "accurate enough because at any iteration each
//! processor performs the same volume of computations".

use crate::em3d::body::Em3dSystem;
use perfmodel::{CompiledModel, EvalError, ModelInstance, ParamValue, ParseError};

/// Figure 4 of the paper, character-for-character up to whitespace.
pub const EM3D_MODEL_SOURCE: &str = r"
algorithm Em3d(int p, int k, int d[p], int dep[p][p]) {
  coord I=p;
  node {I>=0: bench*(d[I]/k);};
  link (L=p) {
    I>=0 && I!=L && (dep[I][L] > 0) :
      length*(dep[I][L]*sizeof(double)) [L]->[I];
  };
  parent[0];
  scheme {
    int current, owner, remote;
    par (owner = 0; owner < p; owner++)
        par (remote = 0; remote < p; remote++)
             if ((owner != remote) && (dep[owner][remote] > 0))
                100%%[remote]->[owner];
    par (current = 0; current < p; current++) 100%%[current];
  };
}
";

/// Compiles the Figure 4 model.
///
/// # Errors
/// Never fails in practice (the source is a compile-time constant, covered
/// by tests); the `Result` mirrors the general pipeline.
pub fn em3d_compiled() -> Result<CompiledModel, ParseError> {
    CompiledModel::compile(EM3D_MODEL_SOURCE)
}

/// Packs the model parameters from a generated system — the paper's
/// `HMPI_Pack_model_parameters(p, k, d, dep, ...)`.
pub fn em3d_params(system: &Em3dSystem, k: usize) -> Vec<ParamValue> {
    let p = system.p();
    let d: Vec<i64> = system.d().iter().map(|&x| x as i64).collect();
    let dep: Vec<i64> = system
        .dep
        .iter()
        .flat_map(|row| row.iter().map(|&x| x as i64))
        .collect();
    vec![
        ParamValue::Int(p as i64),
        ParamValue::Int(k as i64),
        ParamValue::Array(d),
        ParamValue::Array(dep),
    ]
}

/// Compiles and instantiates the model for a system in one call — the
/// `HMPI_Model_Em3d` handle of Figure 5.
///
/// # Errors
/// [`EvalError`] on parameter mismatch (shapes are derived from the system,
/// so this indicates an internal inconsistency).
pub fn em3d_model(system: &Em3dSystem, k: usize) -> Result<ModelInstance, EvalError> {
    let compiled = em3d_compiled().expect("Figure 4 source is valid");
    compiled.instantiate(&em3d_params(system, k))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::em3d::body::Em3dConfig;
    use perfmodel::{PerformanceModel, RecordingSink, SchemeEvent};

    fn system() -> Em3dSystem {
        Em3dSystem::generate(&Em3dConfig::ramp(4, 40, 3.0, 17))
    }

    #[test]
    fn figure4_source_parses() {
        let m = em3d_compiled().unwrap();
        assert_eq!(m.name(), "Em3d");
        assert_eq!(m.param_names(), vec!["p", "k", "d", "dep"]);
    }

    #[test]
    fn volumes_are_d_over_k() {
        let s = system();
        let inst = em3d_model(&s, 10).unwrap();
        let d = s.d();
        for (i, &v) in inst.volumes().iter().enumerate() {
            assert!((v - d[i] as f64 / 10.0).abs() < 1e-12);
        }
        assert_eq!(inst.parent(), 0);
    }

    #[test]
    fn comm_matches_dep_times_eight() {
        let s = system();
        let inst = em3d_model(&s, 10).unwrap();
        for i in 0..s.p() {
            for j in 0..s.p() {
                // dep[i][j] values flow from j to i.
                assert_eq!(
                    inst.comm_bytes()[j][i],
                    (s.dep[i][j] * 8) as f64,
                    "pair ({j}->{i})"
                );
            }
        }
    }

    #[test]
    fn scheme_transfers_then_computes() {
        let s = system();
        let inst = em3d_model(&s, 10).unwrap();
        let mut sink = RecordingSink::default();
        inst.run_scheme(&mut sink).unwrap();
        let first_compute = sink
            .events
            .iter()
            .position(|e| matches!(e, SchemeEvent::Compute { .. }))
            .unwrap();
        let last_transfer = sink
            .events
            .iter()
            .rposition(|e| matches!(e, SchemeEvent::Transfer { .. }))
            .unwrap();
        assert!(
            last_transfer < first_compute,
            "all transfers precede all computations in one iteration"
        );
        let computes = sink
            .events
            .iter()
            .filter(|e| matches!(e, SchemeEvent::Compute { .. }))
            .count();
        assert_eq!(computes, s.p());
    }
}
