//! EM3D drivers: the paper's Figure 3 (plain MPI) and Figure 5 (HMPI)
//! programs.
//!
//! Both run the *same* parallel kernel ([`crate::em3d::ParallelBody`]); the
//! only difference — exactly the paper's point — is how the group of
//! processes is formed. The MPI version picks the first `p` processes of
//! `MPI_COMM_WORLD` with `MPI_Comm_split` ("it is only a pure chance if the
//! MPI group of processes executes the parallel algorithm faster than any
//! other group"); the HMPI version runs `HMPI_Recon`, describes the Figure 4
//! performance model, and lets `HMPI_Group_create` select the processes.

use crate::em3d::body::{Em3dConfig, Em3dSystem};
use crate::em3d::model::em3d_model;
use crate::em3d::parallel::ParallelBody;
use hetsim::Cluster;
use hmpi::{HmpiRuntime, MappingAlgorithm};
use mpisim::Universe;
use std::sync::Arc;

/// Outcome of one EM3D execution.
#[derive(Debug, Clone)]
pub struct Em3dRun {
    /// Virtual execution time of the parallel algorithm (max over the
    /// executing processes), seconds.
    pub time: f64,
    /// `members[body index] = world rank` that executed that sub-body.
    pub members: Vec<usize>,
    /// Final `(e_values, h_values)` per body, for verification.
    pub fields: Vec<(Vec<f64>, Vec<f64>)>,
    /// `HMPI_Group_create`'s predicted time (HMPI runs only).
    pub predicted: Option<f64>,
}

type RankOutcome = Option<(f64, Vec<f64>, Vec<f64>)>;

fn assemble(
    outcomes: Vec<RankOutcome>,
    members: Vec<usize>,
    predicted: Option<f64>,
) -> Em3dRun {
    let mut time = 0.0f64;
    let mut fields = vec![(Vec::new(), Vec::new()); members.len()];
    for (body, &world) in members.iter().enumerate() {
        let (dur, e, h) = outcomes[world]
            .clone()
            .expect("every member produced an outcome");
        time = time.max(dur);
        fields[body] = (e, h);
    }
    Em3dRun {
        time,
        members,
        fields,
        predicted,
    }
}

/// The Figure 3 program: plain MPI, sub-body `i` on world rank `i`.
///
/// # Panics
/// Panics if the cluster hosts fewer processes than sub-bodies.
pub fn run_mpi(cluster: Arc<Cluster>, cfg: &Em3dConfig, niter: usize) -> Em3dRun {
    let p = cfg.nodes_per_body.len();
    let universe = Universe::new(cluster);
    assert!(
        p <= universe.size(),
        "EM3D needs {p} processes, universe has {}",
        universe.size()
    );
    let report = universe.run(|proc| -> RankOutcome {
        let world = proc.world();
        let me = world.rank();
        let is_executing = me < p;
        // MPI_Comm_split(MPI_COMM_WORLD, is_executing_algo, 1, &em3dcomm)
        let em3dcomm = world
            .split(is_executing.then_some(1), 1)
            .expect("split cannot fail");
        let em3dcomm = em3dcomm?;
        let system = Em3dSystem::generate(cfg);
        let mut pb = ParallelBody::new(&system, em3dcomm.rank());
        let t0 = em3dcomm.clock().now();
        pb.run(&em3dcomm, niter).expect("EM3D kernel");
        em3dcomm.barrier().expect("closing barrier");
        let dur = (em3dcomm.clock().now() - t0).as_secs();
        Some((dur, pb.body.e_values, pb.body.h_values))
    });
    assemble(report.results, (0..p).collect(), None)
}

/// The Figure 5 program: HMPI — recon, model, `group_create`, run.
///
/// `k` is the recon benchmark size in nodes (the model's `k` parameter).
///
/// # Panics
/// Panics if the cluster hosts fewer processes than sub-bodies.
pub fn run_hmpi(cluster: Arc<Cluster>, cfg: &Em3dConfig, niter: usize, k: usize) -> Em3dRun {
    run_hmpi_with(cluster, cfg, niter, k, MappingAlgorithm::default())
}

/// [`run_hmpi`] with an explicit selection algorithm (for ablations).
///
/// # Panics
/// As [`run_hmpi`].
pub fn run_hmpi_with(
    cluster: Arc<Cluster>,
    cfg: &Em3dConfig,
    niter: usize,
    k: usize,
    algo: MappingAlgorithm,
) -> Em3dRun {
    let p = cfg.nodes_per_body.len();
    let runtime = HmpiRuntime::new(cluster).with_algorithm(algo);
    assert!(
        p <= runtime.universe().size(),
        "EM3D needs {p} processes, universe has {}",
        runtime.universe().size()
    );
    let report = runtime.run(|h| -> (RankOutcome, Option<(Vec<usize>, f64)>) {
        // HMPI_Recon with a benchmark representative of the application:
        // computing the nodal values of k nodes of one sub-body.
        h.recon_with(1.0, |hh| hh.compute(k as f64))
            .expect("recon");

        let system = Em3dSystem::generate(cfg);
        let model = em3d_model(&system, k).expect("Figure 4 instantiation");
        let group = h.group_create(&model).expect("group_create");
        let meta = if h.is_host() {
            Some((group.members().to_vec(), group.predicted_time()))
        } else {
            None
        };

        let outcome = if let Some(comm) = group.comm() {
            let mut pb = ParallelBody::new(&system, comm.rank());
            let t0 = comm.clock().now();
            pb.run(comm, niter).expect("EM3D kernel");
            comm.barrier().expect("closing barrier");
            let dur = (comm.clock().now() - t0).as_secs();
            Some((dur, pb.body.e_values, pb.body.h_values))
        } else {
            None
        };
        if group.is_member() {
            h.group_free(group).expect("group_free");
        }
        h.finalize().expect("finalize");
        (outcome, meta)
    });

    let mut outcomes = Vec::with_capacity(report.results.len());
    let mut meta = None;
    for (o, m) in report.results {
        outcomes.push(o);
        if m.is_some() {
            meta = m;
        }
    }
    let (members, predicted) = meta.expect("host reported the selection");
    assemble(outcomes, members, Some(predicted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::em3d::serial::serial_run;

    fn paper_cluster() -> Arc<Cluster> {
        Arc::new(Cluster::paper_lan_em3d())
    }

    fn cfg() -> Em3dConfig {
        Em3dConfig::ramp(9, 60, 4.0, 23)
    }

    #[test]
    fn mpi_and_hmpi_compute_identical_fields() {
        let niter = 3;
        let serial = serial_run(Em3dSystem::generate(&cfg()), niter);
        let mpi = run_mpi(paper_cluster(), &cfg(), niter);
        let hmpi = run_hmpi(paper_cluster(), &cfg(), niter, 10);
        for (body, (se, sh)) in serial.iter().enumerate() {
            for run in [&mpi, &hmpi] {
                let (e, h) = &run.fields[body];
                for (a, b) in e.iter().zip(se) {
                    assert!((a - b).abs() < 1e-10);
                }
                for (a, b) in h.iter().zip(sh) {
                    assert!((a - b).abs() < 1e-10);
                }
            }
        }
    }

    #[test]
    fn hmpi_beats_mpi_on_the_paper_lan() {
        // Irregular bodies on the paper's heterogeneous LAN: the MPI
        // rank-order assignment wastes the fast machines, HMPI pairs the
        // biggest bodies with them.
        let niter = 2;
        let mpi = run_mpi(paper_cluster(), &cfg(), niter);
        let hmpi = run_hmpi(paper_cluster(), &cfg(), niter, 10);
        assert!(
            hmpi.time < mpi.time,
            "HMPI ({}) must beat MPI ({})",
            hmpi.time,
            mpi.time
        );
        let speedup = mpi.time / hmpi.time;
        assert!(
            speedup > 1.2,
            "expected a paper-like speedup, got {speedup:.2}"
        );
    }

    #[test]
    fn hmpi_assigns_biggest_body_to_fastest_node() {
        let hmpi = run_hmpi(paper_cluster(), &cfg(), 2, 10);
        // Body 8 is the biggest; node 6 (speed 176) should host it — unless
        // communication shifts the optimum, it must at least avoid the
        // speed-9 node (8).
        let world_of_biggest = hmpi.members[8];
        assert_ne!(world_of_biggest, 8, "biggest body must not sit on speed-9");
        // And the speed-9 node, if used at all, gets one of the smallest
        // bodies.
        if let Some(body_on_slow) = hmpi.members.iter().position(|&w| w == 8) {
            assert!(body_on_slow <= 2, "speed-9 node got body {body_on_slow}");
        }
    }

    #[test]
    fn predicted_time_is_reasonable() {
        let niter = 2;
        let hmpi = run_hmpi(paper_cluster(), &cfg(), niter, 10);
        let predicted = hmpi.predicted.unwrap();
        // Recon estimates speeds in bench units (k nodes) per second and the
        // model's volumes are in bench units, so the prediction comes out in
        // true seconds — per iteration (the model describes one iteration).
        let converted = predicted * niter as f64;
        let ratio = converted / hmpi.time;
        assert!(
            (0.3..3.0).contains(&ratio),
            "prediction off by more than 3x: predicted {converted}, measured {}",
            hmpi.time
        );
    }
}
