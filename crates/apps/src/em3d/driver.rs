//! EM3D drivers: the paper's Figure 3 (plain MPI) and Figure 5 (HMPI)
//! programs.
//!
//! Both run the *same* parallel kernel ([`crate::em3d::ParallelBody`]); the
//! only difference — exactly the paper's point — is how the group of
//! processes is formed. The MPI version picks the first `p` processes of
//! `MPI_COMM_WORLD` with `MPI_Comm_split` ("it is only a pure chance if the
//! MPI group of processes executes the parallel algorithm faster than any
//! other group"); the HMPI version runs `HMPI_Recon`, describes the Figure 4
//! performance model, and lets `HMPI_Group_create` select the processes.

use crate::em3d::body::{Em3dConfig, Em3dSystem};
use crate::em3d::model::em3d_model;
use crate::em3d::parallel::ParallelBody;
use hetsim::{Cluster, SimTime};
use hmpi::{HmpiError, HmpiGroup, HmpiRuntime, MappingAlgorithm, Recon, RecoveryPolicy, RuntimeConfig};
use mpisim::{MpiResult, Universe};
use std::sync::Arc;

/// Outcome of one EM3D execution.
#[derive(Debug, Clone)]
pub struct Em3dRun {
    /// Virtual execution time of the parallel algorithm (max over the
    /// executing processes), seconds.
    pub time: f64,
    /// `members[body index] = world rank` that executed that sub-body.
    pub members: Vec<usize>,
    /// Final `(e_values, h_values)` per body, for verification.
    pub fields: Vec<(Vec<f64>, Vec<f64>)>,
    /// `HMPI_Group_create`'s predicted time (HMPI runs only).
    pub predicted: Option<f64>,
}

type RankOutcome = Option<(f64, Vec<f64>, Vec<f64>)>;

fn assemble(
    outcomes: Vec<RankOutcome>,
    members: Vec<usize>,
    predicted: Option<f64>,
) -> Em3dRun {
    let mut time = 0.0f64;
    let mut fields = vec![(Vec::new(), Vec::new()); members.len()];
    for (body, &world) in members.iter().enumerate() {
        let (dur, e, h) = outcomes[world]
            .clone()
            .expect("every member produced an outcome");
        time = time.max(dur);
        fields[body] = (e, h);
    }
    Em3dRun {
        time,
        members,
        fields,
        predicted,
    }
}

/// The Figure 3 program: plain MPI, sub-body `i` on world rank `i`.
///
/// # Panics
/// Panics if the cluster hosts fewer processes than sub-bodies.
pub fn run_mpi(cluster: Arc<Cluster>, cfg: &Em3dConfig, niter: usize) -> Em3dRun {
    let p = cfg.nodes_per_body.len();
    let universe = Universe::new(cluster);
    assert!(
        p <= universe.size(),
        "EM3D needs {p} processes, universe has {}",
        universe.size()
    );
    let report = universe.run(|proc| -> RankOutcome {
        let world = proc.world();
        let me = world.rank();
        let is_executing = me < p;
        // MPI_Comm_split(MPI_COMM_WORLD, is_executing_algo, 1, &em3dcomm)
        let em3dcomm = world
            .split(is_executing.then_some(1), 1)
            .expect("split cannot fail");
        let em3dcomm = em3dcomm?;
        let system = Em3dSystem::generate(cfg);
        let mut pb = ParallelBody::new(&system, em3dcomm.rank());
        let t0 = em3dcomm.clock().now();
        pb.run(&em3dcomm, niter).expect("EM3D kernel");
        em3dcomm.barrier().expect("closing barrier");
        let dur = (em3dcomm.clock().now() - t0).as_secs();
        Some((dur, pb.body.e_values, pb.body.h_values))
    });
    assemble(report.results, (0..p).collect(), None)
}

/// The Figure 5 program: HMPI — recon, model, `group_create`, run.
///
/// `k` is the recon benchmark size in nodes (the model's `k` parameter).
///
/// # Panics
/// Panics if the cluster hosts fewer processes than sub-bodies.
pub fn run_hmpi(cluster: Arc<Cluster>, cfg: &Em3dConfig, niter: usize, k: usize) -> Em3dRun {
    run_hmpi_with(cluster, cfg, niter, k, MappingAlgorithm::default())
}

/// [`run_hmpi`] with an explicit selection algorithm (for ablations).
///
/// # Panics
/// As [`run_hmpi`].
pub fn run_hmpi_with(
    cluster: Arc<Cluster>,
    cfg: &Em3dConfig,
    niter: usize,
    k: usize,
    algo: MappingAlgorithm,
) -> Em3dRun {
    run_hmpi_inner(cluster, cfg, niter, k, algo, false).0
}

/// A traced HMPI run: the run itself, the full virtual-time trace, and the
/// prediction-vs-actual report comparing `HMPI_Group_create`'s predicted
/// time (per iteration, so scaled by `niter`) against the measured kernel
/// time, with the per-rank compute / comm / wait breakdown of the whole
/// traced run.
#[derive(Debug, Clone)]
pub struct Em3dTracedRun {
    /// The run outcome (same as [`run_hmpi`]).
    pub run: Em3dRun,
    /// Every recorded span: recon, selection, compute, sends, receives.
    pub trace: hetsim::Trace,
    /// Prediction accuracy plus phase breakdown.
    pub report: hetsim::PredictionReport,
}

/// [`run_hmpi`] with tracing enabled (DESIGN.md §9).
///
/// # Panics
/// As [`run_hmpi`].
pub fn run_hmpi_traced(
    cluster: Arc<Cluster>,
    cfg: &Em3dConfig,
    niter: usize,
    k: usize,
) -> Em3dTracedRun {
    let n_ranks = cluster.len();
    let (run, trace) =
        run_hmpi_inner(cluster, cfg, niter, k, MappingAlgorithm::default(), true);
    let trace = trace.expect("tracing was enabled");
    // The Figure 4 model describes one iteration; the whole-run prediction
    // is niter times that.
    let predicted = run.predicted.expect("HMPI runs carry a prediction") * niter as f64;
    let report = hetsim::PredictionReport::new(
        predicted,
        SimTime::from_secs(run.time),
        &trace,
        n_ranks,
    );
    Em3dTracedRun { run, trace, report }
}

fn run_hmpi_inner(
    cluster: Arc<Cluster>,
    cfg: &Em3dConfig,
    niter: usize,
    k: usize,
    algo: MappingAlgorithm,
    traced: bool,
) -> (Em3dRun, Option<hetsim::Trace>) {
    let p = cfg.nodes_per_body.len();
    let runtime = HmpiRuntime::with_config(
        cluster,
        RuntimeConfig::new().mapping_algorithm(algo).tracing(traced),
    );
    assert!(
        p <= runtime.universe().size(),
        "EM3D needs {p} processes, universe has {}",
        runtime.universe().size()
    );
    let report = runtime.run(|h| -> (RankOutcome, Option<(Vec<usize>, f64)>) {
        // HMPI_Recon with a benchmark representative of the application:
        // computing the nodal values of k nodes of one sub-body (the model
        // counts in "k nodal values" units, hence the nominal/work split).
        h.recon_opts(Recon::new(1.0).work_units(k as f64))
            .expect("recon");

        let system = Em3dSystem::generate(cfg);
        let model = em3d_model(&system, k).expect("Figure 4 instantiation");
        let group = h.group_create(&model).expect("group_create");
        let meta = if h.is_host() {
            Some((group.members().to_vec(), group.predicted_time()))
        } else {
            None
        };

        let outcome = if let Some(comm) = group.comm() {
            let mut pb = ParallelBody::new(&system, comm.rank());
            let t0 = comm.clock().now();
            pb.run(comm, niter).expect("EM3D kernel");
            comm.barrier().expect("closing barrier");
            let dur = (comm.clock().now() - t0).as_secs();
            Some((dur, pb.body.e_values, pb.body.h_values))
        } else {
            None
        };
        if group.is_member() {
            h.group_free(group).expect("group_free");
        }
        h.finalize().expect("finalize");
        (outcome, meta)
    });

    let trace = report.trace;
    let mut outcomes = Vec::with_capacity(report.results.len());
    let mut meta = None;
    for (o, m) in report.results {
        outcomes.push(o);
        if m.is_some() {
            meta = m;
        }
    }
    let (members, predicted) = meta.expect("host reported the selection");
    (assemble(outcomes, members, Some(predicted)), trace)
}

/// Outcome of one fault-tolerant EM3D execution ([`run_hmpi_ft`]).
#[derive(Debug, Clone)]
pub struct Em3dFtRun {
    /// The group `HMPI_Group_create` originally selected.
    pub initial_members: Vec<usize>,
    /// Predicted per-iteration time of the initial group, seconds.
    pub initial_predicted: f64,
    /// The group that completed the run (== initial when nothing failed).
    pub final_members: Vec<usize>,
    /// Predicted per-iteration time of the final group, seconds.
    pub final_predicted: f64,
    /// How many times the group was shrunk with `rebuild_group`.
    pub rebuilds: usize,
    /// Virtual time of the *final, successful* attempt (max over its
    /// members), seconds.
    pub time: f64,
    /// Virtual time of the whole run including failed attempts and
    /// recovery, seconds.
    pub makespan: f64,
    /// Final `(e_values, h_values)` per body of the shrunk system.
    pub fields: Vec<(Vec<f64>, Vec<f64>)>,
}

/// What the host learned over the run; `None` on every other rank.
#[derive(Debug, Clone)]
struct FtMeta {
    initial: (Vec<usize>, f64),
    fin: Option<(Vec<usize>, f64)>,
    rebuilds: usize,
}

/// `cfg` restricted to its first `p` sub-bodies — the work the survivors
/// redistribute after a shrink.
fn shrunk(cfg: &Em3dConfig, p: usize) -> Em3dConfig {
    let mut c = cfg.clone();
    c.nodes_per_body.truncate(p);
    c
}

/// The fault-tolerant HMPI program: FT recon, `group_create`, then the
/// computation under a [`RecoveryPolicy`] — every attempt ends in an
/// agreement round, and a failure verdict answers with `rebuild_group`
/// over the survivors and a restart of the (shrunk) computation from
/// scratch.
///
/// Each attempt regenerates the system for the current group size, so the
/// result after a mid-run crash equals a clean run of the shrunk problem.
/// Boundary receives carry a per-iteration deadline derived from the
/// group's own predicted time, so even a silent failure surfaces as an
/// error instead of a hang.
///
/// Returns `None` when the run could not complete at all: the host's node
/// died (host failure is unrecoverable, exactly like losing rank 0 of
/// `MPI_COMM_WORLD`), or so many nodes died that no feasible group
/// remained.
///
/// # Panics
/// Panics if the cluster hosts fewer processes than sub-bodies.
pub fn run_hmpi_ft(
    cluster: Arc<Cluster>,
    cfg: &Em3dConfig,
    niter: usize,
    k: usize,
) -> Option<Em3dFtRun> {
    let p = cfg.nodes_per_body.len();
    let runtime = HmpiRuntime::new(cluster);
    assert!(
        p <= runtime.universe().size(),
        "EM3D needs {p} processes, universe has {}",
        runtime.universe().size()
    );
    let report = runtime.run(|h| -> (RankOutcome, Option<FtMeta>) {
        // On a faulty cluster this takes the fault-tolerant path (doubling
        // as the failure detector); fault-free it is the classic collective
        // recon — the options struct dispatches exactly like the old
        // hand-written if/else did.
        if h.recon_opts(Recon::new(1.0).work_units(k as f64)).is_err() {
            return (None, None); // this rank's own node died during recon
        }

        // Size the problem to what survived the recon: a node that died
        // before the application even started simply shrinks the system.
        let p_eff = p.min(h.estimates().available_len());
        let system = Em3dSystem::generate(&shrunk(cfg, p_eff));
        let model = match em3d_model(&system, k) {
            Ok(m) => m,
            Err(_) => return (None, None),
        };
        let group = match h.group_create(&model) {
            Ok(g) => g,
            Err(_) => return (None, None), // infeasible from the start
        };
        let mut meta = h.is_host().then(|| FtMeta {
            initial: (group.members().to_vec(), group.predicted_time()),
            fin: None,
            rebuilds: 0,
        });
        if !group.is_member() {
            return (None, meta); // never selected; free processes stand by
        }

        // One attempt = the whole (shrunk) computation from scratch; the
        // policy answers each failure verdict with agree + backoff +
        // rebuild + retry. The group cannot shrink more times than there
        // are processes.
        let policy = RecoveryPolicy::new().with_max_rebuilds(h.size());
        let attempt = |group: &HmpiGroup, _round: usize| -> MpiResult<_> {
            let comm = group.comm().expect("member has a comm");
            let sys = Em3dSystem::generate(&shrunk(cfg, group.size()));
            let mut pb = ParallelBody::new(&sys, comm.rank());
            // Per-iteration deadline: generous versus the prediction, tiny
            // versus the deadlock timeout.
            let budget = (group.predicted_time() * 10.0).max(1.0);
            let t0 = comm.clock().now();
            (0..niter).try_for_each(|_| {
                let deadline = SimTime::from_secs(comm.clock().now().as_secs() + budget);
                pb.step_by(comm, deadline)
            })?;
            comm.barrier()?;
            let dur = (comm.clock().now() - t0).as_secs();
            Ok((dur, pb.body.e_values, pb.body.h_values))
        };
        let model_for = |survivors: &[usize]| {
            let sys2 = Em3dSystem::generate(&shrunk(cfg, survivors.len()));
            em3d_model(&sys2, k).map_err(|_| HmpiError::Aborted)
        };
        match policy.run(h, group, model_for, attempt) {
            Ok(rec) => {
                if let Some(m) = meta.as_mut() {
                    m.fin = Some((rec.group.members().to_vec(), rec.group.predicted_time()));
                    m.rebuilds = rec.rebuilds;
                }
                // Lenient free: a peer may die between the success verdict
                // and the free barriers.
                let _ = h.group_free(rec.group);
                (Some(rec.result), meta)
            }
            Err(e) => {
                // Own node fail-stopped, no feasible shrink remained, or the
                // rebuilt selection left this process out.
                if let Some(m) = meta.as_mut() {
                    m.rebuilds = e.rebuilds;
                }
                (None, meta)
            }
        }
    });

    let mut outcomes = Vec::with_capacity(report.results.len());
    let mut meta = None;
    for (o, m) in report.results {
        outcomes.push(o);
        if m.is_some() {
            meta = m;
        }
    }
    let meta = meta?;
    let (final_members, final_predicted) = meta.fin?;
    let mut time = 0.0f64;
    let mut fields = vec![(Vec::new(), Vec::new()); final_members.len()];
    for (body, &world) in final_members.iter().enumerate() {
        let (dur, e, h) = outcomes[world].clone()?;
        time = time.max(dur);
        fields[body] = (e, h);
    }
    Some(Em3dFtRun {
        initial_members: meta.initial.0,
        initial_predicted: meta.initial.1,
        final_members,
        final_predicted,
        rebuilds: meta.rebuilds,
        time,
        makespan: report.makespan.as_secs(),
        fields,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::em3d::serial::serial_run;

    fn paper_cluster() -> Arc<Cluster> {
        Arc::new(Cluster::paper_lan_em3d())
    }

    fn cfg() -> Em3dConfig {
        Em3dConfig::ramp(9, 60, 4.0, 23)
    }

    #[test]
    fn mpi_and_hmpi_compute_identical_fields() {
        let niter = 3;
        let serial = serial_run(Em3dSystem::generate(&cfg()), niter);
        let mpi = run_mpi(paper_cluster(), &cfg(), niter);
        let hmpi = run_hmpi(paper_cluster(), &cfg(), niter, 10);
        for (body, (se, sh)) in serial.iter().enumerate() {
            for run in [&mpi, &hmpi] {
                let (e, h) = &run.fields[body];
                for (a, b) in e.iter().zip(se) {
                    assert!((a - b).abs() < 1e-10);
                }
                for (a, b) in h.iter().zip(sh) {
                    assert!((a - b).abs() < 1e-10);
                }
            }
        }
    }

    #[test]
    fn hmpi_beats_mpi_on_the_paper_lan() {
        // Irregular bodies on the paper's heterogeneous LAN: the MPI
        // rank-order assignment wastes the fast machines, HMPI pairs the
        // biggest bodies with them.
        let niter = 2;
        let mpi = run_mpi(paper_cluster(), &cfg(), niter);
        let hmpi = run_hmpi(paper_cluster(), &cfg(), niter, 10);
        assert!(
            hmpi.time < mpi.time,
            "HMPI ({}) must beat MPI ({})",
            hmpi.time,
            mpi.time
        );
        let speedup = mpi.time / hmpi.time;
        assert!(
            speedup > 1.2,
            "expected a paper-like speedup, got {speedup:.2}"
        );
    }

    #[test]
    fn hmpi_assigns_biggest_body_to_fastest_node() {
        let hmpi = run_hmpi(paper_cluster(), &cfg(), 2, 10);
        // Body 8 is the biggest; node 6 (speed 176) should host it — unless
        // communication shifts the optimum, it must at least avoid the
        // speed-9 node (8).
        let world_of_biggest = hmpi.members[8];
        assert_ne!(world_of_biggest, 8, "biggest body must not sit on speed-9");
        // And the speed-9 node, if used at all, gets one of the smallest
        // bodies.
        if let Some(body_on_slow) = hmpi.members.iter().position(|&w| w == 8) {
            assert!(body_on_slow <= 2, "speed-9 node got body {body_on_slow}");
        }
    }

    #[test]
    fn ft_driver_matches_plain_hmpi_without_faults() {
        // With an empty fault plan the FT driver is the Figure 5 program:
        // same group, same fields, same virtual time, zero rebuilds.
        let niter = 3;
        let plain = run_hmpi(paper_cluster(), &cfg(), niter, 10);
        let ft = run_hmpi_ft(paper_cluster(), &cfg(), niter, 10).expect("fault-free run");
        assert_eq!(ft.rebuilds, 0);
        assert_eq!(ft.initial_members, ft.final_members);
        assert!((ft.time - plain.time).abs() < 1e-9);
        let serial = serial_run(Em3dSystem::generate(&cfg()), niter);
        for (body, (se, sh)) in serial.iter().enumerate() {
            let (e, h) = &ft.fields[body];
            for (a, b) in e.iter().zip(se) {
                assert!((a - b).abs() < 1e-10);
            }
            for (a, b) in h.iter().zip(sh) {
                assert!((a - b).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn ft_driver_recovers_from_a_mid_run_crash() {
        // Node 7 (speed 106) fail-stops at t=5.0 — during iteration 1 of 6
        // (the run spans roughly t=1.2..56). The survivors shrink to eight
        // processes with `rebuild_group`, restart the shrunk problem, and
        // finish; the dead rank sees its own failure and unwinds.
        use hetsim::{FaultEvent, FaultPlan, NodeId, PAPER_EM3D_SPEEDS};
        let plan = FaultPlan::none().with(FaultEvent::NodeCrash {
            node: NodeId(7),
            at: hetsim::SimTime::from_secs(5.0),
        });
        let cluster = Arc::new(Cluster::paper_lan_with_faults(&PAPER_EM3D_SPEEDS, plan));
        let niter = 6;
        let ft = run_hmpi_ft(cluster, &cfg(), niter, 10).expect("survivors complete");

        assert!(ft.rebuilds >= 1, "the crash must force a rebuild");
        assert_eq!(ft.initial_members.len(), 9, "everyone starts selected");
        assert_eq!(ft.final_members.len(), 8, "one node was lost");
        assert!(
            !ft.final_members.contains(&7),
            "the dead node must be excluded, got {:?}",
            ft.final_members
        );
        // The survivors computed the shrunk system correctly: the result
        // equals a clean serial run of the 8-body problem.
        let shrunk_cfg = {
            let mut c = cfg();
            c.nodes_per_body.truncate(8);
            c
        };
        let serial = serial_run(Em3dSystem::generate(&shrunk_cfg), niter);
        for (body, (se, sh)) in serial.iter().enumerate() {
            let (e, h) = &ft.fields[body];
            for (a, b) in e.iter().zip(se) {
                assert!((a - b).abs() < 1e-10, "E mismatch on body {body}");
            }
            for (a, b) in h.iter().zip(sh) {
                assert!((a - b).abs() < 1e-10, "H mismatch on body {body}");
            }
        }
        // The rebuilt group's prediction still tracks the final attempt.
        let converted = ft.final_predicted * niter as f64;
        let ratio = converted / ft.time;
        assert!(
            (0.3..3.0).contains(&ratio),
            "post-recovery prediction off by more than 3x: {converted} vs {}",
            ft.time
        );
        // The makespan pays for the aborted first attempt and the recovery.
        assert!(ft.makespan > ft.time);
    }

    #[test]
    fn traced_run_reports_prediction_accuracy() {
        let niter = 2;
        let traced = run_hmpi_traced(paper_cluster(), &cfg(), niter, 10);
        assert!(!traced.trace.is_empty(), "tracing must record events");
        let r = &traced.report;
        assert!(r.predicted > 0.0 && r.measured > 0.0);
        // Same accuracy band as `predicted_time_is_reasonable` (0.3x..3x).
        assert!(
            (-70.0..200.0).contains(&r.error_pct()),
            "model error {:+.1}%",
            r.error_pct()
        );
        // The phase breakdown accounts for real virtual time, and the
        // executing ranks show both compute and communication.
        let compute: f64 = r.phases.iter().map(|p| p.compute.as_secs()).sum();
        let comm: f64 = r.phases.iter().map(|p| p.comm.as_secs()).sum();
        assert!(compute > 0.0 && comm > 0.0);
        let json = traced.trace.to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        // The untraced path stays untraced and agrees on the result.
        let plain = run_hmpi(paper_cluster(), &cfg(), niter, 10);
        assert!((plain.time - traced.run.time).abs() < 1e-9);
    }

    #[test]
    fn predicted_time_is_reasonable() {
        let niter = 2;
        let hmpi = run_hmpi(paper_cluster(), &cfg(), niter, 10);
        let predicted = hmpi.predicted.unwrap();
        // Recon estimates speeds in bench units (k nodes) per second and the
        // model's volumes are in bench units, so the prediction comes out in
        // true seconds — per iteration (the model describes one iteration).
        let converted = predicted * niter as f64;
        let ratio = converted / hmpi.time;
        assert!(
            (0.3..3.0).contains(&ratio),
            "prediction off by more than 3x: predicted {converted}, measured {}",
            hmpi.time
        );
    }
}

