//! EM3D system generation: sub-bodies, E/H nodes and the bipartite
//! dependency graph.
//!
//! A deterministic, seeded generator builds systems shaped like the paper's
//! Figure 2: `p` sub-bodies with varying node counts, mostly-local
//! dependencies, and a small fraction of cross-body edges to the
//! neighbouring sub-bodies of a ring decomposition ("the nodes in each
//! subbody have few dependencies on the nodes residing in other subbodies").

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A reference from a node to one of its bipartite neighbours.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeRef {
    /// A node of the opposite kind in the same sub-body.
    Local(usize),
    /// A node of the opposite kind in another sub-body; `slot` indexes the
    /// ghost array received from that body (see [`SubBody::h_imports`]).
    Remote {
        /// Owning sub-body.
        body: usize,
        /// Index into the per-body import (ghost) array.
        slot: usize,
    },
}

/// One sub-body of the decomposed object.
#[derive(Debug, Clone, Default)]
pub struct SubBody {
    /// Electric field values, one per E node.
    pub e_values: Vec<f64>,
    /// Magnetic field values, one per H node.
    pub h_values: Vec<f64>,
    /// For each E node: weighted references to the H nodes it depends on.
    pub e_deps: Vec<Vec<(NodeRef, f64)>>,
    /// For each H node: weighted references to the E nodes it depends on.
    pub h_deps: Vec<Vec<(NodeRef, f64)>>,
    /// `h_exports[j]` = indices of this body's H nodes that body `j` needs
    /// (sorted; the position in this list is the receiver's ghost slot).
    pub h_exports: Vec<Vec<usize>>,
    /// `e_exports[j]` = indices of this body's E nodes that body `j` needs.
    pub e_exports: Vec<Vec<usize>>,
    /// `h_imports[j]` = how many H ghosts this body receives from body `j`.
    pub h_imports: Vec<usize>,
    /// `e_imports[j]` = how many E ghosts this body receives from body `j`.
    pub e_imports: Vec<usize>,
}

impl SubBody {
    /// Total number of nodes (E + H) — the paper's `d[i]`.
    pub fn node_count(&self) -> usize {
        self.e_values.len() + self.h_values.len()
    }
}

/// Generator parameters.
#[derive(Debug, Clone)]
pub struct Em3dConfig {
    /// Nodes per sub-body (`d` in the model); length determines `p`.
    pub nodes_per_body: Vec<usize>,
    /// Bipartite degree of every node.
    pub degree: usize,
    /// Probability that a dependency crosses to a neighbouring sub-body.
    pub cross_fraction: f64,
    /// RNG seed (generation is fully deterministic).
    pub seed: u64,
}

impl Em3dConfig {
    /// A conventional irregular configuration: `p` bodies whose sizes ramp
    /// from `base` to `base * spread` nodes.
    pub fn ramp(p: usize, base: usize, spread: f64, seed: u64) -> Self {
        assert!(p >= 1 && base >= 4);
        let nodes_per_body = (0..p)
            .map(|i| {
                let f = if p == 1 {
                    1.0
                } else {
                    1.0 + (spread - 1.0) * i as f64 / (p - 1) as f64
                };
                ((base as f64 * f) as usize).max(4)
            })
            .collect();
        Em3dConfig {
            nodes_per_body,
            degree: 4,
            cross_fraction: 0.08,
            seed,
        }
    }
}

/// The whole decomposed system, plus the `dep` matrix of the paper's model:
/// `dep[i][j]` = number of nodal values in sub-body `j` that sub-body `i`
/// needs per iteration.
#[derive(Debug, Clone)]
pub struct Em3dSystem {
    /// The sub-bodies.
    pub bodies: Vec<SubBody>,
    /// The dependency-volume matrix (`dep[i][j]`, nodal values).
    pub dep: Vec<Vec<usize>>,
}

impl Em3dSystem {
    /// Number of sub-bodies (`p`).
    pub fn p(&self) -> usize {
        self.bodies.len()
    }

    /// The paper's `d` vector: nodes per sub-body.
    pub fn d(&self) -> Vec<usize> {
        self.bodies.iter().map(SubBody::node_count).collect()
    }

    /// Generates a system deterministically from a configuration.
    pub fn generate(cfg: &Em3dConfig) -> Em3dSystem {
        let p = cfg.nodes_per_body.len();
        assert!(p >= 1, "need at least one sub-body");
        assert!(cfg.degree >= 1);
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Node counts per body: half E, half H (rounded).
        let e_counts: Vec<usize> = cfg.nodes_per_body.iter().map(|&d| d / 2).collect();
        let h_counts: Vec<usize> = cfg
            .nodes_per_body
            .iter()
            .zip(&e_counts)
            .map(|(&d, &e)| d - e)
            .collect();

        // Raw dependencies as (body, index) pairs, built globally first.
        let mut e_deps_raw: Vec<Vec<Vec<(usize, usize, f64)>>> = Vec::with_capacity(p);
        let mut h_deps_raw: Vec<Vec<Vec<(usize, usize, f64)>>> = Vec::with_capacity(p);
        for body in 0..p {
            let pick_body = |rng: &mut StdRng, body: usize| -> usize {
                if p == 1 || rng.random_range(0.0..1.0) >= cfg.cross_fraction {
                    body
                } else if rng.random_range(0..2) == 0 {
                    (body + 1) % p
                } else {
                    (body + p - 1) % p
                }
            };
            let mut e_rows = Vec::with_capacity(e_counts[body]);
            for _ in 0..e_counts[body] {
                let mut row = Vec::with_capacity(cfg.degree);
                for _ in 0..cfg.degree {
                    let b = pick_body(&mut rng, body);
                    let idx = rng.random_range(0..h_counts[b].max(1));
                    let w = rng.random_range(0.1..1.0);
                    row.push((b, idx, w));
                }
                e_rows.push(row);
            }
            e_deps_raw.push(e_rows);
            let mut h_rows = Vec::with_capacity(h_counts[body]);
            for _ in 0..h_counts[body] {
                let mut row = Vec::with_capacity(cfg.degree);
                for _ in 0..cfg.degree {
                    let b = pick_body(&mut rng, body);
                    let idx = rng.random_range(0..e_counts[b].max(1));
                    let w = rng.random_range(0.1..1.0);
                    row.push((b, idx, w));
                }
                h_rows.push(row);
            }
            h_deps_raw.push(h_rows);
        }

        // Export lists: for each ordered pair (owner j -> consumer i), the
        // sorted set of j's node indices that i references.
        let mut h_exports = vec![vec![Vec::<usize>::new(); p]; p]; // [owner][consumer]
        let mut e_exports = vec![vec![Vec::<usize>::new(); p]; p];
        for (i, rows) in e_deps_raw.iter().enumerate() {
            for row in rows {
                for &(b, idx, _) in row {
                    if b != i {
                        h_exports[b][i].push(idx);
                    }
                }
            }
        }
        for (i, rows) in h_deps_raw.iter().enumerate() {
            for row in rows {
                for &(b, idx, _) in row {
                    if b != i {
                        e_exports[b][i].push(idx);
                    }
                }
            }
        }
        for table in [&mut h_exports, &mut e_exports] {
            for row in table.iter_mut() {
                for list in row.iter_mut() {
                    list.sort_unstable();
                    list.dedup();
                }
            }
        }

        // Assemble the bodies, rewriting raw deps into NodeRefs with ghost
        // slots, and initialising field values deterministically.
        let mut bodies = Vec::with_capacity(p);
        for i in 0..p {
            let resolve = |raw: &[(usize, usize, f64)],
                           exports: &Vec<Vec<Vec<usize>>>|
             -> Vec<(NodeRef, f64)> {
                raw.iter()
                    .map(|&(b, idx, w)| {
                        if b == i {
                            (NodeRef::Local(idx), w)
                        } else {
                            let slot = exports[b][i]
                                .binary_search(&idx)
                                .expect("export lists cover every remote reference");
                            (NodeRef::Remote { body: b, slot }, w)
                        }
                    })
                    .collect()
            };
            let e_deps: Vec<Vec<(NodeRef, f64)>> = e_deps_raw[i]
                .iter()
                .map(|row| resolve(row, &h_exports))
                .collect();
            let h_deps: Vec<Vec<(NodeRef, f64)>> = h_deps_raw[i]
                .iter()
                .map(|row| resolve(row, &e_exports))
                .collect();

            let e_values = (0..e_counts[i])
                .map(|n| ((i * 131 + n * 17) % 997) as f64 / 997.0)
                .collect();
            let h_values = (0..h_counts[i])
                .map(|n| ((i * 257 + n * 29) % 991) as f64 / 991.0)
                .collect();

            bodies.push(SubBody {
                e_values,
                h_values,
                e_deps,
                h_deps,
                h_exports: h_exports[i].clone(),
                e_exports: e_exports[i].clone(),
                h_imports: (0..p).map(|j| h_exports[j][i].len()).collect(),
                e_imports: (0..p).map(|j| e_exports[j][i].len()).collect(),
            });
        }

        // dep[i][j]: nodal values of body j needed by body i (H + E ghosts).
        let dep = (0..p)
            .map(|i| {
                (0..p)
                    .map(|j| {
                        if i == j {
                            0
                        } else {
                            bodies[i].h_imports[j] + bodies[i].e_imports[j]
                        }
                    })
                    .collect()
            })
            .collect();

        Em3dSystem { bodies, dep }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn system() -> Em3dSystem {
        Em3dSystem::generate(&Em3dConfig::ramp(4, 40, 3.0, 7))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = system();
        let b = system();
        assert_eq!(a.dep, b.dep);
        assert_eq!(a.bodies[2].e_values, b.bodies[2].e_values);
    }

    #[test]
    fn node_counts_match_config() {
        let s = system();
        let d = s.d();
        assert_eq!(d.len(), 4);
        assert_eq!(d[0], 40);
        assert!(d[3] >= 115 && d[3] <= 120); // 40 * 3.0 with rounding
    }

    #[test]
    fn ring_decomposition_limits_dependencies() {
        let s = Em3dSystem::generate(&Em3dConfig::ramp(6, 40, 2.0, 3));
        for i in 0..6 {
            for j in 0..6 {
                let ring_dist = (i as isize - j as isize).rem_euclid(6).min(
                    (j as isize - i as isize).rem_euclid(6),
                );
                if ring_dist > 1 {
                    assert_eq!(s.dep[i][j], 0, "non-neighbours {i},{j} must not depend");
                }
            }
        }
    }

    #[test]
    fn exports_and_imports_are_consistent() {
        let s = system();
        for i in 0..s.p() {
            for j in 0..s.p() {
                assert_eq!(
                    s.bodies[i].h_imports[j],
                    s.bodies[j].h_exports[i].len(),
                    "H ghosts {j}->{i}"
                );
                assert_eq!(
                    s.bodies[i].e_imports[j],
                    s.bodies[j].e_exports[i].len(),
                    "E ghosts {j}->{i}"
                );
            }
        }
    }

    #[test]
    fn remote_refs_point_at_valid_ghost_slots() {
        let s = system();
        for (i, body) in s.bodies.iter().enumerate() {
            for row in &body.e_deps {
                for &(r, w) in row {
                    assert!(w > 0.0);
                    if let NodeRef::Remote { body: b, slot } = r {
                        assert_ne!(b, i);
                        assert!(slot < body.h_imports[b], "slot within import count");
                    }
                }
            }
        }
    }

    #[test]
    fn dep_matrix_diag_is_zero() {
        let s = system();
        for i in 0..s.p() {
            assert_eq!(s.dep[i][i], 0);
        }
    }

    #[test]
    fn single_body_has_no_remote_deps() {
        let s = Em3dSystem::generate(&Em3dConfig::ramp(1, 40, 1.0, 9));
        assert_eq!(s.dep, vec![vec![0]]);
        for row in &s.bodies[0].e_deps {
            for (r, _) in row {
                assert!(matches!(r, NodeRef::Local(_)));
            }
        }
    }
}
