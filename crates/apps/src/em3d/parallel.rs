//! Message-passing EM3D over an [`mpisim::Comm`].
//!
//! One process per sub-body (group rank `r` owns sub-body `r`), following
//! the paper's algorithm: gather remote H boundary values, compute E values,
//! gather remote E boundary values, compute H values. Communication uses
//! standard point-to-point operations on the group communicator — exactly
//! the "control is handed over to MPI" phase of an HMPI program.

use crate::em3d::body::{Em3dSystem, NodeRef, SubBody};
use hetsim::SimTime;
use mpisim::{Comm, MpiResult};

const TAG_H_BOUNDARY: i32 = 101;
const TAG_E_BOUNDARY: i32 = 102;

/// A rank's share of the system: its sub-body plus ghost buffers.
#[derive(Debug, Clone)]
pub struct ParallelBody {
    /// This rank's sub-body index (== group rank).
    pub me: usize,
    /// Number of sub-bodies (== group size).
    pub p: usize,
    /// The owned sub-body.
    pub body: SubBody,
    ghosts_h: Vec<Vec<f64>>,
    ghosts_e: Vec<Vec<f64>>,
}

impl ParallelBody {
    /// Extracts rank `me`'s share from a (deterministically generated)
    /// system — the paper's `Initialize_system`.
    pub fn new(system: &Em3dSystem, me: usize) -> Self {
        let p = system.p();
        assert!(me < p);
        let body = system.bodies[me].clone();
        let ghosts_h = body.h_imports.iter().map(|&n| vec![0.0; n]).collect();
        let ghosts_e = body.e_imports.iter().map(|&n| vec![0.0; n]).collect();
        ParallelBody {
            me,
            p,
            body,
            ghosts_h,
            ghosts_e,
        }
    }

    /// Gathers remote H boundary values (paper:
    /// `Gather_remote_H_boundary_values`).
    ///
    /// # Errors
    /// Propagates transport errors.
    pub fn gather_h_boundaries(&mut self, comm: &Comm) -> MpiResult<()> {
        self.gather_h_by(comm, None)
    }

    fn gather_h_by(&mut self, comm: &Comm, deadline: Option<SimTime>) -> MpiResult<()> {
        // Eager sends first, then receives: no deadlock by construction.
        for j in 0..self.p {
            if j != self.me && !self.body.h_exports[j].is_empty() {
                let vals: Vec<f64> = self.body.h_exports[j]
                    .iter()
                    .map(|&idx| self.body.h_values[idx])
                    .collect();
                comm.send(&vals, j, TAG_H_BOUNDARY)?;
            }
        }
        for j in 0..self.p {
            if j != self.me && self.body.h_imports[j] > 0 {
                let (vals, _) = match deadline {
                    None => comm.recv::<f64>(j, TAG_H_BOUNDARY)?,
                    Some(d) => comm.recv_deadline::<f64>(j, TAG_H_BOUNDARY, d)?,
                };
                debug_assert_eq!(vals.len(), self.body.h_imports[j]);
                self.ghosts_h[j] = vals;
            }
        }
        Ok(())
    }

    /// Gathers remote E boundary values.
    ///
    /// # Errors
    /// Propagates transport errors.
    pub fn gather_e_boundaries(&mut self, comm: &Comm) -> MpiResult<()> {
        self.gather_e_by(comm, None)
    }

    fn gather_e_by(&mut self, comm: &Comm, deadline: Option<SimTime>) -> MpiResult<()> {
        for j in 0..self.p {
            if j != self.me && !self.body.e_exports[j].is_empty() {
                let vals: Vec<f64> = self.body.e_exports[j]
                    .iter()
                    .map(|&idx| self.body.e_values[idx])
                    .collect();
                comm.send(&vals, j, TAG_E_BOUNDARY)?;
            }
        }
        for j in 0..self.p {
            if j != self.me && self.body.e_imports[j] > 0 {
                let (vals, _) = match deadline {
                    None => comm.recv::<f64>(j, TAG_E_BOUNDARY)?,
                    Some(d) => comm.recv_deadline::<f64>(j, TAG_E_BOUNDARY, d)?,
                };
                debug_assert_eq!(vals.len(), self.body.e_imports[j]);
                self.ghosts_e[j] = vals;
            }
        }
        Ok(())
    }

    /// Computes new E values from H values (paper: `Compute_E_values`), and
    /// charges the virtual computation cost (one unit per node update).
    ///
    /// # Errors
    /// [`mpisim::MpiError::NodeFailed`] (own rank) if this rank's node
    /// fail-stops during the computation.
    pub fn compute_e(&mut self, comm: &Comm) -> MpiResult<()> {
        let new_e: Vec<f64> = self
            .body
            .e_deps
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&(r, w)| {
                        w * match r {
                            NodeRef::Local(idx) => self.body.h_values[idx],
                            NodeRef::Remote { body, slot } => self.ghosts_h[body][slot],
                        }
                    })
                    .sum()
            })
            .collect();
        comm.try_compute(new_e.len() as f64)?;
        self.body.e_values = new_e;
        Ok(())
    }

    /// Computes new H values from E values (paper: `Compute_H_values`).
    ///
    /// # Errors
    /// As [`ParallelBody::compute_e`].
    pub fn compute_h(&mut self, comm: &Comm) -> MpiResult<()> {
        let new_h: Vec<f64> = self
            .body
            .h_deps
            .iter()
            .map(|row| {
                row.iter()
                    .map(|&(r, w)| {
                        w * match r {
                            NodeRef::Local(idx) => self.body.e_values[idx],
                            NodeRef::Remote { body, slot } => self.ghosts_e[body][slot],
                        }
                    })
                    .sum()
            })
            .collect();
        comm.try_compute(new_h.len() as f64)?;
        self.body.h_values = new_h;
        Ok(())
    }

    /// One full iteration of the paper's main loop.
    ///
    /// # Errors
    /// Propagates transport errors.
    pub fn step(&mut self, comm: &Comm) -> MpiResult<()> {
        self.gather_h_boundaries(comm)?;
        self.compute_e(comm)?;
        self.gather_e_boundaries(comm)?;
        self.compute_h(comm)?;
        Ok(())
    }

    /// Failure-aware iteration: boundary receives give up at `deadline`
    /// (virtual time), so a peer that fail-stops without a trace — or a
    /// partition that silences it — surfaces as [`mpisim::MpiError::Timeout`]
    /// instead of a hang, and this rank's own death surfaces as
    /// [`mpisim::MpiError::NodeFailed`]. The caller treats any error as the
    /// signal to enter its recovery path.
    ///
    /// # Errors
    /// As [`Comm::recv_deadline`] plus [`ParallelBody::compute_e`].
    pub fn step_by(&mut self, comm: &Comm, deadline: SimTime) -> MpiResult<()> {
        self.gather_h_by(comm, Some(deadline))?;
        self.compute_e(comm)?;
        self.gather_e_by(comm, Some(deadline))?;
        self.compute_h(comm)?;
        Ok(())
    }

    /// Runs `niter` iterations.
    ///
    /// # Errors
    /// Propagates transport errors.
    pub fn run(&mut self, comm: &Comm, niter: usize) -> MpiResult<()> {
        for _ in 0..niter {
            self.step(comm)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::em3d::body::Em3dConfig;
    use crate::em3d::serial::serial_run;
    use hetsim::{ClusterBuilder, Link, Protocol};
    use mpisim::Universe;
    use std::sync::Arc;

    fn uniform_cluster(n: usize) -> Arc<hetsim::Cluster> {
        let mut b = ClusterBuilder::new();
        for i in 0..n {
            b = b.node(format!("h{i}"), 100.0);
        }
        Arc::new(b.all_to_all(Link::new(1e-4, 1e7, Protocol::Tcp)).build())
    }

    #[test]
    fn parallel_matches_serial() {
        let cfg = Em3dConfig::ramp(4, 40, 2.5, 13);
        let niter = 5;
        let serial = serial_run(Em3dSystem::generate(&cfg), niter);

        let u = Universe::new(uniform_cluster(4));
        let cfg2 = cfg.clone();
        let report = u.run(move |proc| {
            let world = proc.world();
            let system = Em3dSystem::generate(&cfg2);
            let mut pb = ParallelBody::new(&system, world.rank());
            pb.run(&world, niter).unwrap();
            (pb.body.e_values, pb.body.h_values)
        });

        for (rank, (e, h)) in report.results.iter().enumerate() {
            let (se, sh) = &serial[rank];
            for (a, b) in e.iter().zip(se) {
                assert!((a - b).abs() < 1e-10, "E mismatch on body {rank}");
            }
            for (a, b) in h.iter().zip(sh) {
                assert!((a - b).abs() < 1e-10, "H mismatch on body {rank}");
            }
        }
    }

    #[test]
    fn virtual_time_scales_with_body_size() {
        // Uniform speeds, irregular bodies: the rank with the biggest body
        // must finish last (compute dominates with a fast network).
        let cfg = Em3dConfig::ramp(3, 60, 4.0, 21);
        let u = Universe::new(uniform_cluster(3));
        let report = u.run(move |proc| {
            let world = proc.world();
            let system = Em3dSystem::generate(&cfg);
            let mut pb = ParallelBody::new(&system, world.rank());
            pb.run(&world, 3).unwrap();
            world.clock().now().as_secs()
        });
        // All ranks end nearly together (they synchronise via boundary
        // exchange), but total time is governed by the largest body:
        // d[2] = 240 nodes * 3 iters / speed 100.
        let expect = 240.0 * 3.0 / 100.0;
        assert!(report.makespan.as_secs() >= expect * 0.95);
        assert!(report.makespan.as_secs() <= expect * 1.3);
        let _ = report.results;
    }

    #[test]
    fn single_body_runs_without_comm() {
        let cfg = Em3dConfig::ramp(1, 30, 1.0, 3);
        let u = Universe::new(uniform_cluster(1));
        let serial = serial_run(Em3dSystem::generate(&cfg), 4);
        let report = u.run(move |proc| {
            let world = proc.world();
            let system = Em3dSystem::generate(&cfg);
            let mut pb = ParallelBody::new(&system, 0);
            pb.run(&world, 4).unwrap();
            pb.body.e_values
        });
        assert_eq!(report.results[0], serial[0].0);
    }
}
