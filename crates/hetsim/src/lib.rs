//! # hetsim — a heterogeneous network-of-computers substrate
//!
//! The HMPI paper (Lastovetsky & Reddy, IPPS 2003) evaluates its library on a
//! physical heterogeneous LAN: nine Solaris and Linux workstations with
//! relative speeds 46, 46, 46, 46, 46, 46, 176, 106 and 9 connected by
//! 100 Mbit switched Ethernet. That hardware is not available here, so this
//! crate provides the *model* of such a network that the rest of the
//! reproduction runs against:
//!
//! * [`Processor`] — a computer with a base speed (in benchmark units per
//!   second) and an optional external [`LoadModel`] making the speed vary over
//!   time, reproducing the paper's "multi-user decentralized computer system"
//!   challenge;
//! * [`Link`] — a point-to-point communication link with latency, bandwidth
//!   and a [`Protocol`] (the paper's "ad hoc communication network" with
//!   multiple protocols between different pairs of processors);
//! * [`Cluster`] — the full network: processors plus a pairwise link matrix,
//!   with builders and presets that encode the paper's testbed;
//! * [`SimTime`] — virtual time, the unit in which every reproduced
//!   experiment reports results;
//! * [`mod@bench`] — `HMPI_Recon`-style measurement of processor speeds against
//!   the model, producing the *estimated* speeds the HMPI runtime plans with
//!   (distinct from the true, possibly time-varying speeds);
//! * [`mod@trace`] — opt-in virtual-time span recording ([`Tracer`]) with a
//!   Chrome-trace exporter and per-rank compute/comm/wait breakdowns, the
//!   substrate of the prediction-accuracy observability layer.
//!
//! The separation between **true speed** (what the simulated hardware
//! delivers) and **estimated speed** (what a benchmark observed at some point
//! in time) is deliberate: it is exactly the gap `HMPI_Recon` exists to
//! close, and the ablation benches measure what happens when the estimates
//! go stale.

#![warn(missing_docs)]

pub mod bench;
pub mod clock;
pub mod config;
pub mod fault;
pub mod json;
pub mod link;
pub mod load;
pub mod node;
pub mod protocol;
pub mod topology;
pub mod trace;

pub use bench::{ReconRunner, SpeedEstimates};
pub use config::{parse_cluster, render_cluster, ConfigError};
pub use clock::SimTime;
pub use fault::{FaultEvent, FaultPlan};
pub use link::Link;
pub use load::LoadModel;
pub use node::{NodeId, Processor};
pub use protocol::Protocol;
pub use topology::{
    Cluster, ClusterBuilder, ContentionModel, PairTable, Topology, TopologyBuilder, TopologyInfo,
    PAPER_EM3D_SPEEDS,
};
pub use trace::{PredictionReport, RankPhases, Trace, TraceEvent, TraceKind, Tracer};
