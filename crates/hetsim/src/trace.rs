//! Virtual-time tracing: cheap span/event recording for simulated runs.
//!
//! The HMPI paper's central claim is that `HMPI_Timeof` predicts an
//! algorithm's execution time *without running it*. Checking that claim
//! needs visibility into where virtual time actually goes inside a run:
//! how much each rank computed, how long it idled waiting for senders, and
//! how much raw link time its messages cost. This module provides that
//! visibility:
//!
//! * [`TraceEvent`] — one span on one rank's virtual timeline (a compute
//!   phase, a send, a receive with its idle-wait split, a recon round, a
//!   group-selection search);
//! * [`Tracer`] — a shared, thread-safe collector the simulator records
//!   into. Tracing is opt-in: when no tracer is installed the
//!   instrumentation sites cost a single `Option` check (see DESIGN.md §9
//!   for the zero-overhead-when-disabled argument);
//! * [`Trace`] — the finished, time-sorted event list, with per-rank
//!   [phase breakdowns](Trace::phases) (compute / comm / wait),
//!   [message statistics](Trace::message_stats), and a
//!   [Chrome-trace exporter](Trace::to_chrome_json) loadable in
//!   `about:tracing` / Perfetto.
//!
//! All timestamps are [`SimTime`] — virtual seconds, not wall clock.

use crate::clock::SimTime;
use std::sync::Mutex;

/// What kind of work a [`TraceEvent`] represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceKind {
    /// A compute phase advancing the rank's clock by `units / speed`.
    Compute,
    /// A message send (the span covers the sender-side overhead).
    Send,
    /// A message receive (the span covers the receiver's clock advance;
    /// [`TraceEvent::wait`] is the idle portion spent before the sender
    /// had even sent).
    Recv,
    /// An `HMPI_Recon` benchmark round.
    Recon,
    /// An `HMPI_Group_create` selection search.
    Selection,
    /// One collective call executed by the collective engine; the span
    /// name is the algorithm chosen and the inner sends/receives carry
    /// the actual traffic.
    Collective,
    /// A free-form marker.
    Marker,
}

impl TraceKind {
    /// Short lowercase label used as the Chrome-trace category.
    pub fn label(self) -> &'static str {
        match self {
            TraceKind::Compute => "compute",
            TraceKind::Send => "send",
            TraceKind::Recv => "recv",
            TraceKind::Recon => "recon",
            TraceKind::Selection => "selection",
            TraceKind::Collective => "collective",
            TraceKind::Marker => "marker",
        }
    }
}

/// One span on one rank's virtual timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// World rank the event happened on.
    pub rank: usize,
    /// What kind of work the span covers.
    pub kind: TraceKind,
    /// True when the event belongs to a collective's communication plane
    /// rather than plain point-to-point traffic.
    pub collective: bool,
    /// Short display name.
    pub name: &'static str,
    /// Virtual start time.
    pub start: SimTime,
    /// Virtual duration (how far the span advanced the rank's clock).
    pub dur: SimTime,
    /// For [`TraceKind::Recv`]: the idle portion of `dur` spent waiting
    /// for the sender to reach its send. Zero for every other kind.
    pub wait: SimTime,
    /// Payload size in bytes (sends/receives), zero otherwise.
    pub bytes: u64,
    /// Which transport protocol carried the message ("eager" for inline
    /// payloads, "rendezvous" for arena-leased buffers); `None` for
    /// non-message events.
    pub protocol: Option<&'static str>,
    /// The peer world rank for sends/receives.
    pub peer: Option<usize>,
    /// Free-form extra detail (recon generation, selection stats, ...).
    pub info: Option<String>,
}

impl TraceEvent {
    /// A blank event of the given kind on `rank` starting at `start`;
    /// callers fill in the fields that apply.
    pub fn new(rank: usize, kind: TraceKind, name: &'static str, start: SimTime) -> Self {
        TraceEvent {
            rank,
            kind,
            collective: false,
            name,
            start,
            dur: SimTime::ZERO,
            wait: SimTime::ZERO,
            bytes: 0,
            protocol: None,
            peer: None,
            info: None,
        }
    }
}

/// A shared, thread-safe collector of [`TraceEvent`]s.
///
/// Ranks run as OS threads and record concurrently; events are kept in a
/// single mutex-protected buffer and sorted once at [`Tracer::drain`]
/// time. Recording is off the simulated clock — it never perturbs virtual
/// time.
#[derive(Debug, Default)]
pub struct Tracer {
    events: Mutex<Vec<TraceEvent>>,
}

impl Tracer {
    /// An empty tracer.
    pub fn new() -> Self {
        Tracer::default()
    }

    /// Records one event.
    pub fn record(&self, ev: TraceEvent) {
        self.events
            .lock()
            .expect("tracer poisoned by a panicking rank")
            .push(ev);
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events
            .lock()
            .expect("tracer poisoned by a panicking rank")
            .len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Takes every recorded event, leaving the tracer empty, and returns
    /// them sorted by (start time, rank).
    pub fn drain(&self) -> Trace {
        let mut events = std::mem::take(
            &mut *self
                .events
                .lock()
                .expect("tracer poisoned by a panicking rank"),
        );
        events.sort_by(|a, b| a.start.cmp(&b.start).then(a.rank.cmp(&b.rank)));
        Trace { events }
    }
}

/// Per-rank virtual-time phase breakdown derived from a [`Trace`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct RankPhases {
    /// Time spent computing.
    pub compute: SimTime,
    /// Time spent on communication proper (send overheads plus the
    /// non-idle portion of receive spans).
    pub comm: SimTime,
    /// Idle time spent waiting for senders that had not sent yet.
    pub wait: SimTime,
}

impl RankPhases {
    /// Total accounted time.
    pub fn total(&self) -> SimTime {
        self.compute + self.comm + self.wait
    }
}

/// Per-rank message counters derived from a [`Trace`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MessageStats {
    /// Messages sent.
    pub sent: usize,
    /// Messages received.
    pub received: usize,
    /// Payload bytes sent.
    pub bytes_sent: u64,
    /// Payload bytes received.
    pub bytes_received: u64,
    /// Messages sent on the eager protocol (inline payloads).
    pub eager_sent: usize,
    /// Messages sent on the rendezvous protocol (arena-leased payloads).
    pub rendezvous_sent: usize,
}

/// A finished, time-sorted trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// The events, sorted by (start time, rank).
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when the trace holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Per-rank compute / comm / wait breakdown over `n_ranks` ranks.
    ///
    /// Only the primitive clock-advancing spans are summed (compute,
    /// send, recv); composite spans such as recon rounds or selection
    /// searches wrap primitives already counted and are skipped, so the
    /// breakdown never double-counts.
    pub fn phases(&self, n_ranks: usize) -> Vec<RankPhases> {
        let mut out = vec![RankPhases::default(); n_ranks];
        for ev in &self.events {
            let Some(slot) = out.get_mut(ev.rank) else {
                continue;
            };
            match ev.kind {
                TraceKind::Compute => slot.compute += ev.dur,
                TraceKind::Send => slot.comm += ev.dur,
                TraceKind::Recv => {
                    slot.wait += ev.wait;
                    slot.comm += ev.dur - ev.wait.min(ev.dur);
                }
                TraceKind::Recon
                | TraceKind::Selection
                | TraceKind::Collective
                | TraceKind::Marker => {}
            }
        }
        out
    }

    /// Per-rank message counters over `n_ranks` ranks.
    pub fn message_stats(&self, n_ranks: usize) -> Vec<MessageStats> {
        let mut out = vec![MessageStats::default(); n_ranks];
        for ev in &self.events {
            let Some(slot) = out.get_mut(ev.rank) else {
                continue;
            };
            match ev.kind {
                TraceKind::Send => {
                    slot.sent += 1;
                    slot.bytes_sent += ev.bytes;
                    match ev.protocol {
                        Some("eager") => slot.eager_sent += 1,
                        Some("rendezvous") => slot.rendezvous_sent += 1,
                        _ => {}
                    }
                }
                TraceKind::Recv => {
                    slot.received += 1;
                    slot.bytes_received += ev.bytes;
                }
                _ => {}
            }
        }
        out
    }

    /// Serialises the trace in Chrome's `trace_event` JSON format
    /// (complete `"X"` events; `ts`/`dur` in microseconds of virtual
    /// time, `tid` = rank). The output loads directly in
    /// `about:tracing` and Perfetto.
    pub fn to_chrome_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(64 + self.events.len() * 160);
        out.push_str("{\"traceEvents\":[");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let cat = if ev.collective {
                format!("{},collective", ev.kind.label())
            } else {
                ev.kind.label().to_string()
            };
            let _ = write!(
                out,
                "\n{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":0,\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{",
                escape_json(ev.name),
                cat,
                ev.rank,
                ev.start.as_secs() * 1e6,
                ev.dur.as_secs() * 1e6,
            );
            let mut first = true;
            let mut sep = |out: &mut String| {
                if !first {
                    out.push(',');
                }
                first = false;
            };
            if ev.bytes > 0 {
                sep(&mut out);
                let _ = write!(out, "\"bytes\":{}", ev.bytes);
            }
            if let Some(peer) = ev.peer {
                sep(&mut out);
                let _ = write!(out, "\"peer\":{peer}");
            }
            if let Some(protocol) = ev.protocol {
                sep(&mut out);
                let _ = write!(out, "\"protocol\":\"{protocol}\"");
            }
            if !ev.wait.is_zero() {
                sep(&mut out);
                let _ = write!(out, "\"wait_us\":{}", ev.wait.as_secs() * 1e6);
            }
            if let Some(info) = &ev.info {
                sep(&mut out);
                let _ = write!(out, "\"info\":\"{}\"", escape_json(info));
            }
            out.push_str("}}");
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

/// Minimal JSON string escaping for names and info fields.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Prediction-vs-actual accuracy report for one run.
///
/// `HMPI_Timeof` prices an algorithm under the current speed estimates;
/// the simulator then measures the actual virtual makespan. The gap
/// between the two is the model error this report quantifies, alongside
/// the per-rank phase breakdown that explains *where* the measured time
/// went.
#[derive(Debug, Clone, PartialEq)]
pub struct PredictionReport {
    /// The `HMPI_Timeof` prediction for the whole run, in virtual seconds.
    pub predicted: f64,
    /// The measured virtual makespan, in seconds.
    pub measured: f64,
    /// Per-rank compute / comm / wait breakdown.
    pub phases: Vec<RankPhases>,
}

impl PredictionReport {
    /// Builds a report from a prediction, a measured makespan and the
    /// run's trace.
    pub fn new(predicted: f64, measured: SimTime, trace: &Trace, n_ranks: usize) -> Self {
        PredictionReport {
            predicted,
            measured: measured.as_secs(),
            phases: trace.phases(n_ranks),
        }
    }

    /// Signed model error as a percentage of the measured time
    /// (positive: the model over-predicted).
    pub fn error_pct(&self) -> f64 {
        if self.measured == 0.0 {
            return 0.0;
        }
        (self.predicted - self.measured) / self.measured * 100.0
    }

    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "predicted {:.4} s, measured {:.4} s, model error {:+.1}%",
            self.predicted,
            self.measured,
            self.error_pct()
        );
        let _ = writeln!(
            out,
            "{:>5}  {:>12}  {:>12}  {:>12}",
            "rank", "compute [s]", "comm [s]", "wait [s]"
        );
        for (r, p) in self.phases.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:>5}  {:>12.4}  {:>12.4}  {:>12.4}",
                r,
                p.compute.as_secs(),
                p.comm.as_secs(),
                p.wait.as_secs()
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(rank: usize, kind: TraceKind, start: f64, dur: f64) -> TraceEvent {
        let mut e = TraceEvent::new(rank, kind, "t", SimTime::from_secs(start));
        e.dur = SimTime::from_secs(dur);
        e
    }

    #[test]
    fn drain_sorts_by_time_then_rank() {
        let t = Tracer::new();
        t.record(ev(1, TraceKind::Compute, 2.0, 1.0));
        t.record(ev(0, TraceKind::Compute, 1.0, 1.0));
        t.record(ev(0, TraceKind::Compute, 2.0, 1.0));
        let tr = t.drain();
        assert_eq!(tr.len(), 3);
        assert_eq!(tr.events[0].start, SimTime::from_secs(1.0));
        assert_eq!(tr.events[1].rank, 0);
        assert_eq!(tr.events[2].rank, 1);
        assert!(t.is_empty(), "drain must leave the tracer empty");
    }

    #[test]
    fn phases_split_recv_into_wait_and_comm() {
        let t = Tracer::new();
        t.record(ev(0, TraceKind::Compute, 0.0, 2.0));
        let mut send = ev(0, TraceKind::Send, 2.0, 0.1);
        send.bytes = 800;
        send.peer = Some(1);
        t.record(send);
        let mut recv = ev(1, TraceKind::Recv, 0.0, 3.0);
        recv.wait = SimTime::from_secs(2.0);
        recv.bytes = 800;
        recv.peer = Some(0);
        t.record(recv);
        let tr = t.drain();
        let phases = tr.phases(2);
        assert_eq!(phases[0].compute.as_secs(), 2.0);
        assert!((phases[0].comm.as_secs() - 0.1).abs() < 1e-12);
        assert_eq!(phases[1].wait.as_secs(), 2.0);
        assert_eq!(phases[1].comm.as_secs(), 1.0);
        let stats = tr.message_stats(2);
        assert_eq!(stats[0].sent, 1);
        assert_eq!(stats[0].bytes_sent, 800);
        assert_eq!(stats[1].received, 1);
        assert_eq!(stats[1].bytes_received, 800);
    }

    #[test]
    fn composite_spans_do_not_double_count() {
        let t = Tracer::new();
        t.record(ev(0, TraceKind::Compute, 0.0, 1.0));
        t.record(ev(0, TraceKind::Recon, 0.0, 1.0));
        t.record(ev(0, TraceKind::Selection, 1.0, 0.5));
        let phases = t.drain().phases(1);
        assert_eq!(phases[0].compute.as_secs(), 1.0);
        assert_eq!(phases[0].total().as_secs(), 1.0);
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let t = Tracer::new();
        let mut e = ev(3, TraceKind::Recv, 0.5, 0.25);
        e.wait = SimTime::from_secs(0.1);
        e.bytes = 64;
        e.peer = Some(1);
        e.collective = true;
        e.info = Some("tag \"7\"".into());
        t.record(e);
        let json = t.drain().to_chrome_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"tid\":3"));
        assert!(json.contains("\"ts\":500000"));
        assert!(json.contains("\"dur\":250000"));
        assert!(json.contains("\"cat\":\"recv,collective\""));
        assert!(json.contains("\"bytes\":64"));
        assert!(json.contains("\\\"7\\\""), "info must be escaped");
        // Balanced braces/brackets => structurally sound for this subset.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn prediction_report_error_pct_is_signed() {
        let tr = Trace::default();
        let r = PredictionReport::new(1.2, SimTime::from_secs(1.0), &tr, 2);
        assert!((r.error_pct() - 20.0).abs() < 1e-9);
        let r = PredictionReport::new(0.8, SimTime::from_secs(1.0), &tr, 2);
        assert!((r.error_pct() + 20.0).abs() < 1e-9);
        assert!(r.render().contains("model error"));
    }
}
