//! Point-to-point link model.
//!
//! The cost of moving `b` bytes across a [`Link`] is the classic
//! latency-plus-bandwidth model `latency + b / bandwidth`. This is the level
//! of detail HMPI's model of the executing network operates at: "the speed
//! and bandwidth of communication links between different pairs of
//! processors may differ significantly".

use crate::clock::SimTime;
use crate::protocol::Protocol;
use serde::{Deserialize, Serialize};

/// A directed point-to-point communication link.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// One-way latency in seconds.
    pub latency: f64,
    /// Sustained bandwidth in bytes per second.
    pub bandwidth: f64,
    /// The protocol this link uses.
    pub protocol: Protocol,
}

impl Link {
    /// A link with the given latency (seconds) and bandwidth (bytes/second).
    pub fn new(latency: f64, bandwidth: f64, protocol: Protocol) -> Self {
        assert!(latency >= 0.0, "latency cannot be negative: {latency}");
        assert!(bandwidth > 0.0, "bandwidth must be positive: {bandwidth}");
        Link {
            latency,
            bandwidth,
            protocol,
        }
    }

    /// A link using the protocol's default characteristics.
    pub fn with_defaults(protocol: Protocol) -> Self {
        Link {
            latency: protocol.default_latency(),
            bandwidth: protocol.default_bandwidth(),
            protocol,
        }
    }

    /// The free (zero-cost) loopback link.
    pub fn loopback() -> Self {
        Link::with_defaults(Protocol::Loopback)
    }

    /// Time to move `bytes` bytes across this link.
    #[inline]
    pub fn transfer_time(&self, bytes: usize) -> SimTime {
        if self.bandwidth.is_infinite() {
            return SimTime::from_secs(self.latency);
        }
        SimTime::from_secs(self.latency + bytes as f64 / self.bandwidth)
    }

    /// Like [`Link::transfer_time`] but with the bandwidth reduced to
    /// `bandwidth_factor` of its healthy value — how the fault layer applies
    /// a link degradation (see
    /// [`crate::fault::FaultPlan::link_bandwidth_factor`]).
    #[inline]
    pub fn transfer_time_degraded(&self, bytes: usize, bandwidth_factor: f64) -> SimTime {
        debug_assert!(
            bandwidth_factor > 0.0 && bandwidth_factor <= 1.0,
            "bandwidth factor must be in (0, 1], got {bandwidth_factor}"
        );
        if self.bandwidth.is_infinite() {
            return SimTime::from_secs(self.latency);
        }
        SimTime::from_secs(self.latency + bytes as f64 / (self.bandwidth * bandwidth_factor))
    }

    /// Effective throughput for a message of `bytes` bytes (bytes/second),
    /// i.e. the size divided by the full transfer time. Approaches the raw
    /// bandwidth for large messages and collapses for tiny ones — the usual
    /// reason heterogeneous-network schedulers must model latency at all.
    pub fn effective_throughput(&self, bytes: usize) -> f64 {
        let t = self.transfer_time(bytes).as_secs();
        if t == 0.0 {
            f64::INFINITY
        } else {
            bytes as f64 / t
        }
    }
}

impl Default for Link {
    fn default() -> Self {
        Link::with_defaults(Protocol::Tcp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_latency_plus_size_over_bandwidth() {
        let l = Link::new(0.001, 1000.0, Protocol::Tcp);
        let t = l.transfer_time(500);
        assert!((t.as_secs() - 0.501).abs() < 1e-12);
    }

    #[test]
    fn zero_bytes_costs_latency_only() {
        let l = Link::new(0.002, 1e6, Protocol::Tcp);
        assert!((l.transfer_time(0).as_secs() - 0.002).abs() < 1e-15);
    }

    #[test]
    fn loopback_is_free() {
        let l = Link::loopback();
        assert_eq!(l.transfer_time(1_000_000_000).as_secs(), 0.0);
    }

    #[test]
    fn effective_throughput_approaches_bandwidth_for_large_messages() {
        let l = Link::new(150e-6, 11e6, Protocol::Tcp);
        let small = l.effective_throughput(100);
        let large = l.effective_throughput(100_000_000);
        assert!(small < 0.1 * 11e6, "latency should dominate small messages");
        assert!(large > 0.99 * 11e6, "bandwidth should dominate large ones");
    }

    #[test]
    #[should_panic]
    fn negative_latency_rejected() {
        let _ = Link::new(-1.0, 1e6, Protocol::Tcp);
    }

    #[test]
    #[should_panic]
    fn zero_bandwidth_rejected() {
        let _ = Link::new(0.0, 0.0, Protocol::Tcp);
    }

    #[test]
    fn default_is_tcp() {
        assert_eq!(Link::default().protocol, Protocol::Tcp);
    }
}
