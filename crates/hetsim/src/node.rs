//! Processor model.
//!
//! A [`Processor`] is one computer of the heterogeneous network. Its speed is
//! expressed the way the paper expresses it: in *benchmark units per second*,
//! where one benchmark unit is the volume of computation performed by the
//! application's `HMPI_Recon` benchmark code (e.g. updating `k` nodes of one
//! EM3D sub-body, or multiplying two `r × r` matrices). The paper's testbed
//! speeds — 46, 46, 46, 46, 46, 46, 176, 106, 9 — are exactly such relative
//! numbers.

use crate::clock::SimTime;
use crate::load::LoadModel;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a processor (computer) within a [`crate::Cluster`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub usize);

impl NodeId {
    /// The index into the cluster's processor list.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// One computer of the heterogeneous network.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Processor {
    /// Human-readable host name (e.g. `"csultra01"`).
    pub name: String,
    /// Base speed in benchmark units per second, as delivered when the
    /// machine is otherwise idle.
    pub base_speed: f64,
    /// External load stealing a time-varying fraction of the processor.
    pub load: LoadModel,
    /// How many application processes this computer can usefully host
    /// (the paper runs one process per processor; SMP nodes may host more).
    pub slots: usize,
}

impl Processor {
    /// A processor with the given name and base speed, no external load and
    /// one process slot.
    pub fn new(name: impl Into<String>, base_speed: f64) -> Self {
        assert!(
            base_speed > 0.0,
            "processor speed must be positive, got {base_speed}"
        );
        Processor {
            name: name.into(),
            base_speed,
            load: LoadModel::None,
            slots: 1,
        }
    }

    /// Attaches an external-load model (builder style).
    pub fn with_load(mut self, load: LoadModel) -> Self {
        self.load = load;
        self
    }

    /// Sets the number of process slots (builder style).
    pub fn with_slots(mut self, slots: usize) -> Self {
        assert!(slots >= 1, "a processor must have at least one slot");
        self.slots = slots;
        self
    }

    /// The speed actually delivered to the application at virtual time `t`,
    /// in benchmark units per second.
    #[inline]
    pub fn speed_at(&self, t: SimTime) -> f64 {
        self.base_speed * self.load.available_at(t)
    }

    /// Virtual time needed to execute `units` benchmark units starting at
    /// time `start`, assuming the delivered speed stays at its `start` value
    /// for the duration (a first-order model; load changes mid-computation
    /// are picked up by the next call).
    #[inline]
    pub fn compute_time(&self, units: f64, start: SimTime) -> SimTime {
        debug_assert!(units >= 0.0, "computation volume cannot be negative");
        SimTime::from_secs(units / self.speed_at(start))
    }

    /// Like [`Processor::compute_time`] but with the delivered speed further
    /// multiplied by `speed_factor` — how the fault layer applies a transient
    /// slowdown (see [`crate::fault::FaultPlan::slowdown_factor`]).
    #[inline]
    pub fn compute_time_scaled(&self, units: f64, start: SimTime, speed_factor: f64) -> SimTime {
        debug_assert!(units >= 0.0, "computation volume cannot be negative");
        debug_assert!(
            speed_factor > 0.0,
            "speed factor must be positive, got {speed_factor}"
        );
        SimTime::from_secs(units / (self.speed_at(start) * speed_factor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_processor_delivers_base_speed() {
        let p = Processor::new("host0", 46.0);
        assert_eq!(p.speed_at(SimTime::ZERO), 46.0);
        assert_eq!(p.speed_at(SimTime::from_secs(1e9)), 46.0);
    }

    #[test]
    fn loaded_processor_delivers_reduced_speed() {
        let p = Processor::new("host0", 100.0).with_load(LoadModel::Constant { fraction: 0.25 });
        assert_eq!(p.speed_at(SimTime::ZERO), 75.0);
    }

    #[test]
    fn compute_time_is_volume_over_speed() {
        let p = Processor::new("fast", 176.0);
        let t = p.compute_time(88.0, SimTime::ZERO);
        assert!((t.as_secs() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn compute_time_respects_load_at_start() {
        let p = Processor::new("host", 100.0).with_load(LoadModel::Step {
            start: SimTime::from_secs(10.0),
            end: SimTime::from_secs(20.0),
            fraction: 0.5,
        });
        assert_eq!(p.compute_time(100.0, SimTime::ZERO).as_secs(), 1.0);
        assert_eq!(p.compute_time(100.0, SimTime::from_secs(15.0)).as_secs(), 2.0);
    }

    #[test]
    #[should_panic]
    fn zero_speed_rejected() {
        let _ = Processor::new("bad", 0.0);
    }

    #[test]
    fn builder_slots() {
        let p = Processor::new("smp", 50.0).with_slots(4);
        assert_eq!(p.slots, 4);
    }
}
