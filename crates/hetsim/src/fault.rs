//! Deterministic fault injection.
//!
//! The paper names fault tolerance (in the FT-MPI tradition) as the key open
//! challenge for message passing on heterogeneous networks: common networks
//! of computers lose nodes, see links degrade, and suffer transient load
//! spikes mid-run. A [`FaultPlan`] is a *deterministic, seeded* schedule of
//! such events in virtual time, attached to a [`crate::Cluster`] so that
//! every layer above (the message-passing substrate, the HMPI runtime, the
//! experiments) can query availability at any virtual instant and replay the
//! exact same failure scenario from the same seed.
//!
//! The plan is purely declarative — it never mutates the cluster. Layers
//! consume it through queries:
//!
//! * [`FaultPlan::crash_time`] / [`FaultPlan::node_available`] — permanent
//!   node failures (fail-stop);
//! * [`FaultPlan::slowdown_factor`] — transient slowdowns (a load spike or
//!   thermal throttle) multiplying delivered speed on a time window;
//! * [`FaultPlan::link_bandwidth_factor`] / [`FaultPlan::link_available`] —
//!   permanent link degradation and link drops from an event time onward.

use crate::clock::SimTime;
use crate::node::NodeId;
use serde::{Deserialize, Serialize};

/// One scheduled fault, in virtual time.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum FaultEvent {
    /// The node fail-stops at `at`: it performs no computation and sends no
    /// messages from that instant on. Crashes are permanent.
    NodeCrash {
        /// The crashing node.
        node: NodeId,
        /// Virtual time of the crash.
        at: SimTime,
    },
    /// The node's delivered speed is multiplied by `factor` (in `(0, 1]`)
    /// while `from <= t < until` — a transient fault the runtime should ride
    /// out rather than treat as a failure.
    NodeSlowdown {
        /// The slowed node.
        node: NodeId,
        /// Start of the slowdown window.
        from: SimTime,
        /// End of the slowdown window (exclusive).
        until: SimTime,
        /// Speed multiplier in `(0, 1]`.
        factor: f64,
    },
    /// The directed link `from -> to` keeps only `bandwidth_factor` of its
    /// bandwidth from `at` onward (cable fault, route flap, congestion).
    LinkDegrade {
        /// Sending side of the degraded link.
        from: NodeId,
        /// Receiving side of the degraded link.
        to: NodeId,
        /// Virtual time the degradation begins.
        at: SimTime,
        /// Remaining fraction of bandwidth, in `(0, 1]`.
        bandwidth_factor: f64,
    },
    /// The directed link `from -> to` carries no traffic from `at` onward.
    LinkDrop {
        /// Sending side of the dropped link.
        from: NodeId,
        /// Receiving side of the dropped link.
        to: NodeId,
        /// Virtual time the link goes down.
        at: SimTime,
    },
}

impl FaultEvent {
    fn validate(&self) {
        match *self {
            FaultEvent::NodeCrash { .. } => {}
            FaultEvent::NodeSlowdown {
                from,
                until,
                factor,
                ..
            } => {
                assert!(
                    factor > 0.0 && factor <= 1.0,
                    "slowdown factor must be in (0, 1], got {factor}"
                );
                assert!(from < until, "slowdown window must be non-empty");
            }
            FaultEvent::LinkDegrade {
                bandwidth_factor, ..
            } => {
                assert!(
                    bandwidth_factor > 0.0 && bandwidth_factor <= 1.0,
                    "bandwidth factor must be in (0, 1], got {bandwidth_factor}"
                );
            }
            FaultEvent::LinkDrop { .. } => {}
        }
    }
}

/// A deterministic schedule of [`FaultEvent`]s.
///
/// The default plan is empty (a fault-free run); all queries then report
/// full availability, so attaching an empty plan changes nothing.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty, fault-free plan.
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// A plan with the given events.
    ///
    /// # Panics
    /// Panics if an event is malformed (slowdown/bandwidth factor outside
    /// `(0, 1]`, empty slowdown window).
    pub fn new(events: Vec<FaultEvent>) -> Self {
        for e in &events {
            e.validate();
        }
        FaultPlan { events }
    }

    /// Adds one event (builder style).
    pub fn with(mut self, event: FaultEvent) -> Self {
        event.validate();
        self.events.push(event);
        self
    }

    /// Draws a random crash schedule: each node in `nodes` independently
    /// fail-stops with probability `crash_rate`, at a time uniform in
    /// `(0, horizon)`. The same `(seed, nodes, crash_rate, horizon)` always
    /// produces the identical plan — experiments replay bit-for-bit.
    pub fn random_crashes(
        seed: u64,
        nodes: impl IntoIterator<Item = NodeId>,
        crash_rate: f64,
        horizon: SimTime,
    ) -> Self {
        use rand::{Rng, SeedableRng, StdRng};
        assert!(
            (0.0..=1.0).contains(&crash_rate),
            "crash rate must be a probability, got {crash_rate}"
        );
        assert!(horizon > SimTime::ZERO, "horizon must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut events = Vec::new();
        for node in nodes {
            // Draw both numbers unconditionally so each node consumes the
            // same amount of randomness regardless of the rate: raising the
            // rate only *adds* crashes, it never reshuffles survivors.
            let dice = rng.random_range(0.0..1.0);
            let frac = rng.random_range(0.0..1.0);
            if dice < crash_rate {
                let at = SimTime::from_secs(f64::max(
                    horizon.as_secs() * frac,
                    f64::MIN_POSITIVE,
                ));
                events.push(FaultEvent::NodeCrash { node, at });
            }
        }
        FaultPlan { events }
    }

    /// Draws an arbitrary mixed-event plan over `nodes` nodes: every event
    /// kind ([`FaultEvent::NodeCrash`], [`FaultEvent::NodeSlowdown`],
    /// [`FaultEvent::LinkDegrade`], [`FaultEvent::LinkDrop`]) may appear,
    /// with times in `(0, horizon)` and factors in `(0, 1]`. At most
    /// `max_events` events are drawn, and at least one node never crashes
    /// (a plan that kills everything exercises nothing). The same
    /// `(seed, nodes, max_events, horizon)` always produces the identical
    /// plan.
    ///
    /// This is the arbitrary-instance generator for fuzzing; for the
    /// crash-only experiments use [`FaultPlan::random_crashes`].
    ///
    /// # Panics
    /// Panics if `nodes == 0` or `horizon` is not positive.
    pub fn random_mixed(seed: u64, nodes: usize, max_events: usize, horizon: SimTime) -> Self {
        use rand::{Rng, SeedableRng, StdRng};
        assert!(nodes > 0, "need at least one node");
        assert!(horizon > SimTime::ZERO, "horizon must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let h = horizon.as_secs();
        // The survivor is exempt from crashes (but not transient faults).
        let survivor = NodeId(rng.random_range(0..nodes));
        let n_events = if max_events == 0 {
            0
        } else {
            rng.random_range(0..max_events + 1)
        };
        let mut events = Vec::with_capacity(n_events);
        let mut crashed = std::collections::HashSet::new();
        for _ in 0..n_events {
            let at = SimTime::from_secs(rng.random_range(0.0..h).max(f64::MIN_POSITIVE));
            let node = NodeId(rng.random_range(0..nodes));
            match rng.random_range(0u32..4) {
                0 if node != survivor && crashed.insert(node) => {
                    events.push(FaultEvent::NodeCrash { node, at });
                }
                1 => {
                    let until =
                        SimTime::from_secs(at.as_secs() + rng.random_range(0.0..h).max(1e-9));
                    events.push(FaultEvent::NodeSlowdown {
                        node,
                        from: at,
                        until,
                        factor: rng.random_range(0.05..1.0),
                    });
                }
                2 | 3 if nodes >= 2 => {
                    let mut to = NodeId(rng.random_range(0..nodes));
                    while to == node {
                        to = NodeId(rng.random_range(0..nodes));
                    }
                    if rng.random_range(0u32..2) == 0 {
                        events.push(FaultEvent::LinkDegrade {
                            from: node,
                            to,
                            at,
                            bandwidth_factor: rng.random_range(0.05..1.0),
                        });
                    } else {
                        events.push(FaultEvent::LinkDrop { from: node, to, at });
                    }
                }
                _ => {}
            }
        }
        FaultPlan::new(events)
    }

    /// All scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True if no faults are scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The virtual time at which `node` fail-stops, if it ever does (the
    /// earliest of its scheduled crashes).
    pub fn crash_time(&self, node: NodeId) -> Option<SimTime> {
        self.events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::NodeCrash { node: n, at } if n == node => Some(at),
                _ => None,
            })
            .min()
    }

    /// Crash times of every node in `0..n_nodes`, in one pass over the
    /// plan: entry `i` is the earliest scheduled crash of node `i`, `None`
    /// if it never fail-stops. The bulk form of [`FaultPlan::crash_time`],
    /// for callers building per-rank doom tables.
    pub fn crash_times(&self, n_nodes: usize) -> Vec<Option<SimTime>> {
        let mut times = vec![None; n_nodes];
        for e in &self.events {
            if let FaultEvent::NodeCrash { node, at } = *e {
                if node.index() < n_nodes {
                    let slot: &mut Option<SimTime> = &mut times[node.index()];
                    *slot = Some(slot.map_or(at, |t: SimTime| t.min(at)));
                }
            }
        }
        times
    }

    /// True if `node` has not crashed strictly before or at `t`.
    pub fn node_available(&self, node: NodeId, t: SimTime) -> bool {
        match self.crash_time(node) {
            Some(at) => t < at,
            None => true,
        }
    }

    /// Combined speed multiplier for `node` at time `t` (product of all
    /// active slowdowns; `1.0` when none are active).
    pub fn slowdown_factor(&self, node: NodeId, t: SimTime) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::NodeSlowdown {
                    node: n,
                    from,
                    until,
                    factor,
                } if n == node && from <= t && t < until => Some(factor),
                _ => None,
            })
            .product()
    }

    /// True if the directed link `from -> to` has not been dropped at `t`.
    pub fn link_available(&self, from: NodeId, to: NodeId, t: SimTime) -> bool {
        !self.events.iter().any(|e| matches!(*e,
            FaultEvent::LinkDrop { from: f, to: d, at } if f == from && d == to && at <= t))
    }

    /// Combined bandwidth multiplier for the directed link `from -> to` at
    /// time `t` (product of all degradations in force; `1.0` when none).
    pub fn link_bandwidth_factor(&self, from: NodeId, to: NodeId, t: SimTime) -> f64 {
        self.events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::LinkDegrade {
                    from: f,
                    to: d,
                    at,
                    bandwidth_factor,
                } if f == from && d == to && at <= t => Some(bandwidth_factor),
                _ => None,
            })
            .product()
    }

    /// Node ids with a scheduled crash, in event order (duplicates removed).
    pub fn crashing_nodes(&self) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = Vec::new();
        for e in &self.events {
            if let FaultEvent::NodeCrash { node, .. } = *e {
                if !out.contains(&node) {
                    out.push(node);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_reports_full_availability() {
        let p = FaultPlan::none();
        let t = SimTime::from_secs(1e6);
        assert!(p.node_available(NodeId(0), t));
        assert_eq!(p.crash_time(NodeId(0)), None);
        assert_eq!(p.slowdown_factor(NodeId(0), t), 1.0);
        assert!(p.link_available(NodeId(0), NodeId(1), t));
        assert_eq!(p.link_bandwidth_factor(NodeId(0), NodeId(1), t), 1.0);
        assert!(p.is_empty());
    }

    #[test]
    fn crash_is_permanent_and_earliest_wins() {
        let p = FaultPlan::new(vec![
            FaultEvent::NodeCrash {
                node: NodeId(3),
                at: SimTime::from_secs(5.0),
            },
            FaultEvent::NodeCrash {
                node: NodeId(3),
                at: SimTime::from_secs(2.0),
            },
        ]);
        assert_eq!(p.crash_time(NodeId(3)), Some(SimTime::from_secs(2.0)));
        assert!(p.node_available(NodeId(3), SimTime::from_secs(1.9)));
        assert!(!p.node_available(NodeId(3), SimTime::from_secs(2.0)));
        assert!(!p.node_available(NodeId(3), SimTime::from_secs(100.0)));
        assert!(p.node_available(NodeId(4), SimTime::from_secs(100.0)));
        assert_eq!(p.crashing_nodes(), vec![NodeId(3)]);
    }

    #[test]
    fn slowdowns_compose_within_their_window() {
        let p = FaultPlan::new(vec![
            FaultEvent::NodeSlowdown {
                node: NodeId(1),
                from: SimTime::from_secs(1.0),
                until: SimTime::from_secs(3.0),
                factor: 0.5,
            },
            FaultEvent::NodeSlowdown {
                node: NodeId(1),
                from: SimTime::from_secs(2.0),
                until: SimTime::from_secs(4.0),
                factor: 0.5,
            },
        ]);
        assert_eq!(p.slowdown_factor(NodeId(1), SimTime::from_secs(0.5)), 1.0);
        assert_eq!(p.slowdown_factor(NodeId(1), SimTime::from_secs(1.5)), 0.5);
        assert_eq!(p.slowdown_factor(NodeId(1), SimTime::from_secs(2.5)), 0.25);
        assert_eq!(p.slowdown_factor(NodeId(1), SimTime::from_secs(3.5)), 0.5);
        assert_eq!(p.slowdown_factor(NodeId(1), SimTime::from_secs(4.0)), 1.0);
    }

    #[test]
    fn link_faults_are_directional() {
        let p = FaultPlan::new(vec![
            FaultEvent::LinkDrop {
                from: NodeId(0),
                to: NodeId(1),
                at: SimTime::from_secs(1.0),
            },
            FaultEvent::LinkDegrade {
                from: NodeId(2),
                to: NodeId(3),
                at: SimTime::from_secs(2.0),
                bandwidth_factor: 0.1,
            },
        ]);
        assert!(p.link_available(NodeId(0), NodeId(1), SimTime::from_secs(0.5)));
        assert!(!p.link_available(NodeId(0), NodeId(1), SimTime::from_secs(1.0)));
        // Reverse direction unaffected.
        assert!(p.link_available(NodeId(1), NodeId(0), SimTime::from_secs(9.0)));
        assert_eq!(
            p.link_bandwidth_factor(NodeId(2), NodeId(3), SimTime::from_secs(3.0)),
            0.1
        );
        assert_eq!(
            p.link_bandwidth_factor(NodeId(3), NodeId(2), SimTime::from_secs(3.0)),
            1.0
        );
    }

    #[test]
    fn random_crashes_replay_identically_for_same_seed() {
        let nodes: Vec<NodeId> = (0..16).map(NodeId).collect();
        let a = FaultPlan::random_crashes(7, nodes.clone(), 0.5, SimTime::from_secs(100.0));
        let b = FaultPlan::random_crashes(7, nodes.clone(), 0.5, SimTime::from_secs(100.0));
        assert_eq!(a, b);
        let c = FaultPlan::random_crashes(8, nodes, 0.5, SimTime::from_secs(100.0));
        assert_ne!(a, c, "different seeds should give different plans");
    }

    #[test]
    fn raising_the_rate_only_adds_crashes() {
        let nodes: Vec<NodeId> = (0..32).map(NodeId).collect();
        let low = FaultPlan::random_crashes(3, nodes.clone(), 0.2, SimTime::from_secs(50.0));
        let high = FaultPlan::random_crashes(3, nodes, 0.6, SimTime::from_secs(50.0));
        for e in low.events() {
            assert!(high.events().contains(e), "missing {e:?} at higher rate");
        }
        assert!(high.events().len() >= low.events().len());
    }

    #[test]
    fn random_crash_rates_are_roughly_honoured() {
        let nodes: Vec<NodeId> = (0..200).map(NodeId).collect();
        let p = FaultPlan::random_crashes(11, nodes, 0.3, SimTime::from_secs(10.0));
        let n = p.events().len() as f64;
        assert!((n / 200.0 - 0.3).abs() < 0.1, "got {n} crashes of 200");
        for e in p.events() {
            if let FaultEvent::NodeCrash { at, .. } = e {
                assert!(*at > SimTime::ZERO && *at < SimTime::from_secs(10.0));
            }
        }
    }

    #[test]
    fn random_mixed_is_deterministic_and_well_formed() {
        let horizon = SimTime::from_secs(5.0);
        for seed in 0..50u64 {
            let a = FaultPlan::random_mixed(seed, 6, 12, horizon);
            let b = FaultPlan::random_mixed(seed, 6, 12, horizon);
            assert_eq!(a, b, "seed {seed} not reproducible");
            // Validation ran in FaultPlan::new; additionally check times and
            // that at least one node survives every plan.
            let crashed: Vec<NodeId> = a.crashing_nodes();
            assert!(crashed.len() < 6, "seed {seed} crashed every node");
            for e in a.events() {
                match *e {
                    FaultEvent::NodeCrash { node, at } => {
                        assert!(node.0 < 6 && at > SimTime::ZERO && at < horizon);
                    }
                    FaultEvent::NodeSlowdown { node, from, .. } => {
                        assert!(node.0 < 6 && from < horizon);
                    }
                    FaultEvent::LinkDegrade { from, to, at, .. }
                    | FaultEvent::LinkDrop { from, to, at } => {
                        assert!(from.0 < 6 && to.0 < 6 && from != to && at < horizon);
                    }
                }
            }
        }
    }

    #[test]
    fn random_mixed_single_node_draws_no_link_events() {
        for seed in 0..20u64 {
            let p = FaultPlan::random_mixed(seed, 1, 8, SimTime::from_secs(2.0));
            assert!(p.crashing_nodes().is_empty(), "sole node must survive");
            for e in p.events() {
                assert!(
                    matches!(e, FaultEvent::NodeSlowdown { .. }),
                    "unexpected {e:?} on a 1-node cluster"
                );
            }
        }
    }

    #[test]
    #[should_panic]
    fn zero_slowdown_factor_rejected() {
        let _ = FaultPlan::new(vec![FaultEvent::NodeSlowdown {
            node: NodeId(0),
            from: SimTime::ZERO,
            until: SimTime::from_secs(1.0),
            factor: 0.0,
        }]);
    }
}
