//! External-load models.
//!
//! The paper's third HNOC challenge is the "multi-user decentralized computer
//! system": workstations are shared, so the speed a parallel application
//! observes varies over time as other users' jobs come and go. A
//! [`LoadModel`] describes that variation as a deterministic function of
//! virtual time; [`crate::Processor::speed_at`] folds it into the delivered
//! speed. `HMPI_Recon` exists precisely to re-measure speeds when the load
//! changes.

use crate::clock::SimTime;
use serde::{Deserialize, Serialize};

/// A deterministic model of external (non-application) load on a processor,
/// expressed as the *fraction of the processor stolen* at a given virtual
/// time. `0.0` means the processor is fully available, `0.9` means only 10 %
/// of its base speed is delivered to the application.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize, Default)]
pub enum LoadModel {
    /// No external load: the processor always delivers its base speed.
    #[default]
    None,
    /// A constant background load stealing the given fraction.
    Constant {
        /// Stolen fraction in `[0, 1)`.
        fraction: f64,
    },
    /// A load that switches on at `start` and off at `end` (a user logging in
    /// and running a job for a while).
    Step {
        /// When the external job starts.
        start: SimTime,
        /// When the external job ends.
        end: SimTime,
        /// Stolen fraction in `[0, 1)` while the job runs.
        fraction: f64,
    },
    /// A periodically oscillating load (daily usage patterns compressed to
    /// simulation scale): `fraction(t) = base + amplitude * sin(2πt/period)`,
    /// clamped to `[0, max)`.
    Sinusoid {
        /// Mean stolen fraction.
        base: f64,
        /// Oscillation amplitude.
        amplitude: f64,
        /// Oscillation period in virtual seconds.
        period: SimTime,
    },
    /// A piecewise-constant trace: `(since, fraction)` pairs sorted by time.
    /// The fraction in force at time `t` is the one with the greatest
    /// `since <= t` (0.0 before the first entry).
    Trace {
        /// Sorted `(since, stolen fraction)` change points.
        points: Vec<(SimTime, f64)>,
    },
    /// A deterministic bounded random walk: every `interval` the stolen
    /// fraction moves by `±step` (direction drawn from a seeded hash of the
    /// step index), reflecting at 0 and `max`. Models bursty multi-user
    /// behaviour while staying fully reproducible.
    RandomWalk {
        /// RNG seed; equal seeds give equal walks.
        seed: u64,
        /// Time between moves.
        interval: SimTime,
        /// Magnitude of each move.
        step: f64,
        /// Upper bound on the stolen fraction (`<= MAX_STOLEN`).
        max: f64,
    },
}

/// A small, fast, deterministic hash (splitmix64) used by
/// [`LoadModel::RandomWalk`] to draw move directions.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The largest stealable fraction; the application always retains at least
/// 1 % of the processor so speeds never reach zero (which would make
/// completion times infinite).
pub const MAX_STOLEN: f64 = 0.99;

impl LoadModel {
    /// The fraction of the processor stolen by external load at time `t`,
    /// clamped to `[0, MAX_STOLEN]`.
    pub fn stolen_at(&self, t: SimTime) -> f64 {
        let raw = match self {
            LoadModel::None => 0.0,
            LoadModel::Constant { fraction } => *fraction,
            LoadModel::Step {
                start,
                end,
                fraction,
            } => {
                if t >= *start && t < *end {
                    *fraction
                } else {
                    0.0
                }
            }
            LoadModel::Sinusoid {
                base,
                amplitude,
                period,
            } => {
                let phase = 2.0 * std::f64::consts::PI * t.as_secs() / period.as_secs();
                base + amplitude * phase.sin()
            }
            LoadModel::Trace { points } => {
                // Last change point at or before t.
                let idx = points.partition_point(|(since, _)| *since <= t);
                if idx == 0 {
                    0.0
                } else {
                    points[idx - 1].1
                }
            }
            LoadModel::RandomWalk {
                seed,
                interval,
                step,
                max,
            } => {
                let max = max.clamp(0.0, MAX_STOLEN);
                let steps = (t.as_secs() / interval.as_secs()) as u64;
                // Walk the (bounded) number of moves; reflect at the edges.
                // Cost is O(steps) per query — fine for simulation horizons,
                // documented as such.
                let mut frac = 0.0f64;
                for i in 0..steps.min(1_000_000) {
                    let up = splitmix64(seed ^ i) & 1 == 1;
                    frac += if up { *step } else { -step };
                    if frac < 0.0 {
                        frac = -frac;
                    }
                    if frac > max {
                        frac = 2.0 * max - frac;
                    }
                    frac = frac.clamp(0.0, max);
                }
                frac
            }
        };
        raw.clamp(0.0, MAX_STOLEN)
    }

    /// The fraction of the processor *available* to the application at `t`.
    pub fn available_at(&self, t: SimTime) -> f64 {
        1.0 - self.stolen_at(t)
    }

    /// True if this model never changes over time (so a single `Recon` stays
    /// accurate forever).
    pub fn is_static(&self) -> bool {
        match self {
            LoadModel::None | LoadModel::Constant { .. } => true,
            LoadModel::Trace { points } => points.is_empty(),
            LoadModel::Step { .. } | LoadModel::Sinusoid { .. } | LoadModel::RandomWalk { .. } => {
                false
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn none_steals_nothing() {
        assert_eq!(LoadModel::None.stolen_at(t(0.0)), 0.0);
        assert_eq!(LoadModel::None.available_at(t(123.0)), 1.0);
    }

    #[test]
    fn constant_is_constant() {
        let m = LoadModel::Constant { fraction: 0.5 };
        assert_eq!(m.stolen_at(t(0.0)), 0.5);
        assert_eq!(m.stolen_at(t(1e6)), 0.5);
    }

    #[test]
    fn constant_clamps_to_max() {
        let m = LoadModel::Constant { fraction: 2.0 };
        assert_eq!(m.stolen_at(t(0.0)), MAX_STOLEN);
        let m = LoadModel::Constant { fraction: -0.5 };
        assert_eq!(m.stolen_at(t(0.0)), 0.0);
    }

    #[test]
    fn step_is_active_only_inside_window() {
        let m = LoadModel::Step {
            start: t(10.0),
            end: t(20.0),
            fraction: 0.8,
        };
        assert_eq!(m.stolen_at(t(9.9)), 0.0);
        assert_eq!(m.stolen_at(t(10.0)), 0.8);
        assert_eq!(m.stolen_at(t(19.9)), 0.8);
        assert_eq!(m.stolen_at(t(20.0)), 0.0);
    }

    #[test]
    fn sinusoid_oscillates_around_base() {
        let m = LoadModel::Sinusoid {
            base: 0.5,
            amplitude: 0.3,
            period: t(4.0),
        };
        assert!((m.stolen_at(t(0.0)) - 0.5).abs() < 1e-12);
        assert!((m.stolen_at(t(1.0)) - 0.8).abs() < 1e-12); // sin peak
        assert!((m.stolen_at(t(3.0)) - 0.2).abs() < 1e-12); // sin trough
    }

    #[test]
    fn trace_picks_latest_change_point() {
        let m = LoadModel::Trace {
            points: vec![(t(1.0), 0.2), (t(5.0), 0.7)],
        };
        assert_eq!(m.stolen_at(t(0.5)), 0.0);
        assert_eq!(m.stolen_at(t(1.0)), 0.2);
        assert_eq!(m.stolen_at(t(4.9)), 0.2);
        assert_eq!(m.stolen_at(t(5.0)), 0.7);
        assert_eq!(m.stolen_at(t(100.0)), 0.7);
    }

    #[test]
    fn static_detection() {
        assert!(LoadModel::None.is_static());
        assert!(LoadModel::Constant { fraction: 0.1 }.is_static());
        assert!(!LoadModel::Step {
            start: t(0.0),
            end: t(1.0),
            fraction: 0.5
        }
        .is_static());
    }

    #[test]
    fn random_walk_is_deterministic_and_bounded() {
        let m = LoadModel::RandomWalk {
            seed: 42,
            interval: t(1.0),
            step: 0.1,
            max: 0.8,
        };
        let mut changed = false;
        let mut prev = m.stolen_at(t(0.0));
        for i in 0..200 {
            let ti = t(i as f64);
            let v = m.stolen_at(ti);
            assert!((0.0..=0.8).contains(&v), "walk escaped bounds: {v}");
            assert_eq!(v, m.stolen_at(ti), "same time, same value");
            if (v - prev).abs() > 1e-12 {
                changed = true;
            }
            prev = v;
        }
        assert!(changed, "the walk must actually move");
        // Different seeds give different walks.
        let other = LoadModel::RandomWalk {
            seed: 43,
            interval: t(1.0),
            step: 0.1,
            max: 0.8,
        };
        let same = (0..50).all(|i| m.stolen_at(t(i as f64)) == other.stolen_at(t(i as f64)));
        assert!(!same, "different seeds should diverge");
    }

    #[test]
    fn random_walk_moves_in_step_increments_between_intervals() {
        let m = LoadModel::RandomWalk {
            seed: 7,
            interval: t(2.0),
            step: 0.25,
            max: 0.9,
        };
        // Within one interval the value is constant.
        assert_eq!(m.stolen_at(t(4.0)), m.stolen_at(t(5.9)));
        // Across an interval boundary it moves by at most one step.
        let a = m.stolen_at(t(5.9));
        let b = m.stolen_at(t(6.0));
        assert!((a - b).abs() <= 0.25 + 1e-12);
    }

    #[test]
    fn available_plus_stolen_is_one() {
        let m = LoadModel::Sinusoid {
            base: 0.4,
            amplitude: 0.2,
            period: t(10.0),
        };
        for i in 0..20 {
            let ti = t(i as f64 * 0.7);
            assert!((m.available_at(ti) + m.stolen_at(ti) - 1.0).abs() < 1e-12);
        }
    }
}
