//! A minimal JSON reader for validating hand-rolled exports.
//!
//! The workspace writes JSON by hand (the Chrome `trace_event` exporter in
//! [`crate::trace`], the benchmark reports) and has no external JSON
//! dependency, so nothing ever *read back* those documents to prove they
//! parse. This module is that reader: a small, strict, recursive-descent
//! parser producing a [`JsonValue`] tree, used by the trace-exporter tests
//! and the `simcheck` trace-well-formedness invariant. It is a validator,
//! not a performance-oriented deserialiser.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON document.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`, like browsers do).
    Number(f64),
    /// A string, with escapes decoded.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object. Keys are kept sorted; duplicate keys are a parse error.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// The value at `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }
}

/// Why a document failed to parse.
#[derive(Clone, Debug, PartialEq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for JsonError {}

/// Parses a complete JSON document. Trailing content (other than
/// whitespace) is an error, as are duplicate object keys, unescaped control
/// characters, and non-finite numbers (which JSON cannot represent).
pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: impl Into<String>) -> JsonError {
        JsonError {
            at: self.pos,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: JsonValue) -> Result<JsonValue, JsonError> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected '{lit}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(format!("unexpected byte {:#04x}", c))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key_at = self.pos;
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            if map.insert(key.clone(), val).is_some() {
                return Err(JsonError {
                    at: key_at,
                    msg: format!("duplicate key {key:?}"),
                });
            }
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // exporters; reject rather than mis-decode.
                            let c = char::from_u32(code)
                                .ok_or_else(|| self.err("surrogate in \\u escape"))?;
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is &str, so slicing on
                    // char boundaries is safe to find).
                    let s = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = s.chars().next().unwrap();
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let n: f64 = text
            .parse()
            .map_err(|_| self.err(format!("bad number {text:?}")))?;
        if !n.is_finite() {
            return Err(self.err(format!("number {text:?} overflows f64")));
        }
        Ok(JsonValue::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse(" true ").unwrap(), JsonValue::Bool(true));
        assert_eq!(parse("-1.5e3").unwrap(), JsonValue::Number(-1500.0));
        assert_eq!(
            parse(r#""a\nbA""#).unwrap(),
            JsonValue::String("a\nbA".into())
        );
        let doc = parse(r#"{"a": [1, 2, {"b": false}], "c": "d"}"#).unwrap();
        assert_eq!(doc.get("c").and_then(JsonValue::as_str), Some("d"));
        assert_eq!(doc.get("a").and_then(JsonValue::as_array).unwrap().len(), 3);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "", "{", "[1,]", "{\"a\":1,}", "{\"a\":1 \"b\":2}", "01x", "\"\x01\"",
            "{\"a\":1}{", "nul", "\"unterminated", "{\"dup\":1,\"dup\":2}", "1e999",
        ] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn roundtrips_exporter_style_documents() {
        let doc = parse(
            r#"{"traceEvents":[{"name":"compute","cat":"x","ph":"X","pid":0,"tid":3,"ts":1.25,"dur":0.5,"args":{"bytes":1024}}],"displayTimeUnit":"ms"}"#,
        )
        .unwrap();
        let events = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events[0].get("tid").unwrap().as_f64(), Some(3.0));
    }
}
