//! Virtual time.
//!
//! Every experiment in this reproduction reports *virtual* (simulated)
//! seconds rather than wall-clock seconds: compute phases advance a rank's
//! clock by `volume / speed`, and messages advance the receiver's clock by
//! the link traversal cost. [`SimTime`] is a thin wrapper over `f64` seconds
//! that keeps the two kinds of time from being mixed up.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in (or duration of) virtual time, in seconds.
///
/// `SimTime` is totally ordered (NaN is rejected at construction in debug
/// builds) and supports the arithmetic needed by the timing model.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Creates a time from seconds.
    ///
    /// # Panics
    /// Panics in debug builds if `secs` is NaN or negative.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        debug_assert!(!secs.is_nan(), "SimTime cannot be NaN");
        debug_assert!(secs >= 0.0, "SimTime cannot be negative: {secs}");
        SimTime(secs)
    }

    /// The value in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two times.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// True if this time is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime::from_secs(self.0 - rhs.0)
    }
}

impl Mul<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 / rhs)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("SimTime is never NaN by construction")
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(prec) = f.precision() {
            write!(f, "{:.*}", prec, self.0)
        } else {
            write!(f, "{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_zero() {
        assert!(SimTime::ZERO.is_zero());
        assert_eq!(SimTime::ZERO.as_secs(), 0.0);
    }

    #[test]
    fn arithmetic_roundtrip() {
        let a = SimTime::from_secs(1.5);
        let b = SimTime::from_secs(2.5);
        assert_eq!((a + b).as_secs(), 4.0);
        assert_eq!((b - a).as_secs(), 1.0);
        assert_eq!((a * 2.0).as_secs(), 3.0);
        assert_eq!((b / 2.0).as_secs(), 1.25);
    }

    #[test]
    fn max_min_pick_correct_operand() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        assert_eq!(b.max(b), b);
    }

    #[test]
    fn ordering_is_total_on_constructed_values() {
        let mut v = [SimTime::from_secs(3.0),
            SimTime::from_secs(1.0),
            SimTime::from_secs(2.0)];
        v.sort();
        assert_eq!(v[0].as_secs(), 1.0);
        assert_eq!(v[2].as_secs(), 3.0);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimTime = (1..=4).map(|i| SimTime::from_secs(i as f64)).sum();
        assert_eq!(total.as_secs(), 10.0);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn negative_time_panics_in_debug() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    fn display_respects_precision() {
        let t = SimTime::from_secs(1.23456);
        assert_eq!(format!("{t:.2}"), "1.23");
    }
}
