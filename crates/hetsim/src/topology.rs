//! Cluster topology: processors plus a pairwise link matrix.
//!
//! A [`Cluster`] is the complete model of the executing network of computers
//! that the HMPI runtime plans against. [`Cluster::paper_lan`] encodes the
//! testbed of the paper's Section 5: nine workstations with relative speeds
//! 46, 46, 46, 46, 46, 46, 176, 106 and 9, connected by 100 Mbit switched
//! Ethernet ("with a switch enabling parallel communications between the
//! computers" — i.e. [`ContentionModel::ParallelLinks`]).

use crate::clock::SimTime;
use crate::fault::FaultPlan;
use crate::link::Link;
use crate::node::{NodeId, Processor};
use crate::protocol::Protocol;
use serde::{Deserialize, Serialize};

/// How concurrent transfers share the network.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum ContentionModel {
    /// Every pair of computers can communicate at full link speed
    /// simultaneously (a non-blocking switch, as in the paper's testbed).
    #[default]
    ParallelLinks,
    /// Each computer's network interface serialises its transfers (sends and
    /// receives share the NIC), as on a half-duplex or host-limited network.
    SerializedNic,
    /// The whole network is one shared medium (hub/bus Ethernet): all
    /// transfers serialise.
    SharedBus,
}

/// The nine workstation speeds of the paper's Section 5 LAN (46×6, 176,
/// 106, 9), in node-id order.
pub const PAPER_EM3D_SPEEDS: [f64; 9] =
    [46.0, 46.0, 46.0, 46.0, 46.0, 46.0, 176.0, 106.0, 9.0];

/// A dense pairwise link-cost table over a node subset, produced by
/// [`Cluster::pair_table`]. Indices are positions in the subset, not
/// [`NodeId`]s, so the table maps directly onto communicator ranks.
#[derive(Clone, Debug, PartialEq)]
pub struct PairTable {
    /// Number of endpoints in the subset.
    pub n: usize,
    /// Row-major `n × n` link latencies in seconds (zero on the diagonal).
    pub latency: Vec<f64>,
    /// Row-major `n × n` link bandwidths in bytes/second (zero on the
    /// diagonal; a zero bandwidth means "free", matching the transport's
    /// treatment of same-node transfers).
    pub bandwidth: Vec<f64>,
}

impl PairTable {
    /// Latency from subset position `i` to position `j`.
    #[inline]
    pub fn latency(&self, i: usize, j: usize) -> f64 {
        self.latency[i * self.n + j]
    }

    /// Bandwidth from subset position `i` to position `j`.
    #[inline]
    pub fn bandwidth(&self, i: usize, j: usize) -> f64 {
        self.bandwidth[i * self.n + j]
    }
}

/// Declared multi-level structure over a cluster's nodes: which switch and
/// which site each node hangs off. Together with a placement (ranks → nodes)
/// and the optional memory bus this yields the full
/// core → memory-bus domain → node → switch → site hierarchy the
/// topology-aware collective engine plans against. Produced by
/// [`TopologyBuilder`]; absent (`None` on [`Cluster::topology`]) for flat
/// clusters, where every node implicitly shares switch 0 of site 0.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TopologyInfo {
    /// `site_of[node]` = the site index hosting that node.
    site_of: Vec<usize>,
    /// `switch_of[node]` = the globally-numbered switch the node hangs off
    /// (switch indices are unique across sites, not per-site).
    switch_of: Vec<usize>,
}

impl TopologyInfo {
    /// Builds the declaration from explicit per-node coordinates.
    ///
    /// # Panics
    /// Panics if the two vectors differ in length or a node's switch is
    /// shared across two sites (switches are strictly nested inside sites).
    pub fn new(site_of: Vec<usize>, switch_of: Vec<usize>) -> Self {
        assert_eq!(
            site_of.len(),
            switch_of.len(),
            "site and switch vectors must cover the same nodes"
        );
        let mut owner: std::collections::HashMap<usize, usize> = std::collections::HashMap::new();
        for (node, (&site, &sw)) in site_of.iter().zip(&switch_of).enumerate() {
            if let Some(&prev) = owner.get(&sw) {
                assert_eq!(
                    prev, site,
                    "switch {sw} (node {node}) appears in both site {prev} and site {site}"
                );
            } else {
                owner.insert(sw, site);
            }
        }
        TopologyInfo { site_of, switch_of }
    }

    /// The site hosting `node`.
    #[inline]
    pub fn site_of(&self, node: NodeId) -> usize {
        self.site_of[node.0]
    }

    /// The switch `node` hangs off (globally numbered).
    #[inline]
    pub fn switch_of(&self, node: NodeId) -> usize {
        self.switch_of[node.0]
    }

    /// Number of distinct sites.
    pub fn sites(&self) -> usize {
        let mut s: Vec<usize> = self.site_of.clone();
        s.sort_unstable();
        s.dedup();
        s.len()
    }

    /// Number of distinct switches across all sites.
    pub fn switches(&self) -> usize {
        let mut s: Vec<usize> = self.switch_of.clone();
        s.sort_unstable();
        s.dedup();
        s.len()
    }

    /// True when the declaration carries no usable structure: every node on
    /// the one switch of the one site.
    pub fn is_flat(&self) -> bool {
        self.sites() <= 1 && self.switches() <= 1
    }
}

/// The model of a heterogeneous network of computers.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Cluster {
    nodes: Vec<Processor>,
    /// `links[i][j]` is the link used when node `i` sends to node `j`.
    links: Vec<Vec<Link>>,
    contention: ContentionModel,
    /// Scheduled faults; empty for a fault-free run.
    faults: FaultPlan,
    /// Intra-node memory bus: when present, transfers between *distinct
    /// ranks* placed on the same node travel this link and serialise per
    /// node (many ranks fighting one memory bus). `None` keeps the
    /// historical free loopback for co-located ranks.
    #[serde(default)]
    mem_bus: Option<Link>,
    /// Declared switch/site structure over the nodes; `None` for flat
    /// clusters (pre-topology serialisations deserialise to `None`).
    #[serde(default)]
    topology: Option<TopologyInfo>,
}

impl Cluster {
    /// Builds a cluster from explicit parts. Prefer [`ClusterBuilder`].
    ///
    /// # Panics
    /// Panics if the link matrix is not `n × n` for `n` nodes.
    pub fn from_parts(
        nodes: Vec<Processor>,
        links: Vec<Vec<Link>>,
        contention: ContentionModel,
    ) -> Self {
        let n = nodes.len();
        assert!(n > 0, "a cluster needs at least one processor");
        assert_eq!(links.len(), n, "link matrix must have one row per node");
        for (i, row) in links.iter().enumerate() {
            assert_eq!(
                row.len(),
                n,
                "link matrix row {i} must have one entry per node"
            );
        }
        Cluster {
            nodes,
            links,
            contention,
            faults: FaultPlan::none(),
            mem_bus: None,
            topology: None,
        }
    }

    /// Attaches a declared switch/site structure (builder style). Prefer
    /// [`TopologyBuilder`], which derives the declaration from construction.
    ///
    /// # Panics
    /// Panics if the declaration does not cover exactly this cluster's nodes.
    pub fn with_topology(mut self, info: TopologyInfo) -> Self {
        assert_eq!(
            info.site_of.len(),
            self.nodes.len(),
            "topology declaration must cover every node"
        );
        self.topology = Some(info);
        self
    }

    /// The declared switch/site structure, when one was attached.
    #[inline]
    pub fn topology(&self) -> Option<&TopologyInfo> {
        self.topology.as_ref()
    }

    /// The site hosting `id` (0 for flat clusters).
    #[inline]
    pub fn site_of(&self, id: NodeId) -> usize {
        self.topology.as_ref().map_or(0, |t| t.site_of(id))
    }

    /// The switch `id` hangs off (0 for flat clusters).
    #[inline]
    pub fn switch_of(&self, id: NodeId) -> usize {
        self.topology.as_ref().map_or(0, |t| t.switch_of(id))
    }

    /// Attaches an intra-node memory bus (builder style): transfers between
    /// distinct ranks placed on the same node travel this link and
    /// serialise per node instead of riding the free loopback.
    pub fn with_mem_bus(mut self, link: Link) -> Self {
        self.mem_bus = Some(link);
        self
    }

    /// The intra-node memory-bus link, if one is modelled.
    #[inline]
    pub fn mem_bus(&self) -> Option<&Link> {
        self.mem_bus.as_ref()
    }

    /// Attaches a fault-injection plan (builder style). Replaces any
    /// previously attached plan.
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The fault plan in force (empty for a fault-free cluster).
    #[inline]
    pub fn faults(&self) -> &FaultPlan {
        &self.faults
    }

    /// Number of processors in the cluster.
    #[inline]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the cluster has no processors (never true by construction,
    /// provided for API completeness).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// All node ids, in order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len()).map(NodeId)
    }

    /// The processor with the given id.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Processor {
        &self.nodes[id.0]
    }

    /// All processors, in id order.
    #[inline]
    pub fn nodes(&self) -> &[Processor] {
        &self.nodes
    }

    /// The link used when `from` sends to `to`.
    #[inline]
    pub fn link(&self, from: NodeId, to: NodeId) -> &Link {
        &self.links[from.0][to.0]
    }

    /// The link a message between *distinct ranks* placed on `from` and
    /// `to` travels: the inter-node link, or the intra-node memory bus when
    /// both ranks share a node and a bus is modelled. Same-rank self-sends
    /// do not route through this (they stay on the free loopback).
    #[inline]
    pub fn rank_link(&self, from: NodeId, to: NodeId) -> &Link {
        match &self.mem_bus {
            Some(mem) if from == to => mem,
            _ => &self.links[from.0][to.0],
        }
    }

    /// Fault-honouring transfer time between distinct ranks placed on
    /// `from` and `to`: same-node pairs ride the memory bus (which network
    /// link faults cannot sever) when one is modelled, otherwise the
    /// plain [`Cluster::transfer_time_at`].
    pub fn rank_transfer_time_at(
        &self,
        from: NodeId,
        to: NodeId,
        bytes: usize,
        t: SimTime,
    ) -> Option<SimTime> {
        if from == to {
            if let Some(mem) = &self.mem_bus {
                return Some(mem.transfer_time(bytes));
            }
        }
        self.transfer_time_at(from, to, bytes, t)
    }

    /// The contention model in force.
    #[inline]
    pub fn contention(&self) -> ContentionModel {
        self.contention
    }

    /// A dense latency/bandwidth table for the given node subset, indexed
    /// by *position* in `nodes` (so row `i`, column `j` prices a message
    /// from `nodes[i]` to `nodes[j]`). This is the link-cost view the
    /// collective engine selects algorithms against; it reports the
    /// healthy base link parameters, ignoring transient faults. Distinct
    /// positions sharing a node price over the memory bus when one is
    /// modelled ([`Cluster::rank_link`]).
    pub fn pair_table(&self, nodes: &[NodeId]) -> PairTable {
        let n = nodes.len();
        let mut latency = vec![0.0; n * n];
        let mut bandwidth = vec![0.0; n * n];
        for (i, &a) in nodes.iter().enumerate() {
            for (j, &b) in nodes.iter().enumerate() {
                if i == j {
                    continue;
                }
                let link = self.rank_link(a, b);
                latency[i * n + j] = link.latency;
                bandwidth[i * n + j] = link.bandwidth;
            }
        }
        PairTable {
            n,
            latency,
            bandwidth,
        }
    }

    /// True speed of node `id` at virtual time `t` (benchmark units/second),
    /// including any transient fault slowdown in force at `t`. A crashed
    /// node's speed is reported as `0.0`; check [`Cluster::node_available`]
    /// before dividing by this.
    #[inline]
    pub fn speed_at(&self, id: NodeId, t: SimTime) -> f64 {
        if !self.faults.node_available(id, t) {
            return 0.0;
        }
        self.nodes[id.0].speed_at(t) * self.faults.slowdown_factor(id, t)
    }

    /// Time for node `id` to execute `units` benchmark units starting at `t`,
    /// including any transient fault slowdown in force at `t`.
    ///
    /// # Panics
    /// Panics if the node has crashed at `t` (its speed is zero); callers
    /// must check [`Cluster::node_available`] first.
    #[inline]
    pub fn compute_time(&self, id: NodeId, units: f64, start: SimTime) -> SimTime {
        assert!(
            self.faults.node_available(id, start),
            "node {id:?} has crashed by t={start:?}; check node_available first"
        );
        self.nodes[id.0].compute_time_scaled(units, start, self.faults.slowdown_factor(id, start))
    }

    /// True if node `id` has not fail-stopped at virtual time `t`.
    #[inline]
    pub fn node_available(&self, id: NodeId, t: SimTime) -> bool {
        self.faults.node_available(id, t)
    }

    /// The virtual time at which node `id` fail-stops, if it ever does.
    #[inline]
    pub fn crash_time(&self, id: NodeId) -> Option<SimTime> {
        self.faults.crash_time(id)
    }

    /// Crash times of every node, indexed by node: one pass over the fault
    /// plan instead of a scan per node.
    pub fn crash_times(&self) -> Vec<Option<SimTime>> {
        self.faults.crash_times(self.nodes.len())
    }

    /// True if the directed link `from -> to` is carrying traffic at `t`.
    #[inline]
    pub fn link_available(&self, from: NodeId, to: NodeId, t: SimTime) -> bool {
        self.faults.link_available(from, to, t)
    }

    /// Time to move `bytes` from `from` to `to` (ignoring contention, which
    /// is the message-passing layer's concern), at the link's healthy
    /// bandwidth. For the fault-adjusted cost use
    /// [`Cluster::transfer_time_at`].
    #[inline]
    pub fn transfer_time(&self, from: NodeId, to: NodeId, bytes: usize) -> SimTime {
        self.link(from, to).transfer_time(bytes)
    }

    /// Time to move `bytes` from `from` to `to` for a transfer starting at
    /// virtual time `t`, honouring the fault plan: `None` if the link has
    /// been dropped by `t`, otherwise the cost at the degraded bandwidth in
    /// force at `t`.
    pub fn transfer_time_at(
        &self,
        from: NodeId,
        to: NodeId,
        bytes: usize,
        t: SimTime,
    ) -> Option<SimTime> {
        if !self.faults.link_available(from, to, t) {
            return None;
        }
        let factor = self.faults.link_bandwidth_factor(from, to, t);
        Some(self.link(from, to).transfer_time_degraded(bytes, factor))
    }

    /// Total base speed of all processors — the upper bound on aggregate
    /// throughput a perfectly balanced distribution could reach.
    pub fn total_base_speed(&self) -> f64 {
        self.nodes.iter().map(|n| n.base_speed).sum()
    }

    /// The fastest processor's id (ties broken by lowest id).
    pub fn fastest_node(&self) -> NodeId {
        let idx = self
            .nodes
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.base_speed.total_cmp(&b.base_speed))
            .map(|(i, _)| i)
            .expect("cluster is non-empty by construction");
        NodeId(idx)
    }

    /// The paper's 9-workstation heterogeneous LAN with the speeds measured
    /// for a given application kernel, over switched 100 Mbit Ethernet.
    ///
    /// Section 5 reports the speeds demonstrated on the EM3D core computation
    /// as `[46, 46, 46, 46, 46, 46, 176, 106, 9]` (use
    /// [`Cluster::paper_lan_em3d`]) and on the matrix-multiplication core as
    /// `[46, 46, 46, 46, 46, 46, 106, 9]`-family (use
    /// [`Cluster::paper_lan_matmul`]).
    pub fn paper_lan(speeds: &[f64]) -> Self {
        let mut b = ClusterBuilder::new();
        for (i, &s) in speeds.iter().enumerate() {
            b = b.node(format!("ws{i:02}"), s);
        }
        b.all_to_all(Link::with_defaults(Protocol::Tcp))
            .contention(ContentionModel::ParallelLinks)
            .build()
    }

    /// The EM3D testbed of Section 5 (speeds 46×6, 176, 106, 9).
    ///
    /// The speed vector itself is [`PAPER_EM3D_SPEEDS`].
    pub fn paper_lan_em3d() -> Self {
        Cluster::paper_lan(&PAPER_EM3D_SPEEDS)
    }

    /// [`Cluster::paper_lan`] with a [`FaultPlan`] attached — the testbed of
    /// the fault-tolerance experiments.
    pub fn paper_lan_with_faults(speeds: &[f64], faults: FaultPlan) -> Self {
        let mut b = ClusterBuilder::new();
        for (i, &s) in speeds.iter().enumerate() {
            b = b.node(format!("ws{i:02}"), s);
        }
        b.all_to_all(Link::with_defaults(Protocol::Tcp))
            .contention(ContentionModel::ParallelLinks)
            .faults(faults)
            .build()
    }

    /// Draws an arbitrary heterogeneous cluster: `1..=max_nodes` processors
    /// with base speeds spanning two orders of magnitude, a random default
    /// link, a handful of per-pair link overrides, and a random
    /// [`ContentionModel`]. No fault plan is attached (compose with
    /// [`FaultPlan::random_mixed`] via [`Cluster::with_faults`]).
    ///
    /// The same `(seed, max_nodes)` always produces the identical cluster —
    /// this is the arbitrary-instance generator backing the scenario fuzzer.
    ///
    /// # Panics
    /// Panics if `max_nodes == 0`.
    pub fn random(seed: u64, max_nodes: usize) -> Self {
        use rand::{Rng, SeedableRng, StdRng};
        assert!(max_nodes > 0, "need room for at least one node");
        let mut rng = StdRng::seed_from_u64(seed);
        let n = rng.random_range(1..max_nodes + 1);
        let mut b = ClusterBuilder::new();
        for i in 0..n {
            // Speeds in [5, 500): the paper's testbed spans 9..176, the
            // fuzzer goes a little wider.
            b = b.node(format!("rnd{i:02}"), rng.random_range(5.0..500.0));
        }
        // Latency 1 µs .. 10 ms, bandwidth 1 MB/s .. 1 GB/s (log-uniform).
        let rnd_link = |rng: &mut StdRng| {
            let lat = 1e-6 * 10f64.powf(rng.random_range(0.0..4.0));
            let bw = 1e6 * 10f64.powf(rng.random_range(0.0..3.0));
            Link::new(lat, bw, Protocol::Tcp)
        };
        b = b.all_to_all(rnd_link(&mut rng));
        if n >= 2 {
            for _ in 0..rng.random_range(0..n) {
                let a = rng.random_range(0..n);
                let mut c = rng.random_range(0..n);
                while c == a {
                    c = rng.random_range(0..n);
                }
                let link = rnd_link(&mut rng);
                b = b.link_between(a, c, link);
            }
        }
        let contention = match rng.random_range(0u32..3) {
            0 => ContentionModel::ParallelLinks,
            1 => ContentionModel::SerializedNic,
            _ => ContentionModel::SharedBus,
        };
        b.contention(contention).build()
    }

    /// The matrix-multiplication testbed of Section 5. The paper lists the
    /// speeds demonstrated on the MM core computation as
    /// "46, 46, 46, 46, 46, 46, 106, and 9" for its nine-machine network; the
    /// ninth value (the 176 machine, re-measured on the MM kernel) is taken
    /// to complete the 3 × 3 grid.
    pub fn paper_lan_matmul() -> Self {
        Cluster::paper_lan(&[46.0, 46.0, 46.0, 46.0, 46.0, 46.0, 176.0, 106.0, 9.0])
    }
}

/// Incremental construction of a [`Cluster`].
#[derive(Clone, Debug, Default)]
pub struct ClusterBuilder {
    nodes: Vec<Processor>,
    default_link: Option<Link>,
    overrides: Vec<(usize, usize, Link)>,
    symmetric_overrides: bool,
    contention: ContentionModel,
    faults: FaultPlan,
    mem_bus: Option<Link>,
}

impl ClusterBuilder {
    /// An empty builder.
    pub fn new() -> Self {
        ClusterBuilder {
            symmetric_overrides: true,
            ..Default::default()
        }
    }

    /// Adds a processor with the given name and base speed.
    pub fn node(mut self, name: impl Into<String>, base_speed: f64) -> Self {
        self.nodes.push(Processor::new(name, base_speed));
        self
    }

    /// Adds an already-configured processor (e.g. with a load model).
    pub fn processor(mut self, p: Processor) -> Self {
        self.nodes.push(p);
        self
    }

    /// Uses `link` between every distinct pair of processors.
    pub fn all_to_all(mut self, link: Link) -> Self {
        self.default_link = Some(link);
        self
    }

    /// Overrides the link between a specific pair. By default the override
    /// applies in both directions; call [`ClusterBuilder::asymmetric`] first
    /// to make overrides directional.
    pub fn link_between(mut self, a: usize, b: usize, link: Link) -> Self {
        self.overrides.push((a, b, link));
        self
    }

    /// Makes subsequent [`ClusterBuilder::link_between`] calls directional.
    pub fn asymmetric(mut self) -> Self {
        self.symmetric_overrides = false;
        self
    }

    /// Sets the contention model.
    pub fn contention(mut self, c: ContentionModel) -> Self {
        self.contention = c;
        self
    }

    /// Attaches a fault-injection plan.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Models an intra-node memory bus: transfers between distinct ranks on
    /// the same node travel `link` and serialise per node.
    pub fn mem_bus(mut self, link: Link) -> Self {
        self.mem_bus = Some(link);
        self
    }

    /// Finishes construction.
    ///
    /// # Panics
    /// Panics if no processors were added, if an override references an
    /// unknown node, or if no default link was given and some pair is left
    /// without a link.
    pub fn build(self) -> Cluster {
        let n = self.nodes.len();
        assert!(n > 0, "a cluster needs at least one processor");
        let default = self
            .default_link
            .unwrap_or_else(|| Link::with_defaults(Protocol::Tcp));
        let mut links = vec![vec![default; n]; n];
        for (i, row) in links.iter_mut().enumerate() {
            row[i] = Link::loopback();
        }
        for (a, b, link) in self.overrides {
            assert!(a < n && b < n, "link override ({a},{b}) out of range 0..{n}");
            links[a][b] = link.clone();
            if self.symmetric_overrides {
                links[b][a] = link;
            }
        }
        let mut c = Cluster::from_parts(self.nodes, links, self.contention).with_faults(self.faults);
        c.mem_bus = self.mem_bus;
        c
    }
}

/// A built multi-level testbed: the [`Cluster`] (with its declared
/// switch/site structure, when non-trivial) plus the rank placement the
/// builder accumulated. Feed it to `Universe::from_topology` /
/// `HmpiRuntime::from_topology`, or take the parts apart by hand.
#[derive(Clone, Debug)]
pub struct Topology {
    cluster: Cluster,
    placement: Vec<NodeId>,
}

impl Topology {
    /// The built cluster.
    #[inline]
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// `placement[world_rank]` = the hosting node.
    #[inline]
    pub fn placement(&self) -> &[NodeId] {
        &self.placement
    }

    /// Number of ranks the placement hosts.
    #[inline]
    pub fn ranks(&self) -> usize {
        self.placement.len()
    }

    /// Decomposes into `(cluster, placement)`.
    pub fn into_parts(self) -> (Cluster, Vec<NodeId>) {
        (self.cluster, self.placement)
    }
}

/// Single-entry construction of a hierarchical testbed: sites contain
/// switches contain nodes contain ranks, with per-level default link
/// classes. This subsumes the flat [`ClusterBuilder`] +
/// [`Processor::with_slots`] + explicit-placement idiom: a one-site,
/// one-switch topology with one rank per node builds a [`Cluster`]
/// structurally identical to the equivalent `ClusterBuilder` output (no
/// declaration attached, same links, same placement) — flat stays flat.
///
/// ```
/// use hetsim::{Link, Protocol, TopologyBuilder};
///
/// let topo = TopologyBuilder::new()
///     .inter_site(Link::new(5e-3, 1e6, Protocol::Tcp))    // WAN
///     .intra_switch(Link::new(1e-4, 1e8, Protocol::Tcp))  // LAN
///     .site()
///     .node("a0", 100.0)
///     .node("a1", 50.0)
///     .site()
///     .node("b0", 80.0)
///     .build();
/// let c = topo.cluster();
/// assert_eq!(c.site_of(hetsim::NodeId(2)), 1);
/// assert_eq!(c.link(hetsim::NodeId(0), hetsim::NodeId(1)).latency, 1e-4);
/// assert_eq!(c.link(hetsim::NodeId(0), hetsim::NodeId(2)).latency, 5e-3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TopologyBuilder {
    nodes: Vec<Processor>,
    node_site: Vec<usize>,
    node_switch: Vec<usize>,
    node_ranks: Vec<usize>,
    /// Number of sites opened so far (`0` until the first `site()`/node).
    sites: usize,
    /// Number of switches opened so far, globally numbered.
    switches: usize,
    intra_switch: Option<Link>,
    inter_switch: Option<Link>,
    inter_site: Option<Link>,
    overrides: Vec<(usize, usize, Link)>,
    symmetric_overrides: bool,
    contention: ContentionModel,
    faults: FaultPlan,
    mem_bus: Option<Link>,
}

impl TopologyBuilder {
    /// An empty builder. The first node added before any explicit
    /// [`TopologyBuilder::site`] call opens site 0 / switch 0 implicitly.
    pub fn new() -> Self {
        TopologyBuilder {
            symmetric_overrides: true,
            ..Default::default()
        }
    }

    /// Opens a new site (and its first switch); subsequent nodes land here.
    pub fn site(mut self) -> Self {
        self.sites += 1;
        self.switches += 1;
        self
    }

    /// Opens a new switch within the current site.
    ///
    /// # Panics
    /// Panics if no site is open yet.
    pub fn switch(mut self) -> Self {
        assert!(self.sites > 0, "switch() needs an open site (call site() first)");
        self.switches += 1;
        self
    }

    /// Adds a processor to the current switch, hosting one rank.
    pub fn node(mut self, name: impl Into<String>, base_speed: f64) -> Self {
        self.push(Processor::new(name, base_speed));
        self
    }

    /// Adds an already-configured processor to the current switch.
    pub fn processor(mut self, p: Processor) -> Self {
        self.push(p);
        self
    }

    /// Sets how many ranks the most recently added node hosts (its slot
    /// count is raised to match) — the SMP / co-located-ranks idiom that
    /// used to need `Processor::with_slots` plus an explicit placement.
    ///
    /// # Panics
    /// Panics if no node has been added yet or `ranks == 0`.
    pub fn ranks(mut self, ranks: usize) -> Self {
        assert!(ranks >= 1, "a node hosts at least one rank");
        let last = self
            .node_ranks
            .last_mut()
            .expect("ranks() applies to the most recent node(); add one first");
        *last = ranks;
        let p = self.nodes.last_mut().expect("nodes and ranks move together");
        if p.slots < ranks {
            p.slots = ranks;
        }
        self
    }

    fn push(&mut self, p: Processor) {
        if self.sites == 0 {
            self.sites = 1;
            self.switches = 1;
        }
        self.nodes.push(p);
        self.node_site.push(self.sites - 1);
        self.node_switch.push(self.switches - 1);
        self.node_ranks.push(1);
    }

    /// Default link between nodes sharing a switch (the LAN class).
    pub fn intra_switch(mut self, link: Link) -> Self {
        self.intra_switch = Some(link);
        self
    }

    /// Default link between switches of the same site (the backbone class).
    /// Falls back to the intra-switch link when unset.
    pub fn inter_switch(mut self, link: Link) -> Self {
        self.inter_switch = Some(link);
        self
    }

    /// Default link between sites (the WAN class). Falls back to the
    /// inter-switch link, then the intra-switch link, when unset.
    pub fn inter_site(mut self, link: Link) -> Self {
        self.inter_site = Some(link);
        self
    }

    /// Overrides the link between a specific node pair (both directions
    /// unless [`TopologyBuilder::asymmetric`] was called), on top of the
    /// level defaults.
    pub fn link_between(mut self, a: usize, b: usize, link: Link) -> Self {
        self.overrides.push((a, b, link));
        self
    }

    /// Makes subsequent [`TopologyBuilder::link_between`] calls directional.
    pub fn asymmetric(mut self) -> Self {
        self.symmetric_overrides = false;
        self
    }

    /// Sets the contention model.
    pub fn contention(mut self, c: ContentionModel) -> Self {
        self.contention = c;
        self
    }

    /// Attaches a fault-injection plan.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.faults = plan;
        self
    }

    /// Models the innermost hierarchy level: transfers between distinct
    /// ranks co-located on one node travel this memory bus.
    pub fn mem_bus(mut self, link: Link) -> Self {
        self.mem_bus = Some(link);
        self
    }

    /// Finishes construction: resolves each pair's link class from the
    /// hierarchy (same switch → intra, same site → inter-switch, otherwise
    /// inter-site), applies overrides, and lays ranks out in node order.
    ///
    /// # Panics
    /// Panics if no nodes were added or an override references an unknown
    /// node.
    pub fn build(self) -> Topology {
        let n = self.nodes.len();
        assert!(n > 0, "a topology needs at least one processor");
        let intra = self
            .intra_switch
            .unwrap_or_else(|| Link::with_defaults(Protocol::Tcp));
        let backbone = self.inter_switch.unwrap_or_else(|| intra.clone());
        let wan = self.inter_site.unwrap_or_else(|| backbone.clone());
        let mut links = vec![vec![intra.clone(); n]; n];
        for (i, row) in links.iter_mut().enumerate() {
            for (j, slot) in row.iter_mut().enumerate() {
                if i == j {
                    *slot = Link::loopback();
                } else if self.node_site[i] != self.node_site[j] {
                    *slot = wan.clone();
                } else if self.node_switch[i] != self.node_switch[j] {
                    *slot = backbone.clone();
                }
            }
        }
        for (a, b, link) in self.overrides {
            assert!(a < n && b < n, "link override ({a},{b}) out of range 0..{n}");
            links[a][b] = link.clone();
            if self.symmetric_overrides {
                links[b][a] = link;
            }
        }
        let placement: Vec<NodeId> = self
            .node_ranks
            .iter()
            .enumerate()
            .flat_map(|(i, &r)| std::iter::repeat_n(NodeId(i), r))
            .collect();
        let mut cluster =
            Cluster::from_parts(self.nodes, links, self.contention).with_faults(self.faults);
        cluster.mem_bus = self.mem_bus;
        // A flat build must stay structurally identical to the equivalent
        // ClusterBuilder output, so the declaration is attached only when
        // it actually says something.
        if self.sites > 1 || self.switches > 1 {
            cluster.topology = Some(TopologyInfo::new(self.node_site, self.node_switch));
        }
        Topology { cluster, placement }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_lan_em3d_matches_section5() {
        let c = Cluster::paper_lan_em3d();
        assert_eq!(c.len(), 9);
        let speeds: Vec<f64> = c.nodes().iter().map(|n| n.base_speed).collect();
        assert_eq!(
            speeds,
            vec![46.0, 46.0, 46.0, 46.0, 46.0, 46.0, 176.0, 106.0, 9.0]
        );
        assert_eq!(c.contention(), ContentionModel::ParallelLinks);
        assert_eq!(c.fastest_node(), NodeId(6));
        assert_eq!(c.total_base_speed(), 46.0 * 6.0 + 176.0 + 106.0 + 9.0);
    }

    #[test]
    fn self_links_are_loopback() {
        let c = Cluster::paper_lan_em3d();
        for id in c.node_ids() {
            assert_eq!(c.link(id, id).protocol, Protocol::Loopback);
            assert!(c.transfer_time(id, id, 1_000_000).is_zero());
        }
    }

    #[test]
    fn cross_links_are_tcp_100mbit() {
        let c = Cluster::paper_lan_em3d();
        let l = c.link(NodeId(0), NodeId(1));
        assert_eq!(l.protocol, Protocol::Tcp);
        // ~11 MB/s: 11 MB should take about a second plus latency.
        let t = c.transfer_time(NodeId(0), NodeId(1), 11_000_000);
        assert!((t.as_secs() - 1.0).abs() < 0.01);
    }

    #[test]
    fn builder_overrides_are_symmetric_by_default() {
        let fast = Link::new(1e-6, 1e9, Protocol::Custom("myrinet".into()));
        let c = ClusterBuilder::new()
            .node("a", 10.0)
            .node("b", 20.0)
            .node("c", 30.0)
            .all_to_all(Link::with_defaults(Protocol::Tcp))
            .link_between(0, 1, fast.clone())
            .build();
        assert_eq!(c.link(NodeId(0), NodeId(1)), &fast);
        assert_eq!(c.link(NodeId(1), NodeId(0)), &fast);
        assert_eq!(c.link(NodeId(0), NodeId(2)).protocol, Protocol::Tcp);
    }

    #[test]
    fn builder_asymmetric_overrides_are_directional() {
        let fast = Link::new(1e-6, 1e9, Protocol::Custom("fiber".into()));
        let c = ClusterBuilder::new()
            .node("a", 10.0)
            .node("b", 20.0)
            .asymmetric()
            .link_between(0, 1, fast.clone())
            .build();
        assert_eq!(c.link(NodeId(0), NodeId(1)), &fast);
        assert_eq!(c.link(NodeId(1), NodeId(0)).protocol, Protocol::Tcp);
    }

    #[test]
    #[should_panic]
    fn builder_rejects_empty_cluster() {
        let _ = ClusterBuilder::new().build();
    }

    #[test]
    #[should_panic]
    fn builder_rejects_out_of_range_override() {
        let _ = ClusterBuilder::new()
            .node("a", 1.0)
            .link_between(0, 5, Link::default())
            .build();
    }

    #[test]
    fn random_cluster_is_deterministic_and_in_range() {
        for seed in 0..50u64 {
            let a = Cluster::random(seed, 32);
            let b = Cluster::random(seed, 32);
            assert_eq!(a.len(), b.len(), "seed {seed} node count differs");
            assert!((1..=32).contains(&a.len()));
            for (na, nb) in a.nodes().iter().zip(b.nodes()) {
                assert_eq!(na.base_speed, nb.base_speed, "seed {seed} speeds differ");
                assert!((5.0..500.0).contains(&na.base_speed));
            }
            assert_eq!(a.contention(), b.contention());
            for i in a.node_ids() {
                for j in a.node_ids() {
                    let (la, lb) = (a.link(i, j), b.link(i, j));
                    assert_eq!(la.latency, lb.latency, "seed {seed} link differs");
                    assert_eq!(la.bandwidth, lb.bandwidth);
                    if i != j {
                        assert!((1e-6..1e-2).contains(&la.latency));
                        assert!((1e6..1e9).contains(&la.bandwidth));
                    }
                }
            }
            assert!(a.faults().is_empty(), "generator must not attach faults");
        }
    }

    #[test]
    fn random_cluster_covers_all_contention_modes() {
        let mut seen = std::collections::HashSet::new();
        for seed in 0..60u64 {
            seen.insert(Cluster::random(seed, 8).contention());
        }
        assert_eq!(seen.len(), 3, "expected all three contention modes");
    }

    #[test]
    fn mem_bus_prices_same_node_rank_pairs() {
        let mem = Link::new(1e-7, 1e10, Protocol::Custom("membus".into()));
        let c = ClusterBuilder::new()
            .node("a", 10.0)
            .node("b", 20.0)
            .all_to_all(Link::with_defaults(Protocol::Tcp))
            .mem_bus(mem.clone())
            .build();
        // Two ranks on node 0, one on node 1.
        assert_eq!(c.rank_link(NodeId(0), NodeId(0)), &mem);
        assert_eq!(c.rank_link(NodeId(0), NodeId(1)).protocol, Protocol::Tcp);
        let t = c.pair_table(&[NodeId(0), NodeId(0), NodeId(1)]);
        assert_eq!(t.latency(0, 1), 1e-7);
        assert_eq!(t.bandwidth(0, 1), 1e10);
        assert_eq!(t.latency(0, 0), 0.0); // diagonal stays free
        assert!(t.latency(0, 2) > 1e-7); // cross-node stays on the network
        // Fault-honouring path: the bus is immune to network link faults.
        let at = c
            .rank_transfer_time_at(NodeId(0), NodeId(0), 1_000_000, SimTime::ZERO)
            .unwrap();
        assert!((at.as_secs() - (1e-7 + 1e-4)).abs() < 1e-12);
    }

    #[test]
    fn without_mem_bus_same_node_ranks_stay_free() {
        let c = Cluster::paper_lan_em3d();
        assert!(c.mem_bus().is_none());
        assert!(c
            .rank_transfer_time_at(NodeId(0), NodeId(0), 1_000_000, SimTime::ZERO)
            .unwrap()
            .is_zero());
        let t = c.pair_table(&[NodeId(0), NodeId(0)]);
        assert_eq!(t.latency(0, 1), 0.0);
        assert!(t.bandwidth(0, 1).is_infinite());
    }

    #[test]
    fn compute_time_uses_node_speed() {
        let c = Cluster::paper_lan_em3d();
        // Node 8 has speed 9: 18 units take 2 virtual seconds.
        let t = c.compute_time(NodeId(8), 18.0, SimTime::ZERO);
        assert!((t.as_secs() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn flat_topology_build_matches_cluster_builder_exactly() {
        let fast = Link::new(1e-6, 1e9, Protocol::Custom("myrinet".into()));
        let mem = Link::new(1e-7, 1e10, Protocol::SharedMemory);
        let flat = ClusterBuilder::new()
            .node("a", 10.0)
            .node("b", 20.0)
            .node("c", 30.0)
            .all_to_all(Link::with_defaults(Protocol::Tcp))
            .link_between(0, 2, fast.clone())
            .contention(ContentionModel::SerializedNic)
            .mem_bus(mem.clone())
            .build();
        let topo = TopologyBuilder::new()
            .node("a", 10.0)
            .node("b", 20.0)
            .node("c", 30.0)
            .intra_switch(Link::with_defaults(Protocol::Tcp))
            .link_between(0, 2, fast)
            .contention(ContentionModel::SerializedNic)
            .mem_bus(mem)
            .build();
        let c = topo.cluster();
        assert!(c.topology().is_none(), "flat build must not declare structure");
        assert_eq!(topo.placement(), &[NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(c.nodes(), flat.nodes());
        assert_eq!(c.contention(), flat.contention());
        assert_eq!(c.mem_bus(), flat.mem_bus());
        for i in c.node_ids() {
            for j in c.node_ids() {
                assert_eq!(c.link(i, j), flat.link(i, j), "link {i:?}->{j:?}");
            }
        }
    }

    #[test]
    fn hierarchical_build_routes_link_classes_by_level() {
        let topo = TopologyBuilder::new()
            .intra_switch(Link::new(1e-4, 1e8, Protocol::Tcp))
            .inter_switch(Link::new(5e-4, 5e7, Protocol::Tcp))
            .inter_site(Link::new(5e-3, 1e6, Protocol::Tcp))
            .site()
            .node("a0", 10.0)
            .node("a1", 10.0)
            .switch()
            .node("a2", 10.0)
            .site()
            .node("b0", 10.0)
            .build();
        let c = topo.cluster();
        let info = c.topology().expect("two sites declare structure");
        assert_eq!(info.sites(), 2);
        assert_eq!(info.switches(), 3);
        assert!(!info.is_flat());
        assert_eq!(c.site_of(NodeId(0)), 0);
        assert_eq!(c.site_of(NodeId(3)), 1);
        assert_eq!(c.switch_of(NodeId(2)), 1);
        // Same switch → intra; same site, other switch → backbone; cross-site → WAN.
        assert_eq!(c.link(NodeId(0), NodeId(1)).latency, 1e-4);
        assert_eq!(c.link(NodeId(0), NodeId(2)).latency, 5e-4);
        assert_eq!(c.link(NodeId(0), NodeId(3)).latency, 5e-3);
        assert_eq!(c.link(NodeId(3), NodeId(2)).latency, 5e-3);
    }

    #[test]
    fn ranks_expand_placement_and_slots() {
        let topo = TopologyBuilder::new()
            .node("smp", 100.0)
            .ranks(3)
            .node("uni", 50.0)
            .build();
        assert_eq!(topo.ranks(), 4);
        assert_eq!(
            topo.placement(),
            &[NodeId(0), NodeId(0), NodeId(0), NodeId(1)]
        );
        assert_eq!(topo.cluster().node(NodeId(0)).slots, 3);
        assert_eq!(topo.cluster().node(NodeId(1)).slots, 1);
    }

    #[test]
    fn flat_clusters_report_level_zero_everywhere() {
        let c = Cluster::paper_lan_em3d();
        assert!(c.topology().is_none());
        for id in c.node_ids() {
            assert_eq!(c.site_of(id), 0);
            assert_eq!(c.switch_of(id), 0);
        }
    }

    #[test]
    #[should_panic(expected = "switch 0")]
    fn topology_info_rejects_switch_spanning_sites() {
        let _ = TopologyInfo::new(vec![0, 1], vec![0, 0]);
    }
}
