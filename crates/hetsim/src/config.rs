//! A small plain-text cluster description format.
//!
//! The serde derives on [`crate::Cluster`] serve programmatic users; this
//! module gives humans (and the benchmark harnesses) a flat file format for
//! testbeds, so experiment configurations can live next to the code:
//!
//! ```text
//! # the paper's 9-workstation LAN
//! contention parallel
//! node ws00 46
//! node ws06 176 load-constant 0.25      # 25% stolen by other users
//! node smp0 100 slots 4
//! default-link tcp 150e-6 11e6
//! link ws00 ws06 myrinet 2e-6 1e9
//! ```
//!
//! Lines: `node <name> <speed> [slots <n>] [load-constant <frac>]`,
//! `default-link <protocol> <latency> <bandwidth>`,
//! `link <a> <b> <protocol> <latency> <bandwidth>` (symmetric),
//! `contention parallel|nic|bus`, `#` comments.

use crate::link::Link;
use crate::load::LoadModel;
use crate::node::Processor;
use crate::protocol::Protocol;
use crate::topology::{Cluster, ClusterBuilder, ContentionModel};
use std::fmt;

/// A parse failure, with the 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    /// 1-based line of the problem.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cluster config line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ConfigError {}

fn protocol_of(name: &str) -> Protocol {
    match name {
        "tcp" => Protocol::Tcp,
        "shm" => Protocol::SharedMemory,
        "loopback" => Protocol::Loopback,
        other => Protocol::Custom(other.to_string()),
    }
}

/// Parses a cluster from the text format.
///
/// # Errors
/// [`ConfigError`] with a line number on any malformed directive.
pub fn parse_cluster(src: &str) -> Result<Cluster, ConfigError> {
    let mut names: Vec<String> = Vec::new();
    let mut builder = ClusterBuilder::new();
    let mut pending_links: Vec<(String, String, Link, usize)> = Vec::new();

    let err = |line: usize, msg: String| ConfigError { line, message: msg };

    for (idx, raw) in src.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks[0] {
            "node" => {
                if toks.len() < 3 {
                    return Err(err(lineno, "node needs: node <name> <speed>".into()));
                }
                let name = toks[1].to_string();
                if names.contains(&name) {
                    return Err(err(lineno, format!("duplicate node `{name}`")));
                }
                let speed: f64 = toks[2]
                    .parse()
                    .map_err(|_| err(lineno, format!("bad speed `{}`", toks[2])))?;
                if speed <= 0.0 {
                    return Err(err(lineno, "speed must be positive".into()));
                }
                let mut proc = Processor::new(name.clone(), speed);
                let mut i = 3;
                while i < toks.len() {
                    match toks[i] {
                        "slots" => {
                            let n: usize = toks
                                .get(i + 1)
                                .and_then(|t| t.parse().ok())
                                .ok_or_else(|| err(lineno, "slots needs a count".into()))?;
                            proc = proc.with_slots(n);
                            i += 2;
                        }
                        "load-constant" => {
                            let f: f64 = toks
                                .get(i + 1)
                                .and_then(|t| t.parse().ok())
                                .ok_or_else(|| err(lineno, "load-constant needs a fraction".into()))?;
                            proc = proc.with_load(LoadModel::Constant { fraction: f });
                            i += 2;
                        }
                        other => {
                            return Err(err(lineno, format!("unknown node option `{other}`")))
                        }
                    }
                }
                names.push(name);
                builder = builder.processor(proc);
            }
            "default-link" => {
                if toks.len() != 4 {
                    return Err(err(
                        lineno,
                        "default-link needs: default-link <protocol> <latency> <bandwidth>".into(),
                    ));
                }
                let link = parse_link(&toks[1..4], lineno)?;
                builder = builder.all_to_all(link);
            }
            "link" => {
                if toks.len() != 6 {
                    return Err(err(
                        lineno,
                        "link needs: link <a> <b> <protocol> <latency> <bandwidth>".into(),
                    ));
                }
                let link = parse_link(&toks[3..6], lineno)?;
                pending_links.push((toks[1].to_string(), toks[2].to_string(), link, lineno));
            }
            "contention" => {
                let model = match toks.get(1).copied() {
                    Some("parallel") => ContentionModel::ParallelLinks,
                    Some("nic") => ContentionModel::SerializedNic,
                    Some("bus") => ContentionModel::SharedBus,
                    other => {
                        return Err(err(
                            lineno,
                            format!("unknown contention `{}` (parallel|nic|bus)", other.unwrap_or("")),
                        ))
                    }
                };
                builder = builder.contention(model);
            }
            other => return Err(err(lineno, format!("unknown directive `{other}`"))),
        }
    }

    if names.is_empty() {
        return Err(err(0, "config defines no nodes".into()));
    }
    for (a, b, link, lineno) in pending_links {
        let ia = names
            .iter()
            .position(|n| *n == a)
            .ok_or_else(|| err(lineno, format!("unknown node `{a}` in link")))?;
        let ib = names
            .iter()
            .position(|n| *n == b)
            .ok_or_else(|| err(lineno, format!("unknown node `{b}` in link")))?;
        builder = builder.link_between(ia, ib, link);
    }
    Ok(builder.build())
}

fn parse_link(toks: &[&str], lineno: usize) -> Result<Link, ConfigError> {
    let proto = protocol_of(toks[0]);
    let latency: f64 = toks[1].parse().map_err(|_| ConfigError {
        line: lineno,
        message: format!("bad latency `{}`", toks[1]),
    })?;
    let bandwidth: f64 = toks[2].parse().map_err(|_| ConfigError {
        line: lineno,
        message: format!("bad bandwidth `{}`", toks[2]),
    })?;
    if latency < 0.0 || bandwidth <= 0.0 {
        return Err(ConfigError {
            line: lineno,
            message: "latency must be >= 0, bandwidth > 0".into(),
        });
    }
    Ok(Link::new(latency, bandwidth, proto))
}

/// Renders a cluster back into the text format. Lossy in two documented
/// ways: exotic load models (anything but `None`/`Constant`) are dropped,
/// and asymmetric link matrices are symmetrised — only the `a -> b`
/// direction of each pair is emitted, since the text format's `link`
/// directive is symmetric.
pub fn render_cluster(cluster: &Cluster) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let contention = match cluster.contention() {
        ContentionModel::ParallelLinks => "parallel",
        ContentionModel::SerializedNic => "nic",
        ContentionModel::SharedBus => "bus",
    };
    let _ = writeln!(out, "contention {contention}");
    for node in cluster.nodes() {
        let _ = write!(out, "node {} {}", node.name, node.base_speed);
        if node.slots != 1 {
            let _ = write!(out, " slots {}", node.slots);
        }
        if let LoadModel::Constant { fraction } = node.load {
            let _ = write!(out, " load-constant {fraction}");
        }
        let _ = writeln!(out);
    }
    // Emit the most common off-diagonal link as the default, overrides for
    // the rest.
    if cluster.len() >= 2 {
        let default = cluster.link(crate::NodeId(0), crate::NodeId(1)).clone();
        let _ = writeln!(
            out,
            "default-link {} {} {}",
            default.protocol, default.latency, default.bandwidth
        );
        for i in 0..cluster.len() {
            for j in (i + 1)..cluster.len() {
                let l = cluster.link(crate::NodeId(i), crate::NodeId(j));
                if *l != default {
                    let _ = writeln!(
                        out,
                        "link {} {} {} {} {}",
                        cluster.nodes()[i].name,
                        cluster.nodes()[j].name,
                        l.protocol,
                        l.latency,
                        l.bandwidth
                    );
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NodeId;

    const SAMPLE: &str = r"
        # the paper's LAN, abridged
        contention parallel
        node ws00 46
        node ws06 176
        node ws08 9 load-constant 0.5
        node smp0 100 slots 4
        default-link tcp 150e-6 11e6
        link ws00 ws06 myrinet 2e-6 1e9
    ";

    #[test]
    fn parses_sample() {
        let c = parse_cluster(SAMPLE).unwrap();
        assert_eq!(c.len(), 4);
        assert_eq!(c.nodes()[0].name, "ws00");
        assert_eq!(c.nodes()[1].base_speed, 176.0);
        assert_eq!(c.nodes()[3].slots, 4);
        // The loaded node delivers half speed.
        assert_eq!(c.speed_at(NodeId(2), crate::SimTime::ZERO), 4.5);
        // Link override is symmetric and custom-protocol.
        let l = c.link(NodeId(0), NodeId(1));
        assert_eq!(l.protocol, Protocol::Custom("myrinet".into()));
        assert_eq!(c.link(NodeId(1), NodeId(0)).bandwidth, 1e9);
        // Default link elsewhere.
        assert_eq!(c.link(NodeId(0), NodeId(2)).protocol, Protocol::Tcp);
        assert_eq!(c.contention(), ContentionModel::ParallelLinks);
    }

    #[test]
    fn roundtrip_through_render() {
        let c1 = parse_cluster(SAMPLE).unwrap();
        let text = render_cluster(&c1);
        let c2 = parse_cluster(&text).unwrap();
        assert_eq!(c1.len(), c2.len());
        for i in 0..c1.len() {
            assert_eq!(c1.nodes()[i].name, c2.nodes()[i].name);
            assert_eq!(c1.nodes()[i].base_speed, c2.nodes()[i].base_speed);
            for j in 0..c1.len() {
                assert_eq!(c1.link(NodeId(i), NodeId(j)), c2.link(NodeId(i), NodeId(j)));
            }
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = parse_cluster("node a 46\nnode b nope\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("nope"));
    }

    #[test]
    fn duplicate_node_rejected() {
        let err = parse_cluster("node a 1\nnode a 2\n").unwrap_err();
        assert!(err.message.contains("duplicate"));
    }

    #[test]
    fn unknown_directive_rejected() {
        assert!(parse_cluster("frobnicate\n").is_err());
    }

    #[test]
    fn link_with_unknown_node_rejected() {
        let err = parse_cluster("node a 1\nlink a b tcp 1e-3 1e6\n").unwrap_err();
        assert!(err.message.contains("unknown node `b`"));
    }

    #[test]
    fn empty_config_rejected() {
        assert!(parse_cluster("# nothing\n").is_err());
    }

    #[test]
    fn contention_variants() {
        for (word, want) in [
            ("parallel", ContentionModel::ParallelLinks),
            ("nic", ContentionModel::SerializedNic),
            ("bus", ContentionModel::SharedBus),
        ] {
            let c = parse_cluster(&format!("contention {word}\nnode a 1\n")).unwrap();
            assert_eq!(c.contention(), want);
        }
    }
}
