//! Communication protocols.
//!
//! The paper's first HNOC challenge is that "the common communication network
//! can use multiple network protocols for communication between different
//! pairs of processors" — e.g. shared memory between processes on the same
//! SMP node, TCP/IP across the LAN, or a faster proprietary interconnect
//! between a subset of machines. A [`Protocol`] tags a [`crate::Link`] and
//! supplies default performance characteristics; HMPI's model of the
//! executing network then sees different costs for different pairs, which is
//! all the selection algorithm needs.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The protocol a link uses, with typical early-2000s characteristics used
/// as defaults by [`Protocol::default_latency`] / [`Protocol::default_bandwidth`].
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protocol {
    /// Intra-process / loopback communication (a rank talking to itself).
    Loopback,
    /// Shared memory between processes on the same computer.
    SharedMemory,
    /// TCP/IP over the LAN — the paper's 100 Mbit switched Ethernet.
    Tcp,
    /// A user-defined protocol with a name (e.g. `"myrinet"`).
    Custom(String),
}

impl Protocol {
    /// Typical one-way latency in seconds.
    pub fn default_latency(&self) -> f64 {
        match self {
            Protocol::Loopback => 0.0,
            Protocol::SharedMemory => 2e-6,
            Protocol::Tcp => 150e-6,
            Protocol::Custom(_) => 50e-6,
        }
    }

    /// Typical sustained bandwidth in bytes per second.
    pub fn default_bandwidth(&self) -> f64 {
        match self {
            Protocol::Loopback => f64::INFINITY,
            Protocol::SharedMemory => 400e6,
            // 100 Mbit Ethernet delivers ~11 MB/s of payload in practice.
            Protocol::Tcp => 11e6,
            Protocol::Custom(_) => 100e6,
        }
    }
}

impl fmt::Display for Protocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Protocol::Loopback => write!(f, "loopback"),
            Protocol::SharedMemory => write!(f, "shm"),
            Protocol::Tcp => write!(f, "tcp"),
            Protocol::Custom(name) => write!(f, "{name}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_is_free() {
        assert_eq!(Protocol::Loopback.default_latency(), 0.0);
        assert!(Protocol::Loopback.default_bandwidth().is_infinite());
    }

    #[test]
    fn shm_beats_tcp() {
        assert!(Protocol::SharedMemory.default_latency() < Protocol::Tcp.default_latency());
        assert!(Protocol::SharedMemory.default_bandwidth() > Protocol::Tcp.default_bandwidth());
    }

    #[test]
    fn display_names() {
        assert_eq!(Protocol::Tcp.to_string(), "tcp");
        assert_eq!(Protocol::SharedMemory.to_string(), "shm");
        assert_eq!(Protocol::Custom("myrinet".into()).to_string(), "myrinet");
    }

    #[test]
    fn custom_protocol_round_trips_through_serde() {
        let p = Protocol::Custom("myrinet".into());
        let json = serde_json_like(&p);
        assert!(json.contains("myrinet"));
    }

    // serde_json is not an approved dependency; a Debug round-trip stands in
    // for a serialisation smoke test.
    fn serde_json_like(p: &Protocol) -> String {
        format!("{p:?}")
    }
}
