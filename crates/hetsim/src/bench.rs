//! `HMPI_Recon`-style speed measurement.
//!
//! The HMPI runtime never plans with the *true* speeds (on real hardware it
//! could not know them); it plans with **estimates** obtained by running a
//! benchmark code on every processor and timing it — that is what
//! `HMPI_Recon` does. [`SpeedEstimates`] stores the estimates and
//! [`ReconRunner`] refreshes them against the simulated cluster: running a
//! benchmark of `v` units on node `i` at virtual time `t` takes
//! `v / true_speed_i(t)` seconds, so the derived estimate is exactly the
//! speed delivered at `t`. If the external load later changes, the estimate
//! goes stale until the next recon — reproducing the dynamics the paper's
//! `HMPI_Recon` is designed for.

use crate::clock::SimTime;
use crate::node::NodeId;
use crate::topology::Cluster;
use parking_lot::RwLock;
use std::sync::Arc;

/// Shared, refreshable estimates of processor speeds (benchmark units per
/// second), as observed by the most recent recon.
#[derive(Debug, Clone)]
pub struct SpeedEstimates {
    inner: Arc<RwLock<Inner>>,
}

#[derive(Debug)]
struct Inner {
    speeds: Vec<f64>,
    /// `false` for nodes the failure detector has declared dead. Speeds of
    /// unavailable nodes are retained (last known value) but must not be
    /// planned with — see [`SpeedEstimates::available_nodes`].
    available: Vec<bool>,
    measured_at: SimTime,
    generation: u64,
}

impl SpeedEstimates {
    /// Estimates initialised from the cluster's *base* speeds (what a
    /// freshly started runtime would assume before any recon).
    pub fn from_base_speeds(cluster: &Cluster) -> Self {
        let speeds: Vec<f64> = cluster.nodes().iter().map(|n| n.base_speed).collect();
        let available = vec![true; speeds.len()];
        SpeedEstimates {
            inner: Arc::new(RwLock::new(Inner {
                speeds,
                available,
                measured_at: SimTime::ZERO,
                generation: 0,
            })),
        }
    }

    /// Estimates with explicit per-node speeds.
    ///
    /// # Panics
    /// Panics if any speed is not positive and finite.
    pub fn from_speeds(speeds: Vec<f64>) -> Self {
        assert!(
            speeds.iter().all(|&s| valid_speed(s)),
            "estimated speeds must be positive and finite"
        );
        let available = vec![true; speeds.len()];
        SpeedEstimates {
            inner: Arc::new(RwLock::new(Inner {
                speeds,
                available,
                measured_at: SimTime::ZERO,
                generation: 0,
            })),
        }
    }

    /// The estimated speed of a node.
    pub fn speed(&self, id: NodeId) -> f64 {
        self.inner.read().speeds[id.0]
    }

    /// A snapshot of all estimated speeds, in node order.
    pub fn snapshot(&self) -> Vec<f64> {
        self.inner.read().speeds.clone()
    }

    /// Number of nodes covered.
    pub fn len(&self) -> usize {
        self.inner.read().speeds.len()
    }

    /// True if no nodes are covered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Virtual time of the most recent refresh.
    pub fn measured_at(&self) -> SimTime {
        self.inner.read().measured_at
    }

    /// Monotonically increasing refresh counter (0 before any recon).
    pub fn generation(&self) -> u64 {
        self.inner.read().generation
    }

    /// True if the failure detector still considers `id` alive. New
    /// estimates start with every node available.
    pub fn is_available(&self, id: NodeId) -> bool {
        self.inner.read().available[id.0]
    }

    /// Marks `id` dead. Permanent for the lifetime of these estimates: a
    /// fail-stopped node never comes back (rejoin would be a new runtime).
    pub fn mark_unavailable(&self, id: NodeId) {
        let mut g = self.inner.write();
        g.available[id.0] = false;
        g.generation += 1;
    }

    /// Ids of all nodes still considered alive, in node order.
    pub fn available_nodes(&self) -> Vec<NodeId> {
        self.inner
            .read()
            .available
            .iter()
            .enumerate()
            .filter_map(|(i, &ok)| ok.then_some(NodeId(i)))
            .collect()
    }

    /// Number of nodes still considered alive.
    pub fn available_len(&self) -> usize {
        self.inner.read().available.iter().filter(|&&ok| ok).count()
    }

    /// Replaces all estimates at once (a completed recon).
    ///
    /// # Panics
    /// Panics if the length differs from the current estimate vector or any
    /// speed is not positive and finite. A zero-elapsed benchmark derives
    /// `units / 0 = +inf`; letting that through would poison every
    /// subsequent selection, so non-finite speeds are rejected here as the
    /// last line of defence (callers validate first and keep the previous
    /// estimate instead).
    pub fn refresh(&self, speeds: Vec<f64>, measured_at: SimTime) {
        let mut g = self.inner.write();
        assert_eq!(
            speeds.len(),
            g.speeds.len(),
            "refresh must cover every node"
        );
        assert!(
            speeds.iter().all(|&s| valid_speed(s)),
            "estimated speeds must be positive and finite"
        );
        g.speeds = speeds;
        g.measured_at = measured_at;
        g.generation += 1;
    }

    /// Like [`SpeedEstimates::refresh`] but only overwrites the speeds of
    /// nodes still marked available, leaving dead nodes at their last known
    /// value. `speeds[i]` is ignored for unavailable node `i`, so callers
    /// may pass any positive placeholder there.
    ///
    /// # Panics
    /// Panics if the length differs from the current estimate vector or any
    /// speed for an *available* node is not positive and finite (see
    /// [`SpeedEstimates::refresh`] on why infinities are rejected).
    pub fn refresh_available(&self, speeds: Vec<f64>, measured_at: SimTime) {
        let mut g = self.inner.write();
        assert_eq!(
            speeds.len(),
            g.speeds.len(),
            "refresh must cover every node"
        );
        for (i, &s) in speeds.iter().enumerate() {
            if g.available[i] {
                assert!(
                    valid_speed(s),
                    "estimated speed for live node {i} must be positive and finite"
                );
                g.speeds[i] = s;
            }
        }
        g.measured_at = measured_at;
        g.generation += 1;
    }
}

/// True for speeds that may safely enter the estimate table: positive and
/// finite. `+inf` (from a zero-elapsed benchmark) and NaN both pass a bare
/// `s > 0.0` check in the infinite case, so the guard is explicit.
#[inline]
fn valid_speed(s: f64) -> bool {
    s.is_finite() && s > 0.0
}

/// Runs recon benchmarks against a simulated cluster.
#[derive(Debug, Clone)]
pub struct ReconRunner {
    cluster: Arc<Cluster>,
}

/// The result of benchmarking one node.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReconSample {
    /// The node measured.
    pub node: NodeId,
    /// Virtual time the benchmark took on that node.
    pub elapsed: SimTime,
    /// Derived speed estimate: `units / elapsed`.
    pub speed: f64,
}

impl ReconRunner {
    /// A runner measuring the given cluster.
    pub fn new(cluster: Arc<Cluster>) -> Self {
        ReconRunner { cluster }
    }

    /// Benchmarks a single node: executes `units` benchmark units starting at
    /// virtual time `now` and derives the speed estimate.
    pub fn measure_node(&self, node: NodeId, units: f64, now: SimTime) -> ReconSample {
        assert!(units > 0.0, "benchmark volume must be positive");
        let elapsed = self.cluster.compute_time(node, units, now);
        ReconSample {
            node,
            elapsed,
            speed: units / elapsed.as_secs(),
        }
    }

    /// Benchmarks every node "in parallel" (all start at `now`, as
    /// `HMPI_Recon` runs the benchmark function on all processors at once)
    /// and refreshes the estimates. Returns the per-node samples.
    pub fn recon_all(
        &self,
        estimates: &SpeedEstimates,
        units: f64,
        now: SimTime,
    ) -> Vec<ReconSample> {
        let samples: Vec<ReconSample> = (0..self.cluster.len())
            .map(|i| self.measure_node(NodeId(i), units, now))
            .collect();
        estimates.refresh(samples.iter().map(|s| s.speed).collect(), now);
        samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::LoadModel;
    use crate::node::Processor;
    use crate::topology::ClusterBuilder;

    fn loaded_cluster() -> Arc<Cluster> {
        Arc::new(
            ClusterBuilder::new()
                .node("steady", 100.0)
                .processor(Processor::new("busy", 100.0).with_load(LoadModel::Step {
                    start: SimTime::from_secs(10.0),
                    end: SimTime::from_secs(20.0),
                    fraction: 0.5,
                }))
                .build(),
        )
    }

    #[test]
    fn estimates_start_at_base_speeds() {
        let c = Cluster::paper_lan_em3d();
        let e = SpeedEstimates::from_base_speeds(&c);
        assert_eq!(e.snapshot(), c.nodes().iter().map(|n| n.base_speed).collect::<Vec<_>>());
        assert_eq!(e.generation(), 0);
    }

    #[test]
    fn measure_node_matches_true_speed_when_idle() {
        let c = loaded_cluster();
        let r = ReconRunner::new(c);
        let s = r.measure_node(NodeId(0), 50.0, SimTime::ZERO);
        assert!((s.speed - 100.0).abs() < 1e-9);
        assert!((s.elapsed.as_secs() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn recon_sees_load_when_it_is_active() {
        let c = loaded_cluster();
        let r = ReconRunner::new(c.clone());
        let e = SpeedEstimates::from_base_speeds(&c);

        // Before the external job: both nodes look like 100.
        r.recon_all(&e, 10.0, SimTime::ZERO);
        assert_eq!(e.snapshot(), vec![100.0, 100.0]);
        assert_eq!(e.generation(), 1);

        // During the external job: the busy node looks like 50.
        r.recon_all(&e, 10.0, SimTime::from_secs(15.0));
        let snap = e.snapshot();
        assert!((snap[0] - 100.0).abs() < 1e-9);
        assert!((snap[1] - 50.0).abs() < 1e-9);
        assert_eq!(e.generation(), 2);
        assert_eq!(e.measured_at(), SimTime::from_secs(15.0));
    }

    #[test]
    fn stale_estimates_do_not_track_load() {
        let c = loaded_cluster();
        let r = ReconRunner::new(c.clone());
        let e = SpeedEstimates::from_base_speeds(&c);
        r.recon_all(&e, 10.0, SimTime::ZERO);
        // The load turns on at t=10, but without a new recon the estimate
        // still claims 100 — exactly the staleness HMPI_Recon fights.
        assert_eq!(e.speed(NodeId(1)), 100.0);
        assert_eq!(c.speed_at(NodeId(1), SimTime::from_secs(15.0)), 50.0);
    }

    #[test]
    #[should_panic]
    fn refresh_with_wrong_length_panics() {
        let c = Cluster::paper_lan_em3d();
        let e = SpeedEstimates::from_base_speeds(&c);
        e.refresh(vec![1.0], SimTime::ZERO);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn refresh_rejects_infinite_speed() {
        // `nominal_units / 0.0 = +inf` passes a bare `> 0.0` check; the
        // estimate table must reject it outright.
        let c = Cluster::paper_lan_em3d();
        let e = SpeedEstimates::from_base_speeds(&c);
        let mut speeds = e.snapshot();
        speeds[3] = f64::INFINITY;
        e.refresh(speeds, SimTime::from_secs(1.0));
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn refresh_available_rejects_poisoned_estimate() {
        let c = Cluster::paper_lan_em3d();
        let e = SpeedEstimates::from_base_speeds(&c);
        let mut speeds = e.snapshot();
        speeds[2] = f64::INFINITY;
        e.refresh_available(speeds, SimTime::from_secs(1.0));
    }

    #[test]
    fn refresh_available_ignores_placeholder_for_dead_nodes() {
        let c = Cluster::paper_lan_em3d();
        let e = SpeedEstimates::from_base_speeds(&c);
        let before = e.speed(NodeId(4));
        e.mark_unavailable(NodeId(4));
        let mut speeds = e.snapshot();
        speeds[4] = 1.0; // placeholder, must be ignored
        e.refresh_available(speeds, SimTime::from_secs(1.0));
        assert_eq!(e.speed(NodeId(4)), before);
    }

    #[test]
    fn estimates_are_shared_between_clones() {
        let c = Cluster::paper_lan_em3d();
        let e = SpeedEstimates::from_base_speeds(&c);
        let e2 = e.clone();
        e.refresh(vec![1.0; 9], SimTime::from_secs(1.0));
        assert_eq!(e2.speed(NodeId(0)), 1.0);
        assert_eq!(e2.generation(), 1);
    }
}
