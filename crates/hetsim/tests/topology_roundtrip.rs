//! Flat clusters must round-trip through the topology API *losslessly*:
//! a one-level [`TopologyBuilder`] declaration (no `.site()` / `.switch()`
//! calls) built from the same processors, default link, overrides and
//! memory bus as a classic [`ClusterBuilder`] must price every rank pair
//! bit-identically under every contention model, attach no topology
//! declaration, and lay ranks out in node order. This is the guarantee
//! that lets callers migrate to the consolidated builder without any
//! virtual time moving.

use hetsim::{
    Cluster, ClusterBuilder, ContentionModel, Link, NodeId, Protocol, SimTime, TopologyBuilder,
};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Spec {
    speeds: Vec<f64>,
    base: (f64, f64),
    overrides: Vec<(usize, usize, f64, f64)>,
    mem: Option<(f64, f64)>,
}

fn spec_strategy() -> impl Strategy<Value = Spec> {
    (
        2usize..8,
        proptest::collection::vec(5.0f64..500.0, 8),
        (1e-6f64..1e-3, 1e6f64..1e9),
        proptest::collection::vec((0usize..8, 1usize..8, 1e-6f64..1e-2, 1e5f64..1e9), 0..4),
        (0u32..2, 1e-7f64..1e-5, 1e8f64..1e10),
    )
        .prop_map(|(n, mut speeds, base, raw_overrides, (has_mem, mlat, mbw))| {
            speeds.truncate(n);
            let overrides = raw_overrides
                .into_iter()
                .map(|(a, step, lat, bw)| {
                    let a = a % n;
                    ((a, (a + step) % n), lat, bw)
                })
                .filter(|&((a, b), _, _)| a != b)
                .map(|((a, b), lat, bw)| (a, b, lat, bw))
                .collect();
            Spec {
                speeds,
                base,
                overrides,
                mem: (has_mem == 1).then_some((mlat, mbw)),
            }
        })
}

fn flat_cluster(spec: &Spec, cont: ContentionModel) -> Cluster {
    let mut b = ClusterBuilder::new();
    for (i, &s) in spec.speeds.iter().enumerate() {
        b = b.node(format!("n{i}"), s);
    }
    b = b.all_to_all(Link::new(spec.base.0, spec.base.1, Protocol::Tcp));
    for &(x, y, lat, bw) in &spec.overrides {
        b = b.link_between(x, y, Link::new(lat, bw, Protocol::Tcp));
    }
    if let Some((lat, bw)) = spec.mem {
        b = b.mem_bus(Link::new(lat, bw, Protocol::SharedMemory));
    }
    b.contention(cont).build()
}

fn topo_cluster(spec: &Spec, cont: ContentionModel) -> (Cluster, Vec<NodeId>) {
    let mut b = TopologyBuilder::new();
    for (i, &s) in spec.speeds.iter().enumerate() {
        b = b.node(format!("n{i}"), s);
    }
    b = b.intra_switch(Link::new(spec.base.0, spec.base.1, Protocol::Tcp));
    for &(x, y, lat, bw) in &spec.overrides {
        b = b.link_between(x, y, Link::new(lat, bw, Protocol::Tcp));
    }
    if let Some((lat, bw)) = spec.mem {
        b = b.mem_bus(Link::new(lat, bw, Protocol::SharedMemory));
    }
    b.contention(cont).build().into_parts()
}

const ALL_CONTENTION: [ContentionModel; 3] = [
    ContentionModel::ParallelLinks,
    ContentionModel::SerializedNic,
    ContentionModel::SharedBus,
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn one_level_topology_prices_every_pair_bit_identically(spec in spec_strategy()) {
        for cont in ALL_CONTENTION {
            let flat = flat_cluster(&spec, cont);
            let (topo, placement) = topo_cluster(&spec, cont);

            // A one-level declaration is structurally flat: no topology
            // attaches, ranks lie in node order.
            prop_assert!(topo.topology().is_none(), "one-level topology attached a declaration");
            let ids: Vec<NodeId> = (0..spec.speeds.len()).map(NodeId).collect();
            prop_assert_eq!(&placement, &ids);
            prop_assert_eq!(flat.len(), topo.len());
            prop_assert_eq!(flat.contention(), topo.contention());

            // Every ordered pair (including the same-node memory-bus pair)
            // prices bit-identically at every probed size.
            for &from in &ids {
                for &to in &ids {
                    if from == to && spec.mem.is_none() {
                        continue;
                    }
                    for bytes in [1usize, 4096, 1 << 20] {
                        let a = flat.rank_transfer_time_at(from, to, bytes, SimTime::ZERO);
                        let b = topo.rank_transfer_time_at(from, to, bytes, SimTime::ZERO);
                        let (a, b) = (a.map(|t| t.as_secs().to_bits()), b.map(|t| t.as_secs().to_bits()));
                        prop_assert_eq!(
                            a, b,
                            "pair {:?}->{:?} at {} bytes diverged under {:?}",
                            from, to, bytes, cont
                        );
                    }
                }
            }
        }
    }
}
