//! Offline compatibility shim for the `parking_lot` API surface this
//! workspace uses: [`Mutex`], [`RwLock`] and [`Condvar`], implemented over
//! `std::sync`. Lock poisoning is ignored (parking_lot semantics): a
//! panicked holder does not poison the lock for everyone else.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};
use std::time::Duration;

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// RAII guard for [`Mutex`]. Holds an `Option` so [`Condvar::wait_for`] can
/// temporarily take the inner std guard.
pub struct MutexGuard<'a, T: ?Sized>(Option<sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(
            self.0.lock().unwrap_or_else(PoisonError::into_inner),
        ))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard holds the lock")
    }
}

/// Result of a timed condition-variable wait.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitTimeoutResult(bool);

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.0
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Default)]
pub struct Condvar(sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(sync::Condvar::new())
    }

    /// Blocks until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard holds the lock");
        let inner = self.0.wait(inner).unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.0.take().expect("guard holds the lock");
        let (inner, res) = self
            .0
            .wait_timeout(inner, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.0 = Some(inner);
        WaitTimeoutResult(res.timed_out())
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock whose `read()`/`write()` return guards directly.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared-access guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(sync::RwLockReadGuard<'a, T>);
/// Exclusive-access guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(sync::RwLockWriteGuard<'a, T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("RwLock").field(&&*self.read()).finish()
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guards_data() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }

    #[test]
    fn condvar_notify_wakes_waiter() {
        let m = Arc::new(Mutex::new(false));
        let cv = Arc::new(Condvar::new());
        let (m2, cv2) = (m.clone(), cv.clone());
        let h = std::thread::spawn(move || {
            let mut g = m2.lock();
            while !*g {
                let r = cv2.wait_for(&mut g, Duration::from_secs(5));
                assert!(!r.timed_out(), "should be woken, not time out");
            }
        });
        std::thread::sleep(Duration::from_millis(20));
        *m.lock() = true;
        cv.notify_all();
        h.join().unwrap();
    }

    #[test]
    fn rwlock_many_readers_one_writer() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(r1.len() + r2.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn poisoned_lock_is_recovered() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        // parking_lot semantics: no poisoning.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
