//! Offline compatibility shim for the `rand` API surface this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and
//! `Rng::random_range` over integer and float ranges. The generator is
//! xoshiro256++ seeded via SplitMix64 — deterministic, fast, and good
//! enough for simulation workloads (not cryptographic).

use std::ops::Range;

/// Core RNG interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs constructible from a seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a [`Range`].
pub trait SampleRange: Sized {
    /// Draws a uniform sample in `range` from `rng`.
    fn sample<R: RngCore + ?Sized>(range: Range<Self>, rng: &mut R) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleRange for $t {
            fn sample<R: RngCore + ?Sized>(range: Range<Self>, rng: &mut R) -> Self {
                assert!(range.start < range.end, "cannot sample empty range");
                let span = (range.end as i128 - range.start as i128) as u128;
                // Modulo bias is negligible for the small spans used here.
                let off = (rng.next_u64() as u128) % span;
                (range.start as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_int!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleRange for f64 {
    fn sample<R: RngCore + ?Sized>(range: Range<Self>, rng: &mut R) -> Self {
        assert!(range.start < range.end, "cannot sample empty range");
        // 53 uniformly random mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        range.start + unit * (range.end - range.start)
    }
}

impl SampleRange for f32 {
    fn sample<R: RngCore + ?Sized>(range: Range<Self>, rng: &mut R) -> Self {
        f64::sample(range.start as f64..range.end as f64, rng) as f32
    }
}

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform sample from `range`.
    fn random_range<T: SampleRange>(&mut self, range: Range<T>) -> T {
        T::sample(range, self)
    }

    /// Draws a uniform `f64` in `[0, 1)` (or a uniform value of any type
    /// reachable through [`SampleRange`] via `random_range`).
    fn random(&mut self) -> f64 {
        f64::sample(0.0..1.0, self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Commonly used RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic RNG: xoshiro256++ seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna).
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn int_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.random_range(-5i64..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn float_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for _ in 0..1000 {
            let v = rng.random_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        // The samples should actually spread across the range.
        assert!(lo < -0.5 && hi > 0.5);
    }
}
