//! Offline compatibility shim for the `serde` API surface this workspace
//! uses. The workspace derives `Serialize`/`Deserialize` as forward-looking
//! markers but never serialises through serde (its config formats are
//! hand-rolled), so the traits here are empty markers and the derives
//! (re-exported from the in-tree `serde_derive`) emit marker impls.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
