//! Offline compatibility shim for the `criterion` API surface this
//! workspace uses: `Criterion::benchmark_group`, `bench_function`,
//! `sample_size`, `finish`, and the `criterion_group!`/`criterion_main!`
//! macros. Each benchmark runs a short warm-up followed by timed samples
//! and prints mean wall-clock time per iteration — a smoke-test harness,
//! not a statistics engine.

use std::time::{Duration, Instant};

/// Benchmark driver. Construct via `Default` (the `criterion_main!`
/// expansion does this for you).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }
}

/// A named collection of benchmarks sharing a sample-size setting.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its mean time per iteration.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
        };
        // Warm-up pass (untimed from the harness's perspective).
        f(&mut bencher);
        bencher.samples.clear();
        for _ in 0..self.sample_size {
            f(&mut bencher);
        }
        let mean = if bencher.samples.is_empty() {
            Duration::ZERO
        } else {
            bencher.samples.iter().sum::<Duration>() / bencher.samples.len() as u32
        };
        println!(
            "{}/{:<32} time: [{:>12.3?} per iter, {} samples]",
            self.name,
            id,
            mean,
            bencher.samples.len()
        );
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; [`Bencher::iter`] times the routine.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one sample of `routine` (several iterations, averaged).
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        const ITERS: u32 = 3;
        let start = Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(routine());
        }
        self.samples.push(start.elapsed() / ITERS);
    }
}

/// Re-export for code that imports `criterion::black_box`.
pub use std::hint::black_box;

/// Bundles benchmark functions into a runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running each group produced by [`criterion_group!`].
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_records() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("compat");
        g.sample_size(2);
        let mut runs = 0u32;
        g.bench_function("counts", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        g.finish();
        // 1 warm-up sample + 2 timed samples, 3 iterations each.
        assert_eq!(runs, 9);
    }
}
