//! Offline compatibility shim for `serde_derive`. The workspace only uses
//! `#[derive(Serialize, Deserialize)]` as a marker — nothing in the tree
//! actually serialises through serde — so both derives expand to a bare
//! marker-trait impl.

use proc_macro::{TokenStream, TokenTree};

/// Extracts the type name following `struct`/`enum`/`union`. Returns `None`
/// for generic types (none exist in this workspace), in which case the
/// derive expands to nothing.
fn type_name(input: TokenStream) -> Option<String> {
    let mut iter = input.into_iter().peekable();
    while let Some(tt) = iter.next() {
        if let TokenTree::Ident(id) = &tt {
            let s = id.to_string();
            if s == "struct" || s == "enum" || s == "union" {
                break;
            }
        }
    }
    let name = match iter.next()? {
        TokenTree::Ident(id) => id.to_string(),
        _ => return None,
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            return None; // generic type: skip the marker impl
        }
    }
    Some(name)
}

fn marker_impl(trait_path: &str, input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some(name) => format!("impl {trait_path} for {name} {{}}")
            .parse()
            .unwrap_or_else(|_| TokenStream::new()),
        None => TokenStream::new(),
    }
}

/// No-op `Serialize` derive: emits a marker-trait impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    marker_impl("::serde::Serialize", input)
}

/// No-op `Deserialize` derive: emits a marker-trait impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    marker_impl("::serde::Deserialize", input)
}
