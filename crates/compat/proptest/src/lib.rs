//! Offline compatibility shim for the `proptest` API surface this workspace
//! uses: the [`proptest!`] macro, `prop_assert*`/`prop_assume!`,
//! [`prop_oneof!`], the [`Strategy`](strategy::Strategy) trait with
//! `prop_map`/`prop_filter`/`prop_recursive`, range and tuple strategies,
//! [`collection::vec`], and [`arbitrary::any`].
//!
//! Cases are generated from an RNG seeded deterministically from the test
//! name, so failures replay identically run-to-run. There is **no
//! shrinking** — a failing case reports its inputs and case number only.

/// Property-test strategies: value generators composable with
/// `prop_map`/`prop_filter`/`prop_recursive`.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value from `rng`.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Type-erases this strategy behind reference counting.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            let s = Rc::new(self);
            BoxedStrategy(Rc::new(move |rng| s.gen_value(rng)))
        }

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> BoxedStrategy<O>
        where
            Self: Sized + 'static,
            F: Fn(Self::Value) -> O + 'static,
        {
            let s = self;
            BoxedStrategy(Rc::new(move |rng| f(s.gen_value(rng))))
        }

        /// Keeps only values satisfying `pred`, redrawing otherwise.
        fn prop_filter<F>(self, reason: &'static str, pred: F) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            F: Fn(&Self::Value) -> bool + 'static,
        {
            let s = self;
            BoxedStrategy(Rc::new(move |rng| {
                for _ in 0..10_000 {
                    let v = s.gen_value(rng);
                    if pred(&v) {
                        return v;
                    }
                }
                panic!("prop_filter({reason:?}) rejected 10000 consecutive draws");
            }))
        }

        /// Builds a recursive strategy: `self` is the leaf generator and
        /// `expand` wraps an inner strategy into a deeper one. The strategy
        /// is unrolled `depth` times, mixing leaves back in at each level so
        /// generated sizes stay bounded (`desired_size` and
        /// `expected_branch_size` are accepted for API compatibility).
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            expand: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            Self::Value: 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut s = leaf.clone();
            for _ in 0..depth {
                s = union(vec![leaf.clone(), expand(s).boxed()]);
            }
            s
        }
    }

    /// A reference-counted, type-erased [`Strategy`].
    pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(self.0.clone())
        }
    }

    impl<T> BoxedStrategy<T> {
        /// Wraps a generator closure.
        pub fn from_fn(f: impl Fn(&mut TestRng) -> T + 'static) -> Self {
            BoxedStrategy(Rc::new(f))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Picks uniformly among `variants` each draw (backs [`prop_oneof!`]).
    pub fn union<T: 'static>(variants: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
        assert!(!variants.is_empty(), "union of zero strategies");
        BoxedStrategy(Rc::new(move |rng| {
            let i = (rng.next_u64() % variants.len() as u64) as usize;
            variants[i].gen_value(rng)
        }))
    }

    /// Always produces a clone of `value`.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl<T: rand::SampleRange + Clone> Strategy for std::ops::Range<T> {
        type Value = T;
        fn gen_value(&self, rng: &mut TestRng) -> T {
            rand::Rng::random_range(&mut rng.0, self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.gen_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

/// Strategies for whole-domain values (`any::<T>()`).
pub mod arbitrary {
    use crate::strategy::BoxedStrategy;
    use crate::test_runner::TestRng;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value of this type.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    // Raw-bits floats cover infinities, NaNs and subnormals, which is what
    // codec round-trip tests want.
    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    /// Whole-domain strategy for `A`.
    pub fn any<A: Arbitrary + 'static>() -> BoxedStrategy<A> {
        BoxedStrategy::from_fn(A::arbitrary)
    }
}

/// Collection strategies.
pub mod collection {
    use crate::strategy::{BoxedStrategy, Strategy};
    use std::ops::Range;

    /// Accepted size arguments for [`vec`]: a fixed length or a range.
    pub trait SizeRange {
        /// Lower (inclusive) and upper (exclusive) length bounds.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl SizeRange for Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S>(element: S, size: impl SizeRange) -> BoxedStrategy<Vec<S::Value>>
    where
        S: Strategy + 'static,
    {
        let (lo, hi) = size.bounds();
        assert!(lo < hi, "empty vec size range");
        BoxedStrategy::from_fn(move |rng| {
            let span = (hi - lo) as u64;
            let len = lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| element.gen_value(rng)).collect()
        })
    }
}

/// Deterministic case runner behind the [`proptest!`] macro.
pub mod test_runner {
    use rand::{RngCore, SeedableRng, StdRng};

    /// RNG handed to strategies during generation.
    #[derive(Clone, Debug)]
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// An assertion failed; the test fails.
        Fail(String),
        /// A `prop_assume!` precondition did not hold; the case is skipped.
        Reject,
    }

    /// Runner configuration (`#![proptest_config(...)]`).
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per test.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// Config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    fn seed_from_name(name: &str) -> u64 {
        // FNV-1a: stable across runs and platforms.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Runs `case` for `config.cases` accepted draws, seeding the RNG from
    /// `name`. Panics (failing the enclosing `#[test]`) on the first
    /// [`TestCaseError::Fail`].
    pub fn run<F>(name: &str, config: &ProptestConfig, mut case: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let seed = seed_from_name(name);
        let mut rng = TestRng(StdRng::seed_from_u64(seed));
        let mut accepted = 0u32;
        let max_attempts = config.cases.saturating_mul(20).max(100);
        for attempt in 0..max_attempts {
            if accepted >= config.cases {
                return;
            }
            match case(&mut rng) {
                Ok(()) => accepted += 1,
                Err(TestCaseError::Reject) => continue,
                Err(TestCaseError::Fail(msg)) => {
                    panic!(
                        "proptest `{name}` failed at case {accepted} \
                         (attempt {attempt}, seed {seed:#x}):\n{msg}"
                    );
                }
            }
        }
        assert!(
            accepted > 0,
            "proptest `{name}`: every attempt was rejected by prop_assume!"
        );
    }
}

/// One-stop import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};
}

/// Declares property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            let __strategies = ($($strat,)+);
            $crate::test_runner::run(
                concat!(module_path!(), "::", stringify!($name)),
                &__config,
                |__rng| {
                    let ($($arg,)+) =
                        $crate::strategy::Strategy::gen_value(&__strategies, __rng);
                    #[allow(unreachable_code)]
                    (move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    })()
                },
            );
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::union(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $fmt:expr $(, $args:expr)* $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: {}\n{}",
                    stringify!($cond),
                    format!($fmt $(, $args)*),
                ),
            ));
        }
    };
}

/// Fails the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `left == right`\n  left: {:?}\n right: {:?}", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $fmt:expr $(, $args:expr)* $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n{}",
                    __l, __r, format!($fmt $(, $args)*),
                ),
            ));
        }
    }};
}

/// Fails the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `left != right`\n  both: {:?}", __l),
            ));
        }
    }};
}

/// Skips the current case unless `cond` holds (drawn inputs don't satisfy
/// the test's precondition).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in -2.0..2.0f64) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn assume_skips_without_failing(a in 0usize..10, b in 0usize..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn vec_and_map_compose(v in crate::collection::vec((0i64..5).prop_map(|x| x * 2), 0..6)) {
            prop_assert!(v.len() < 6);
            prop_assert!(v.iter().all(|x| x % 2 == 0));
        }

        #[test]
        fn oneof_and_just_produce_members(v in prop_oneof![Just(1i64), Just(2), (10i64..12)]) {
            prop_assert!(v == 1 || v == 2 || v == 10 || v == 11, "got {}", v);
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Clone, Debug)]
        enum Tree {
            Leaf(i64),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(_) => 1,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0i64..10).prop_map(Tree::Leaf).prop_recursive(4, 16, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = crate::test_runner::TestRng(rand::StdRng::seed_from_u64(5));
        use rand::SeedableRng;
        for _ in 0..200 {
            let t = strat.gen_value(&mut rng);
            assert!(depth(&t) <= 5, "depth bound violated: {t:?}");
        }
    }

    #[test]
    fn same_name_replays_identically() {
        let cfg = ProptestConfig::with_cases(10);
        let mut first: Vec<u64> = vec![];
        crate::test_runner::run("replay", &cfg, |rng| {
            first.push(rng.next_u64());
            Ok(())
        });
        let mut second: Vec<u64> = vec![];
        crate::test_runner::run("replay", &cfg, |rng| {
            second.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(first, second);
    }
}
