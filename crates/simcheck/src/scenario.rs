//! The scenario: a fully materialised test case for the HMPI stack.
//!
//! A scenario owns concrete values — node speeds, link parameters, fault
//! events, workload sizes — rather than just the seed that produced them,
//! so the shrinker can delete nodes, drop fault events and halve message
//! sizes while preserving everything else. Every scenario round-trips
//! through a one-line text encoding (`encode` / `parse`), which is what
//! the corpus files store and what a failing fuzz run prints as its repro.

use hetsim::{ContentionModel, FaultEvent, NodeId, SimTime};
use mpisim::CollectiveKind;
use std::fmt;

/// A point-to-point link override: `a <-> b` gets `(lat, bw)` instead of
/// the cluster-wide default.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LinkOverride {
    /// One endpoint (node index).
    pub a: usize,
    /// The other endpoint (node index).
    pub b: usize,
    /// Latency, seconds.
    pub lat: f64,
    /// Bandwidth, bytes/second.
    pub bw: f64,
}

/// Which application kernel an [`Workload::AppKernel`] scenario runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AppKind {
    /// The paper's EM3D electromagnetic kernel.
    Em3d,
    /// Heterogeneous block-cyclic matrix multiplication.
    Matmul,
    /// The N-body kernel.
    Nbody,
}

impl AppKind {
    /// Stable lower-case label.
    pub fn name(self) -> &'static str {
        match self {
            AppKind::Em3d => "em3d",
            AppKind::Matmul => "matmul",
            AppKind::Nbody => "nbody",
        }
    }
}

/// What the scenario actually executes against the cluster.
#[derive(Clone, Debug, PartialEq)]
pub enum Workload {
    /// Every rank exchanges `elems` i64s with both ring neighbours,
    /// `rounds` times, verifying payload contents.
    P2pRing {
        /// Payload elements per message.
        elems: usize,
        /// Exchange rounds.
        rounds: usize,
    },
    /// A deterministic random pattern of `msgs` point-to-point messages
    /// (pairs, sizes and tags drawn from `pattern_seed`).
    P2pRandom {
        /// Seed for the message pattern.
        pattern_seed: u64,
        /// Number of messages.
        msgs: usize,
        /// Upper bound on payload elements per message.
        max_elems: usize,
    },
    /// One collective of `elems` f64 elements, run once per eligible
    /// algorithm plus once through the `Auto` selector, checking bit-exact
    /// reduction neutrality and (fault-free, parallel links) `timeof`
    /// parity.
    Collective {
        /// Which collective.
        kind: CollectiveKind,
        /// Payload elements.
        elems: usize,
        /// Root rank (ignored by the rootless kinds).
        root: usize,
    },
    /// `cycles` rounds of recon → `group_create` on a random model →
    /// member validation → `group_free`.
    GroupCycle {
        /// Seed for the per-cycle random models.
        model_seed: u64,
        /// Create/free cycles.
        cycles: usize,
    },
    /// `rounds` rounds of `HMPI_Recon`, checking estimate sanity and
    /// generation discipline.
    ReconRounds {
        /// Benchmark units per recon.
        units: f64,
        /// Recon rounds.
        rounds: usize,
    },
    /// Pure (no simulation) check: the compiled selection engine and the
    /// naive interpreter must pick identical mappings on a random model.
    Selection {
        /// Seed for the random performance model.
        model_seed: u64,
        /// Seed for the random speed estimates.
        est_seed: u64,
    },
    /// Crash-driven group shrink: compute+barrier rounds until the
    /// injected crash surfaces, then `rebuild_group` on the survivors.
    ShrinkRecovery {
        /// Compute+barrier rounds to attempt.
        rounds: usize,
        /// Compute units per round.
        units: f64,
    },
    /// A small fault-free run of one of the paper's application kernels,
    /// checking that HMPI group selection does not change the numerics.
    AppKernel {
        /// Which kernel.
        app: AppKind,
    },
}

impl Workload {
    /// Stable label for statistics and corpus curation.
    pub fn label(&self) -> &'static str {
        match self {
            Workload::P2pRing { .. } => "ring",
            Workload::P2pRandom { .. } => "rand",
            Workload::Collective { .. } => "coll",
            Workload::GroupCycle { .. } => "group",
            Workload::ReconRounds { .. } => "recon",
            Workload::Selection { .. } => "select",
            Workload::ShrinkRecovery { .. } => "shrink",
            Workload::AppKernel { .. } => "app",
        }
    }
}

/// One fully materialised test case.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// The seed that generated this scenario (provenance; re-running the
    /// generator with it reproduces the original, pre-shrink scenario).
    pub seed: u64,
    /// Node speeds (benchmark units per second); the length is the node
    /// count, with one rank placed per node.
    pub speeds: Vec<f64>,
    /// Default link latency, seconds.
    pub base_lat: f64,
    /// Default link bandwidth, bytes/second.
    pub base_bw: f64,
    /// Per-pair link overrides.
    pub overrides: Vec<LinkOverride>,
    /// The cluster's link-sharing mode.
    pub contention: ContentionModel,
    /// Ranks placed on each node (block placement: ranks `r*k..(r+1)*k`
    /// live on node `r`). `1` — the default, omitted from the encoding —
    /// is the classic one-rank-per-node layout. Only the mpisim workloads
    /// (`ring`, `rand`, `coll`) execute multi-rank placement.
    pub ranks_per_node: usize,
    /// Intra-node memory bus `(latency, bandwidth)`: the shared link that
    /// serialises transfers between distinct ranks on the same node.
    /// `None` (the default, omitted from the encoding) leaves intra-node
    /// transfers free, as before the memory-bus domain existed.
    pub mem: Option<(f64, f64)>,
    /// Per-node site index (`site[i]` hosts node `i`). Empty — the
    /// default, omitted from the encoding — is a flat cluster, exactly as
    /// every scenario was before the topology level existed.
    pub site: Vec<usize>,
    /// Per-node switch index (globally numbered; each switch nests inside
    /// one site). Empty defaults to one switch per site.
    pub switch: Vec<usize>,
    /// Inter-site WAN `(latency, bandwidth)` replacing the base link for
    /// node pairs in different sites. `None` keeps the base link.
    pub wan: Option<(f64, f64)>,
    /// Intra-site inter-switch backbone `(latency, bandwidth)` for node
    /// pairs on different switches of the same site. `None` keeps the
    /// base link.
    pub backbone: Option<(f64, f64)>,
    /// Scheduled faults.
    pub faults: Vec<FaultEvent>,
    /// What to run.
    pub workload: Workload,
}

impl Scenario {
    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.speeds.len()
    }

    /// Number of ranks (`nodes * ranks_per_node`).
    pub fn ranks(&self) -> usize {
        self.speeds.len() * self.ranks_per_node.max(1)
    }

    /// Whether the scenario declares a multi-level topology.
    pub fn is_hierarchical(&self) -> bool {
        !self.site.is_empty()
    }

    /// The effective per-node switch vector: the declared one, or one
    /// switch per site when none was declared.
    pub fn effective_switch(&self) -> Vec<usize> {
        if self.switch.is_empty() {
            self.site.clone()
        } else {
            self.switch.clone()
        }
    }
}

fn fmt_indices(f: &mut fmt::Formatter<'_>, key: &str, v: &[usize]) -> fmt::Result {
    write!(f, " {key}=")?;
    for (i, s) in v.iter().enumerate() {
        if i > 0 {
            write!(f, ",")?;
        }
        write!(f, "{s}")?;
    }
    Ok(())
}

fn cont_name(c: ContentionModel) -> &'static str {
    match c {
        ContentionModel::ParallelLinks => "par",
        ContentionModel::SerializedNic => "nic",
        ContentionModel::SharedBus => "bus",
    }
}

fn kind_name(k: CollectiveKind) -> &'static str {
    k.name()
}

impl fmt::Display for Scenario {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v1 seed={:#x}", self.seed)?;
        write!(f, " sp=")?;
        for (i, s) in self.speeds.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{s}")?;
        }
        write!(f, " lat={} bw={}", self.base_lat, self.base_bw)?;
        write!(f, " cont={}", cont_name(self.contention))?;
        if self.ranks_per_node != 1 {
            write!(f, " rpn={}", self.ranks_per_node)?;
        }
        if let Some((lat, bw)) = self.mem {
            write!(f, " mem={lat}:{bw}")?;
        }
        if !self.site.is_empty() {
            fmt_indices(f, "site", &self.site)?;
        }
        if !self.switch.is_empty() {
            fmt_indices(f, "switch", &self.switch)?;
        }
        if let Some((lat, bw)) = self.wan {
            write!(f, " wan={lat}:{bw}")?;
        }
        if let Some((lat, bw)) = self.backbone {
            write!(f, " bb={lat}:{bw}")?;
        }
        for o in &self.overrides {
            write!(f, " ov={}-{}:{}:{}", o.a, o.b, o.lat, o.bw)?;
        }
        for ev in &self.faults {
            match *ev {
                FaultEvent::NodeCrash { node, at } => {
                    write!(f, " f=crash:{}:{}", node.0, at.as_secs())?;
                }
                FaultEvent::NodeSlowdown {
                    node,
                    from,
                    until,
                    factor,
                } => {
                    write!(
                        f,
                        " f=slow:{}:{}:{}:{}",
                        node.0,
                        from.as_secs(),
                        until.as_secs(),
                        factor
                    )?;
                }
                FaultEvent::LinkDegrade {
                    from,
                    to,
                    at,
                    bandwidth_factor,
                } => {
                    write!(
                        f,
                        " f=deg:{}-{}:{}:{}",
                        from.0,
                        to.0,
                        at.as_secs(),
                        bandwidth_factor
                    )?;
                }
                FaultEvent::LinkDrop { from, to, at } => {
                    write!(f, " f=drop:{}-{}:{}", from.0, to.0, at.as_secs())?;
                }
            }
        }
        match &self.workload {
            Workload::P2pRing { elems, rounds } => write!(f, " w=ring:{elems}:{rounds}"),
            Workload::P2pRandom {
                pattern_seed,
                msgs,
                max_elems,
            } => write!(f, " w=rand:{pattern_seed:#x}:{msgs}:{max_elems}"),
            Workload::Collective { kind, elems, root } => {
                write!(f, " w=coll:{}:{elems}:{root}", kind_name(*kind))
            }
            Workload::GroupCycle { model_seed, cycles } => {
                write!(f, " w=group:{model_seed:#x}:{cycles}")
            }
            Workload::ReconRounds { units, rounds } => write!(f, " w=recon:{units}:{rounds}"),
            Workload::Selection {
                model_seed,
                est_seed,
            } => write!(f, " w=select:{model_seed:#x}:{est_seed:#x}"),
            Workload::ShrinkRecovery { rounds, units } => {
                write!(f, " w=shrink:{rounds}:{units}")
            }
            Workload::AppKernel { app } => write!(f, " w=app:{}", app.name()),
        }
    }
}

/// Why a scenario line failed to parse.
#[derive(Clone, Debug, PartialEq)]
pub struct ParseError(pub String);

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scenario parse error: {}", self.0)
    }
}

impl std::error::Error for ParseError {}

fn bad(msg: impl Into<String>) -> ParseError {
    ParseError(msg.into())
}

fn parse_u64(s: &str) -> Result<u64, ParseError> {
    let r = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    r.map_err(|_| bad(format!("bad integer {s:?}")))
}

fn parse_usize(s: &str) -> Result<usize, ParseError> {
    s.parse().map_err(|_| bad(format!("bad integer {s:?}")))
}

fn parse_f64(s: &str) -> Result<f64, ParseError> {
    let v: f64 = s.parse().map_err(|_| bad(format!("bad number {s:?}")))?;
    if !v.is_finite() {
        return Err(bad(format!("non-finite number {s:?}")));
    }
    Ok(v)
}

fn parse_pair(s: &str) -> Result<(usize, usize), ParseError> {
    let (a, b) = s
        .split_once('-')
        .ok_or_else(|| bad(format!("expected A-B pair, got {s:?}")))?;
    Ok((parse_usize(a)?, parse_usize(b)?))
}

fn parse_time(s: &str) -> Result<SimTime, ParseError> {
    Ok(SimTime::from_secs(parse_f64(s)?))
}

/// A `lat:bw` link parameter pair, validated like `mem=`.
fn parse_link_params(key: &str, s: &str) -> Result<(f64, f64), ParseError> {
    let (lat, bw) = s
        .split_once(':')
        .ok_or_else(|| bad(format!("bad {key} {s:?}")))?;
    let (lat, bw) = (parse_f64(lat)?, parse_f64(bw)?);
    if bw <= 0.0 || lat < 0.0 {
        return Err(bad(format!("bad {key} link parameters {s:?}")));
    }
    Ok((lat, bw))
}

/// A comma-separated index list (`site=`/`switch=` values).
fn parse_indices(s: &str) -> Result<Vec<usize>, ParseError> {
    s.split(',').map(parse_usize).collect()
}

fn parse_fault(body: &str) -> Result<FaultEvent, ParseError> {
    let parts: Vec<&str> = body.split(':').collect();
    match parts.as_slice() {
        ["crash", node, at] => Ok(FaultEvent::NodeCrash {
            node: NodeId(parse_usize(node)?),
            at: parse_time(at)?,
        }),
        ["slow", node, from, until, factor] => Ok(FaultEvent::NodeSlowdown {
            node: NodeId(parse_usize(node)?),
            from: parse_time(from)?,
            until: parse_time(until)?,
            factor: parse_f64(factor)?,
        }),
        ["deg", pair, at, bwf] => {
            let (from, to) = parse_pair(pair)?;
            Ok(FaultEvent::LinkDegrade {
                from: NodeId(from),
                to: NodeId(to),
                at: parse_time(at)?,
                bandwidth_factor: parse_f64(bwf)?,
            })
        }
        ["drop", pair, at] => {
            let (from, to) = parse_pair(pair)?;
            Ok(FaultEvent::LinkDrop {
                from: NodeId(from),
                to: NodeId(to),
                at: parse_time(at)?,
            })
        }
        _ => Err(bad(format!("bad fault {body:?}"))),
    }
}

fn parse_kind(s: &str) -> Result<CollectiveKind, ParseError> {
    match s {
        "bcast" => Ok(CollectiveKind::Bcast),
        "reduce" => Ok(CollectiveKind::Reduce),
        "allreduce" => Ok(CollectiveKind::Allreduce),
        "allgather" => Ok(CollectiveKind::Allgather),
        _ => Err(bad(format!("bad collective kind {s:?}"))),
    }
}

fn parse_workload(body: &str) -> Result<Workload, ParseError> {
    let parts: Vec<&str> = body.split(':').collect();
    match parts.as_slice() {
        ["ring", elems, rounds] => Ok(Workload::P2pRing {
            elems: parse_usize(elems)?,
            rounds: parse_usize(rounds)?,
        }),
        ["rand", pseed, msgs, max_elems] => Ok(Workload::P2pRandom {
            pattern_seed: parse_u64(pseed)?,
            msgs: parse_usize(msgs)?,
            max_elems: parse_usize(max_elems)?,
        }),
        ["coll", kind, elems, root] => Ok(Workload::Collective {
            kind: parse_kind(kind)?,
            elems: parse_usize(elems)?,
            root: parse_usize(root)?,
        }),
        ["group", mseed, cycles] => Ok(Workload::GroupCycle {
            model_seed: parse_u64(mseed)?,
            cycles: parse_usize(cycles)?,
        }),
        ["recon", units, rounds] => Ok(Workload::ReconRounds {
            units: parse_f64(units)?,
            rounds: parse_usize(rounds)?,
        }),
        ["select", mseed, eseed] => Ok(Workload::Selection {
            model_seed: parse_u64(mseed)?,
            est_seed: parse_u64(eseed)?,
        }),
        ["shrink", rounds, units] => Ok(Workload::ShrinkRecovery {
            rounds: parse_usize(rounds)?,
            units: parse_f64(units)?,
        }),
        ["app", app] => Ok(Workload::AppKernel {
            app: match *app {
                "em3d" => AppKind::Em3d,
                "matmul" => AppKind::Matmul,
                "nbody" => AppKind::Nbody,
                other => return Err(bad(format!("bad app kernel {other:?}"))),
            },
        }),
        _ => Err(bad(format!("bad workload {body:?}"))),
    }
}

/// Parses one scenario line (the inverse of [`Scenario`]'s `Display`).
///
/// # Errors
/// [`ParseError`] on any malformed, missing or out-of-range field.
pub fn parse(line: &str) -> Result<Scenario, ParseError> {
    let mut tokens = line.split_whitespace();
    if tokens.next() != Some("v1") {
        return Err(bad("missing 'v1' version tag"));
    }
    let mut seed = None;
    let mut speeds: Option<Vec<f64>> = None;
    let mut base_lat = None;
    let mut base_bw = None;
    let mut contention = None;
    let mut ranks_per_node = 1usize;
    let mut mem = None;
    let mut site = Vec::new();
    let mut switch = Vec::new();
    let mut wan = None;
    let mut backbone = None;
    let mut overrides = Vec::new();
    let mut faults = Vec::new();
    let mut workload = None;
    for tok in tokens {
        let (key, val) = tok
            .split_once('=')
            .ok_or_else(|| bad(format!("bad token {tok:?}")))?;
        match key {
            "seed" => seed = Some(parse_u64(val)?),
            "sp" => {
                speeds = Some(
                    val.split(',')
                        .map(parse_f64)
                        .collect::<Result<Vec<_>, _>>()?,
                )
            }
            "lat" => base_lat = Some(parse_f64(val)?),
            "bw" => base_bw = Some(parse_f64(val)?),
            "cont" => {
                contention = Some(match val {
                    "par" => ContentionModel::ParallelLinks,
                    "nic" => ContentionModel::SerializedNic,
                    "bus" => ContentionModel::SharedBus,
                    _ => return Err(bad(format!("bad contention {val:?}"))),
                })
            }
            "rpn" => {
                ranks_per_node = parse_usize(val)?;
                if ranks_per_node == 0 {
                    return Err(bad("rpn= must be at least 1"));
                }
            }
            "mem" => {
                let (lat, bw) = val
                    .split_once(':')
                    .ok_or_else(|| bad(format!("bad mem {val:?}")))?;
                let (lat, bw) = (parse_f64(lat)?, parse_f64(bw)?);
                if bw <= 0.0 || lat < 0.0 {
                    return Err(bad(format!("bad mem link parameters {val:?}")));
                }
                mem = Some((lat, bw));
            }
            "site" => site = parse_indices(val)?,
            "switch" => switch = parse_indices(val)?,
            "wan" => wan = Some(parse_link_params("wan", val)?),
            "bb" => backbone = Some(parse_link_params("bb", val)?),
            "ov" => {
                let parts: Vec<&str> = val.split(':').collect();
                let [pair, lat, bw] = parts.as_slice() else {
                    return Err(bad(format!("bad override {val:?}")));
                };
                let (a, b) = parse_pair(pair)?;
                overrides.push(LinkOverride {
                    a,
                    b,
                    lat: parse_f64(lat)?,
                    bw: parse_f64(bw)?,
                });
            }
            "f" => faults.push(parse_fault(val)?),
            "w" => workload = Some(parse_workload(val)?),
            _ => return Err(bad(format!("unknown key {key:?}"))),
        }
    }
    let speeds = speeds.ok_or_else(|| bad("missing sp="))?;
    // The hierarchy declaration, when present, must cover exactly the
    // nodes and keep switches nested inside sites — the same contract
    // `hetsim::TopologyInfo::new` enforces with a panic.
    if site.is_empty() && (!switch.is_empty() || wan.is_some() || backbone.is_some()) {
        return Err(bad("switch=/wan=/bb= require a site= declaration"));
    }
    if !site.is_empty() {
        if site.len() != speeds.len() {
            return Err(bad(format!(
                "site= covers {} nodes but sp= has {}",
                site.len(),
                speeds.len()
            )));
        }
        if !switch.is_empty() && switch.len() != speeds.len() {
            return Err(bad(format!(
                "switch= covers {} nodes but sp= has {}",
                switch.len(),
                speeds.len()
            )));
        }
        let mut owner = std::collections::HashMap::new();
        for (&s, &sw) in site.iter().zip(if switch.is_empty() { &site } else { &switch }) {
            if *owner.entry(sw).or_insert(s) != s {
                return Err(bad(format!("switch {sw} spans two sites")));
            }
        }
    }
    Ok(Scenario {
        seed: seed.ok_or_else(|| bad("missing seed="))?,
        speeds,
        base_lat: base_lat.ok_or_else(|| bad("missing lat="))?,
        base_bw: base_bw.ok_or_else(|| bad("missing bw="))?,
        overrides,
        contention: contention.ok_or_else(|| bad("missing cont="))?,
        ranks_per_node,
        mem,
        site,
        switch,
        wan,
        backbone,
        faults,
        workload: workload.ok_or_else(|| bad("missing w="))?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_full_line_round_trips() {
        let line = "v1 seed=0x2a sp=44.5,100,9.125 lat=0.0001 bw=10000000 cont=bus \
                    rpn=2 mem=0.0000001:4000000000 \
                    ov=0-2:0.002:500000 f=crash:1:1.5 f=slow:2:0.5:2:0.25 \
                    f=deg:0-1:1:0.5 f=drop:1-2:2.5 w=coll:allreduce:1024:1";
        let sc = parse(line).unwrap();
        assert_eq!(sc.nodes(), 3);
        assert_eq!(sc.ranks(), 6);
        assert_eq!(sc.contention, ContentionModel::SharedBus);
        assert_eq!(sc.mem, Some((1e-7, 4e9)));
        assert_eq!(sc.faults.len(), 4);
        let reparsed = parse(&sc.to_string()).unwrap();
        assert_eq!(sc, reparsed);
    }

    #[test]
    fn placement_defaults_stay_out_of_the_encoding() {
        // One rank per node, no memory bus: the line must look exactly as
        // it did before the placement fields existed, so the committed
        // corpus keeps parsing and re-encoding byte-identically.
        let line = "v1 seed=0x1 sp=10,20 lat=0.001 bw=1000000 cont=par w=ring:8:1";
        let sc = parse(line).unwrap();
        assert_eq!(sc.ranks_per_node, 1);
        assert_eq!(sc.mem, None);
        assert_eq!(sc.ranks(), sc.nodes());
        assert_eq!(sc.to_string(), line);
    }

    #[test]
    fn hierarchical_lines_round_trip() {
        let line = "v1 seed=0x7 sp=10,20,30,40,50,60 lat=0.0001 bw=100000000 cont=nic \
                    site=0,0,0,1,1,1 switch=0,0,1,2,2,2 wan=0.05:1000000 \
                    bb=0.001:50000000 w=coll:allgather:2048:0";
        let sc = parse(line).unwrap();
        assert!(sc.is_hierarchical());
        assert_eq!(sc.site, vec![0, 0, 0, 1, 1, 1]);
        assert_eq!(sc.switch, vec![0, 0, 1, 2, 2, 2]);
        assert_eq!(sc.wan, Some((0.05, 1e6)));
        assert_eq!(sc.backbone, Some((0.001, 5e7)));
        assert_eq!(sc.to_string(), line);
        assert_eq!(parse(&sc.to_string()).unwrap(), sc);
        // One switch per site is the default for an omitted switch=.
        let no_switch = parse(
            "v1 seed=1 sp=1,2,3,4 lat=0.001 bw=1000000 cont=par site=0,0,1,1 w=ring:8:1",
        )
        .unwrap();
        assert_eq!(no_switch.effective_switch(), vec![0, 0, 1, 1]);
    }

    #[test]
    fn malformed_lines_are_typed_errors() {
        for bad_line in [
            "",
            "v2 seed=1 sp=1 lat=1 bw=1 cont=par w=ring:1:1",
            "v1 sp=1 lat=1 bw=1 cont=par w=ring:1:1",
            "v1 seed=1 sp=1 lat=1 bw=1 cont=par",
            "v1 seed=1 sp=1 lat=1 bw=1 cont=quantum w=ring:1:1",
            "v1 seed=1 sp=nan lat=1 bw=1 cont=par w=ring:1:1",
            "v1 seed=1 sp=1 lat=1 bw=1 cont=par w=coll:scan:8:0",
            "v1 seed=1 sp=1 lat=1 bw=1 cont=par w=ring:1:1 f=melt:0:1",
            "v1 seed=1 sp=1 lat=1 bw=1 cont=par rpn=0 w=ring:1:1",
            "v1 seed=1 sp=1 lat=1 bw=1 cont=par mem=0.001 w=ring:1:1",
            "v1 seed=1 sp=1 lat=1 bw=1 cont=par mem=0.001:0 w=ring:1:1",
            // Hierarchy declarations must cover the nodes and nest.
            "v1 seed=1 sp=1,2 lat=1 bw=1 cont=par site=0 w=ring:1:1",
            "v1 seed=1 sp=1,2 lat=1 bw=1 cont=par site=0,1 switch=0 w=ring:1:1",
            "v1 seed=1 sp=1,2 lat=1 bw=1 cont=par site=0,1 switch=0,0 w=ring:1:1",
            "v1 seed=1 sp=1,2 lat=1 bw=1 cont=par wan=0.1:1000 w=ring:1:1",
            "v1 seed=1 sp=1,2 lat=1 bw=1 cont=par site=0,1 wan=0.1:0 w=ring:1:1",
        ] {
            assert!(parse(bad_line).is_err(), "accepted {bad_line:?}");
        }
    }
}
