//! Seed → scenario: the random test-case generator.
//!
//! All randomness flows from the single `u64` seed through a [`StdRng`],
//! so the same seed always yields the same scenario — a failing seed
//! printed by the CLI *is* the repro. The generator materialises every
//! drawn value into the [`Scenario`] (rather than re-deriving it at
//! execution time) so the shrinker can edit the case afterwards.

use crate::scenario::{AppKind, LinkOverride, Scenario, Workload};
use hetsim::{ContentionModel, FaultEvent, NodeId, SimTime};
use mpisim::CollectiveKind;
use rand::{Rng, SeedableRng, StdRng};

fn log_uniform(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    lo * (hi / lo).powf(rng.random())
}

fn draw_contention(rng: &mut StdRng) -> ContentionModel {
    match rng.random_range(0u32..3) {
        0 => ContentionModel::ParallelLinks,
        1 => ContentionModel::SerializedNic,
        _ => ContentionModel::SharedBus,
    }
}

fn draw_workload(rng: &mut StdRng, n: usize) -> Workload {
    match rng.random_range(0u32..8) {
        0 => Workload::P2pRing {
            elems: log_uniform(rng, 1.0, 4096.0) as usize + 1,
            rounds: rng.random_range(1..4),
        },
        1 => Workload::P2pRandom {
            pattern_seed: rng.random_range(0..u64::MAX),
            msgs: rng.random_range(1..17),
            max_elems: log_uniform(rng, 1.0, 2048.0) as usize + 1,
        },
        2 => Workload::Collective {
            kind: match rng.random_range(0u32..4) {
                0 => CollectiveKind::Bcast,
                1 => CollectiveKind::Reduce,
                2 => CollectiveKind::Allreduce,
                _ => CollectiveKind::Allgather,
            },
            elems: log_uniform(rng, 1.0, 4096.0) as usize + 1,
            root: rng.random_range(0..n),
        },
        3 => Workload::GroupCycle {
            model_seed: rng.random_range(0..u64::MAX),
            cycles: rng.random_range(1..4),
        },
        4 => Workload::ReconRounds {
            units: rng.random_range(0.5..20.0),
            rounds: rng.random_range(1..4),
        },
        5 => Workload::Selection {
            model_seed: rng.random_range(0..u64::MAX),
            est_seed: rng.random_range(0..u64::MAX),
        },
        6 => Workload::ShrinkRecovery {
            rounds: rng.random_range(2..5),
            units: rng.random_range(10.0..100.0),
        },
        _ => Workload::AppKernel {
            app: match rng.random_range(0u32..3) {
                0 => AppKind::Em3d,
                1 => AppKind::Matmul,
                _ => AppKind::Nbody,
            },
        },
    }
}

/// Whether a workload tolerates injected faults. The kernels are checked
/// fault-free (they `expect` their way through setup); the pure selection
/// check has no simulation for faults to touch. Collectives *are*
/// faultable: the fault-tolerant contract (survivors return bit-exact
/// values or typed errors, agreement verdicts are unanimous, the error
/// surface replays deterministically) is checked by `check_collective`.
fn faultable(w: &Workload) -> bool {
    !matches!(w, Workload::AppKernel { .. } | Workload::Selection { .. })
}

/// Materialises 1..=`max_events` random fault events. Node 0 is exempt
/// from crashes (it hosts HMPI's parent rank; a run where the host dies at
/// t=0 exercises nothing), mirroring `FaultPlan::random_mixed`'s survivor.
fn draw_faults(rng: &mut StdRng, n: usize, horizon: f64) -> Vec<FaultEvent> {
    let mut events = Vec::new();
    let mut crashed = vec![false; n];
    for _ in 0..rng.random_range(1..5) {
        let at = SimTime::from_secs(rng.random_range(0.0..horizon).max(1e-9));
        let node = NodeId(rng.random_range(0..n));
        match rng.random_range(0u32..4) {
            0 if node.0 != 0 && !crashed[node.0] => {
                crashed[node.0] = true;
                events.push(FaultEvent::NodeCrash { node, at });
            }
            1 => {
                let span = rng.random_range(0.05..horizon);
                events.push(FaultEvent::NodeSlowdown {
                    node,
                    from: at,
                    until: at + SimTime::from_secs(span),
                    factor: rng.random_range(0.05..1.0),
                });
            }
            2 if n >= 2 => {
                let to = NodeId((node.0 + rng.random_range(1..n)) % n);
                events.push(FaultEvent::LinkDegrade {
                    from: node,
                    to,
                    at,
                    bandwidth_factor: rng.random_range(0.05..1.0),
                });
            }
            3 if n >= 2 => {
                let to = NodeId((node.0 + rng.random_range(1..n)) % n);
                events.push(FaultEvent::LinkDrop { from: node, to, at });
            }
            _ => {}
        }
    }
    events
}

/// Generates the scenario for `seed`.
pub fn generate(seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    // Node count 1..=32, quadratically skewed towards small clusters so
    // the seed budget spends most of its time on fast cases while still
    // reaching paper-scale (9 nodes) and beyond regularly.
    let r: f64 = rng.random();
    let n = 1 + (r * r * 31.0) as usize;

    let speeds: Vec<f64> = (0..n).map(|_| rng.random_range(5.0..500.0)).collect();
    let base_lat = log_uniform(&mut rng, 1e-6, 1e-3);
    let base_bw = log_uniform(&mut rng, 1e6, 1e9);

    let mut overrides = Vec::new();
    if n >= 2 {
        for _ in 0..rng.random_range(0..n) {
            let a = rng.random_range(0..n);
            let b = (a + rng.random_range(1..n)) % n;
            overrides.push(LinkOverride {
                a,
                b,
                lat: log_uniform(&mut rng, 1e-6, 1e-2),
                bw: log_uniform(&mut rng, 1e5, 1e9),
            });
        }
    }

    let contention = draw_contention(&mut rng);
    let workload = draw_workload(&mut rng, n);

    let mut faults = Vec::new();
    if let Workload::ShrinkRecovery { rounds, units } = workload {
        // The crash must land inside the compute window so the shrink
        // path actually runs; aim for the middle rounds. Speeds are at
        // least 5, so `units / 5` bounds one round's duration above.
        if n >= 2 {
            let round_time = units / 5.0;
            let at = rng.random_range(0.2..rounds as f64 - 0.2) * round_time;
            faults.push(FaultEvent::NodeCrash {
                node: NodeId(rng.random_range(1..n)),
                at: SimTime::from_secs(at),
            });
        }
    } else if faultable(&workload) && rng.random_range(0u32..5) < 2 {
        faults = draw_faults(&mut rng, n, 10.0);
    }

    // Intra-node placement and the memory-bus domain, drawn *after* every
    // other field so pre-existing seeds keep producing the exact scenarios
    // they always did. Multi-rank placement only executes on the mpisim
    // workloads, and large clusters stay one-rank-per-node to bound the
    // thread count.
    let mpisim_workload = matches!(
        workload,
        Workload::P2pRing { .. } | Workload::P2pRandom { .. } | Workload::Collective { .. }
    );
    let (ranks_per_node, mem) = if mpisim_workload && n <= 8 && rng.random_range(0u32..4) == 0 {
        let rpn = rng.random_range(2..5);
        let mem = (rng.random_range(0u32..4) > 0).then(|| {
            (
                log_uniform(&mut rng, 1e-7, 1e-5),
                log_uniform(&mut rng, 1e8, 1e10),
            )
        });
        (rpn, mem)
    } else {
        (1, None)
    };

    // A declared multi-level topology, drawn last (after every other
    // field, like the placement fields before it) so pre-existing seeds
    // keep their cluster, faults and workload unchanged. One node in
    // five-ish gains a 2–3-site split with a slow WAN; link overrides are
    // dropped then so the hierarchy actually governs the inter-site cost.
    let mut site = Vec::new();
    let mut wan = None;
    if n >= 4 && rng.random_range(0u32..5) == 0 {
        let sites = rng.random_range(2..(n / 2).min(3) + 1);
        site = (0..n).map(|i| i * sites / n).collect();
        wan = Some((
            log_uniform(&mut rng, 1e-3, 1e-1),
            log_uniform(&mut rng, 1e5, 1e7),
        ));
        overrides.clear();
    }

    Scenario {
        seed,
        speeds,
        base_lat,
        base_bw,
        overrides,
        contention,
        ranks_per_node,
        mem,
        site,
        switch: Vec::new(),
        wan,
        backbone: None,
        faults,
        workload,
    }
}

/// Generates the *hierarchical* scenario for `seed`: always a multi-site
/// cluster (2–4 sites of 2–4 nodes, optionally split further into
/// switches), a fast LAN inside switches, a slower backbone between
/// switches and a slow WAN between sites. The workload is usually a
/// collective — gating the hierarchy-aware auto-selection invariant (a
/// hierarchical pick must beat the flat argmin *and* execute with exact
/// values and `timeof` parity) — with p2p workloads mixed in so routing
/// over the resolved hierarchy links is covered too.
pub fn generate_hierarchical(seed: u64) -> Scenario {
    // Salted so the batch is decorrelated from the other generators.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5bd1_e995_85eb_ca6b);
    let sites = rng.random_range(2..5usize);
    let per_site = rng.random_range(2..5usize);
    let n = sites * per_site;

    let speeds: Vec<f64> = (0..n).map(|_| rng.random_range(20.0..500.0)).collect();
    let base_lat = log_uniform(&mut rng, 1e-5, 1e-3);
    let base_bw = log_uniform(&mut rng, 1e7, 1e9);
    let wan = (
        log_uniform(&mut rng, 1e-3, 1e-1),
        log_uniform(&mut rng, 1e5, 1e7),
    );

    let site: Vec<usize> = (0..n).map(|i| i / per_site).collect();
    // Half the scenarios split each site into two switches joined by a
    // backbone slower than the LAN but faster than the WAN.
    let (switch, backbone) = if per_site >= 3 && rng.random_range(0u32..2) == 0 {
        let switch = (0..n)
            .map(|i| 2 * (i / per_site) + usize::from(i % per_site >= per_site.div_ceil(2)))
            .collect();
        let backbone = (
            log_uniform(&mut rng, 1e-4, 1e-2),
            log_uniform(&mut rng, 1e6, 1e8),
        );
        (switch, Some(backbone))
    } else {
        (Vec::new(), None)
    };

    let contention = draw_contention(&mut rng);
    let workload = match rng.random_range(0u32..4) {
        0 => Workload::P2pRing {
            elems: log_uniform(&mut rng, 1.0, 4096.0) as usize + 1,
            rounds: rng.random_range(1..4),
        },
        _ => Workload::Collective {
            kind: match rng.random_range(0u32..4) {
                0 => CollectiveKind::Bcast,
                1 => CollectiveKind::Reduce,
                2 => CollectiveKind::Allreduce,
                _ => CollectiveKind::Allgather,
            },
            // Skewed large: hierarchy pays off in the bandwidth regime.
            elems: log_uniform(&mut rng, 64.0, 16384.0) as usize + 1,
            root: rng.random_range(0..n),
        },
    };

    let faults = if faultable(&workload) && rng.random_range(0u32..5) == 0 {
        draw_faults(&mut rng, n, 10.0)
    } else {
        Vec::new()
    };

    Scenario {
        seed,
        speeds,
        base_lat,
        base_bw,
        overrides: Vec::new(),
        contention,
        ranks_per_node: 1,
        mem: None,
        site,
        switch,
        wan: Some(wan),
        backbone,
        faults,
        workload,
    }
}

/// Generates the *crashy collective* scenario for `seed`: always a
/// collective workload on at least four nodes, with one to three node
/// crashes timed log-uniformly so they land before, inside and after the
/// collective's short virtual window. This is the CI batch for the
/// fault-tolerant collective contract (DESIGN.md §12): survivors return
/// bit-exact values or typed fault-shaped errors, post-failure agreement
/// is unanimous, and the same seed replays the same error surface.
///
/// Unlike [`generate`], node 0 is *not* exempt from crashes — a dying
/// root or rank 0 is exactly the coverage this batch exists for.
pub fn generate_crashy_collective(seed: u64) -> Scenario {
    // Salted so the batch is decorrelated from the main generator's
    // scenarios for the same seed range.
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let r: f64 = rng.random();
    let n = 4 + (r * r * 28.0) as usize; // 4..=32, skewed small

    let speeds: Vec<f64> = (0..n).map(|_| rng.random_range(5.0..500.0)).collect();
    let base_lat = log_uniform(&mut rng, 1e-6, 1e-3);
    let base_bw = log_uniform(&mut rng, 1e6, 1e9);

    let mut overrides = Vec::new();
    for _ in 0..rng.random_range(0..n / 2) {
        let a = rng.random_range(0..n);
        let b = (a + rng.random_range(1..n)) % n;
        overrides.push(LinkOverride {
            a,
            b,
            lat: log_uniform(&mut rng, 1e-6, 1e-2),
            bw: log_uniform(&mut rng, 1e5, 1e9),
        });
    }

    let contention = draw_contention(&mut rng);
    let workload = Workload::Collective {
        kind: match rng.random_range(0u32..4) {
            0 => CollectiveKind::Bcast,
            1 => CollectiveKind::Reduce,
            2 => CollectiveKind::Allreduce,
            _ => CollectiveKind::Allgather,
        },
        elems: log_uniform(&mut rng, 1.0, 4096.0) as usize + 1,
        root: rng.random_range(0..n),
    };

    let mut faults = Vec::new();
    let mut crashed = vec![false; n];
    for _ in 0..rng.random_range(1..4) {
        let node = NodeId(rng.random_range(0..n));
        if crashed[node.0] {
            continue;
        }
        crashed[node.0] = true;
        faults.push(FaultEvent::NodeCrash {
            node,
            at: SimTime::from_secs(log_uniform(&mut rng, 1e-6, 2.0)),
        });
    }

    Scenario {
        seed,
        speeds,
        base_lat,
        base_bw,
        overrides,
        contention,
        ranks_per_node: 1,
        mem: None,
        site: Vec::new(),
        switch: Vec::new(),
        wan: None,
        backbone: None,
        faults,
        workload,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::parse;
    use std::collections::HashSet;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..200 {
            assert_eq!(generate(seed), generate(seed), "seed {seed}");
        }
    }

    #[test]
    fn every_scenario_round_trips_through_its_line() {
        for seed in 0..500 {
            let sc = generate(seed);
            let line = sc.to_string();
            let back = parse(&line).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{line}"));
            assert_eq!(sc, back, "seed {seed} did not round-trip:\n{line}");
        }
    }

    #[test]
    fn the_generator_covers_the_space() {
        let mut workloads = HashSet::new();
        let mut contentions = HashSet::new();
        let mut any_faults = false;
        let mut any_faulty_collective = false;
        let mut any_multirank = false;
        let mut any_mem_bus = false;
        let mut any_hier = false;
        let mut max_n = 0;
        for seed in 0..400 {
            let sc = generate(seed);
            workloads.insert(sc.workload.label());
            contentions.insert(format!("{:?}", sc.contention));
            any_faults |= !sc.faults.is_empty();
            any_faulty_collective |= !sc.faults.is_empty()
                && matches!(sc.workload, Workload::Collective { .. });
            any_multirank |= sc.ranks_per_node > 1;
            any_mem_bus |= sc.mem.is_some();
            any_hier |= sc.is_hierarchical();
            if sc.ranks_per_node > 1 {
                assert!(sc.nodes() <= 8, "seed {seed}: {} nodes multi-rank", sc.nodes());
            }
            max_n = max_n.max(sc.nodes());
        }
        assert_eq!(workloads.len(), 8, "missing workloads: {workloads:?}");
        assert_eq!(contentions.len(), 3);
        assert!(any_faults, "no faulty scenario in 400 seeds");
        assert!(
            any_faulty_collective,
            "no fault-bearing collective in 400 seeds"
        );
        assert!(any_multirank, "no multi-rank placement in 400 seeds");
        assert!(any_mem_bus, "no memory-bus scenario in 400 seeds");
        assert!(any_hier, "no multi-site scenario in 400 seeds");
        assert!(max_n >= 16, "clusters never got large: max {max_n}");
    }

    #[test]
    fn hierarchical_scenarios_are_multi_site_and_round_trip() {
        let mut any_switch_split = false;
        let mut any_collective = false;
        let mut any_p2p = false;
        let mut any_faults = false;
        for seed in 0..300 {
            let sc = generate_hierarchical(seed);
            assert_eq!(generate_hierarchical(seed), sc, "seed {seed}");
            assert!(sc.is_hierarchical(), "seed {seed}: flat scenario {sc}");
            let sites = sc.site.iter().collect::<HashSet<_>>().len();
            assert!(sites >= 2, "seed {seed}: single site in {sc}");
            assert!(sc.wan.is_some(), "seed {seed}: no WAN in {sc}");
            any_switch_split |= !sc.switch.is_empty();
            any_collective |= matches!(sc.workload, Workload::Collective { .. });
            any_p2p |= matches!(sc.workload, Workload::P2pRing { .. });
            any_faults |= !sc.faults.is_empty();
            assert_eq!(parse(&sc.to_string()).unwrap(), sc, "seed {seed}");
        }
        assert!(any_switch_split, "no switch split in 300 seeds");
        assert!(any_collective, "no hierarchical collective in 300 seeds");
        assert!(any_p2p, "no hierarchical p2p in 300 seeds");
        assert!(any_faults, "no hierarchical faults in 300 seeds");
    }

    #[test]
    fn crashy_collectives_always_crash_a_collective() {
        for seed in 0..300 {
            let sc = generate_crashy_collective(seed);
            assert_eq!(generate_crashy_collective(seed), sc, "seed {seed}");
            assert!(
                matches!(sc.workload, Workload::Collective { .. }),
                "seed {seed}: {sc}"
            );
            assert!(sc.nodes() >= 4, "seed {seed}: only {} nodes", sc.nodes());
            let crashes = sc
                .faults
                .iter()
                .filter(|ev| matches!(ev, FaultEvent::NodeCrash { .. }))
                .count();
            assert!(crashes >= 1, "seed {seed}: no crash in {sc}");
            // The repro line round-trips like any other scenario.
            assert_eq!(parse(&sc.to_string()).unwrap(), sc, "seed {seed}");
        }
    }
}
