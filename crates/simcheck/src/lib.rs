//! # simcheck — deterministic scenario fuzzing for the HMPI stack
//!
//! The workspace's layers (hetsim's network model, mpisim's virtual-time
//! MPI, hmpi's recon/selection runtime, perfmodel's cost engine, the
//! application kernels) are unit-tested in isolation; this crate tests
//! them *together*, the way a randomised integration suite would: draw a
//! random heterogeneous cluster, a random fault schedule and a random
//! workload from a seed, execute the whole stack, and check global
//! invariants that must hold for **every** scenario (see [`exec::check`]).
//!
//! Everything is reproducible from the seed:
//!
//! ```text
//! cargo run -p simcheck -- --seeds 500          # fuzz a seed range
//! cargo run -p simcheck -- --seed 0x1f2e        # re-run one seed
//! cargo run -p simcheck -- --replay corpus/     # replay saved repros
//! cargo run -p simcheck -- --seeds 500 --crashy # crashy-collective batch
//! cargo run -p simcheck -- --seeds 500 --hierarchy # multi-site batch
//! ```
//!
//! A failing seed is auto-shrunk (drop nodes → drop fault events → drop
//! link overrides → halve sizes; [`shrink_classified`] keeps the repro on
//! the violation kind that failed first) to a minimal one-line repro and
//! written to `corpus/`; the committed corpus replays as an ordinary
//! `cargo test -p simcheck` (see `tests/corpus.rs`).
//!
//! `--crashy` swaps in [`generate_crashy_collective`]: every seed is a
//! collective with node crashes, gating the fault-tolerant collective
//! contract (survivor bit-exactness or typed errors, unanimous agreement,
//! deterministic error surface) in CI.
//!
//! `--hierarchy` swaps in [`generate_hierarchical`]: every seed is a
//! multi-site cluster (slow WAN between sites, optional switch split
//! inside them), gating the hierarchy-aware collective selector — a
//! hierarchical pick must beat the flat argmin and execute with exact
//! values and `timeof` parity.

#![warn(missing_docs)]

pub mod exec;
pub mod gen;
pub mod scenario;
pub mod shrink;

pub use exec::{build_cluster, check, placement, Violation, TIMEOF_REL_BOUND};
pub use gen::{generate, generate_crashy_collective, generate_hierarchical};
pub use scenario::{parse, AppKind, LinkOverride, ParseError, Scenario, Workload};
pub use shrink::{shrink, shrink_classified};
