//! The simcheck CLI: fuzz a seed range, re-run one seed, or replay the
//! committed corpus. See the crate docs for the invariants checked.

use simcheck::{
    check, generate, generate_crashy_collective, generate_hierarchical, parse, shrink_classified,
    Scenario,
};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

struct Opts {
    seed: Option<u64>,
    seeds: Option<u64>,
    base: u64,
    replay: Option<PathBuf>,
    out: PathBuf,
    no_shrink: bool,
    print_only: bool,
    crashy: bool,
    hierarchy: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: simcheck [--seeds N] [--base SEED] [--seed SEED] [--replay PATH]\n\
         \x20               [--out DIR] [--no-shrink] [--print] [--crashy] [--hierarchy]\n\
         \n\
         --seeds N     fuzz N consecutive seeds starting at --base (default 500)\n\
         --base SEED   first seed of the range (default 0; hex with 0x prefix)\n\
         --seed SEED   run exactly one seed, verbosely\n\
         --replay PATH re-run every scenario line in a .scn file or directory\n\
         --out DIR     where minimized repros are written (default: the crate's corpus/)\n\
         --no-shrink   report failures without minimising them\n\
         --print       print the generated scenario line(s) without executing\n\
         --crashy      generate crashy-collective scenarios only (fault-tolerant\n\
         \x20              collective contract batch: every seed crashes nodes under\n\
         \x20              a collective)\n\
         --hierarchy   generate multi-site scenarios only (hierarchy-aware\n\
         \x20              collective selector batch: slow WAN between sites, fast\n\
         \x20              LAN within)"
    );
    std::process::exit(2)
}

fn parse_seed_arg(s: &str) -> u64 {
    let r = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        s.parse()
    };
    r.unwrap_or_else(|_| usage())
}

fn parse_opts() -> Opts {
    let mut opts = Opts {
        seed: None,
        seeds: None,
        base: 0,
        replay: None,
        out: PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/corpus")),
        no_shrink: false,
        print_only: false,
        crashy: false,
        hierarchy: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut val = || args.next().unwrap_or_else(|| usage());
        match arg.as_str() {
            "--seed" => opts.seed = Some(parse_seed_arg(&val())),
            "--seeds" => opts.seeds = Some(parse_seed_arg(&val())),
            "--base" => opts.base = parse_seed_arg(&val()),
            "--replay" => opts.replay = Some(PathBuf::from(val())),
            "--out" => opts.out = PathBuf::from(val()),
            "--no-shrink" => opts.no_shrink = true,
            "--print" => opts.print_only = true,
            "--crashy" => opts.crashy = true,
            "--hierarchy" => opts.hierarchy = true,
            _ => usage(),
        }
    }
    opts
}

/// Runs one scenario; on violation, optionally shrinks and writes the
/// repro. Returns false on failure.
fn run_scenario(sc: &Scenario, opts: &Opts) -> bool {
    let Err(v) = check(sc) else { return true };
    eprintln!("FAIL seed {:#x}: {v}", sc.seed);
    eprintln!("  scenario: {sc}");
    let minimal = if opts.no_shrink {
        sc.clone()
    } else {
        // Shrinking classifies every candidate by the invariant it
        // breaks, so the minimised repro keeps reproducing the *same*
        // violation kind wherever a same-kind reduction exists.
        let m = shrink_classified(sc, &|cand| {
            check(cand).err().map(|cv| cv.invariant.to_string())
        });
        eprintln!("  shrunk:   {m}");
        m
    };
    let final_v = check(&minimal).err().unwrap_or(v);
    let _ = std::fs::create_dir_all(&opts.out);
    let path = opts.out.join(format!("repro-{:016x}.scn", sc.seed));
    let body = format!(
        "# auto-minimised repro for seed {:#x}\n# violation: {final_v}\n{minimal}\n",
        sc.seed
    );
    match std::fs::write(&path, body) {
        Ok(()) => eprintln!("  repro written to {}", path.display()),
        Err(e) => eprintln!("  could not write repro: {e}"),
    }
    false
}

fn replay_file(path: &Path) -> Result<usize, String> {
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let mut ran = 0;
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let sc = parse(line)
            .map_err(|e| format!("{}:{}: {e}", path.display(), lineno + 1))?;
        if let Err(v) = check(&sc) {
            return Err(format!("{}:{}: {v}\n  {sc}", path.display(), lineno + 1));
        }
        ran += 1;
    }
    Ok(ran)
}

fn replay(path: &Path) -> ExitCode {
    let files: Vec<PathBuf> = if path.is_dir() {
        let mut v: Vec<PathBuf> = std::fs::read_dir(path)
            .unwrap_or_else(|e| {
                eprintln!("{}: {e}", path.display());
                std::process::exit(2)
            })
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.extension().is_some_and(|x| x == "scn"))
            .collect();
        v.sort();
        v
    } else {
        vec![path.to_path_buf()]
    };
    let mut total = 0;
    for f in &files {
        match replay_file(f) {
            Ok(n) => total += n,
            Err(msg) => {
                eprintln!("FAIL {msg}");
                return ExitCode::FAILURE;
            }
        }
    }
    println!(
        "replayed {total} scenario(s) from {} file(s): all invariants hold",
        files.len()
    );
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let opts = parse_opts();

    if let Some(path) = &opts.replay {
        return replay(path);
    }

    let seeds: Vec<u64> = match (opts.seed, opts.seeds) {
        (Some(s), _) => vec![s],
        (None, n) => {
            let n = n.unwrap_or(500);
            (0..n).map(|i| opts.base.wrapping_add(i)).collect()
        }
    };
    let gen_fn: fn(u64) -> Scenario = if opts.crashy {
        generate_crashy_collective
    } else if opts.hierarchy {
        generate_hierarchical
    } else {
        generate
    };

    if opts.print_only {
        for &seed in &seeds {
            println!("{}", gen_fn(seed));
        }
        return ExitCode::SUCCESS;
    }

    // Rank threads legitimately unwind through the deadlock watchdog and
    // crash-injection paths; the harness reports those as violations, so
    // silence the per-thread panic spew.
    std::panic::set_hook(Box::new(|_| {}));

    let started = Instant::now();
    let mut by_workload: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut failures = 0usize;
    for &seed in &seeds {
        let sc = gen_fn(seed);
        *by_workload.entry(sc.workload.label()).or_default() += 1;
        if !run_scenario(&sc, &opts) {
            failures += 1;
            break; // first failure wins; its seed reproduces it
        }
    }
    let elapsed = started.elapsed();
    let mix: Vec<String> = by_workload
        .iter()
        .map(|(k, v)| format!("{k}:{v}"))
        .collect();
    println!(
        "simcheck: {} scenario(s) in {:.1}s  [{}]",
        seeds.len().min(by_workload.values().sum::<usize>()),
        elapsed.as_secs_f64(),
        mix.join(" ")
    );
    if failures == 0 {
        println!("all invariants hold");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
