//! Scenario minimisation: once a seed fails, boil the case down.
//!
//! Greedy delta-debugging over the materialised scenario: try dropping
//! whole nodes (remapping links, faults and roots), then dropping fault
//! events, then dropping link overrides, then halving workload sizes —
//! keeping any edit under which the scenario *still fails*. The result is
//! the one-line repro written to the corpus.
//!
//! [`shrink_classified`] additionally keeps the repro *on topic*: the CLI
//! records which invariant broke first and the shrinker prefers
//! candidates that fail with the same violation kind, falling back to a
//! differently-failing candidate only when no same-kind reduction exists
//! — so a `fault-determinism` repro does not silently decay into an
//! easier-to-hit `no-panic` one mid-shrink.

use crate::scenario::{Scenario, Workload};
use hetsim::{FaultEvent, NodeId};

fn remap(id: NodeId, dropped: usize) -> NodeId {
    NodeId(if id.0 > dropped { id.0 - 1 } else { id.0 })
}

/// The scenario with node `i` removed: links, faults and workload
/// references are remapped; anything touching the node is dropped.
fn drop_node(sc: &Scenario, i: usize) -> Scenario {
    let mut out = sc.clone();
    out.speeds.remove(i);
    if !out.site.is_empty() {
        out.site.remove(i);
    }
    if !out.switch.is_empty() {
        out.switch.remove(i);
    }
    // A site emptied by the drop may leave a single-site "hierarchy";
    // that is fine — it behaves identically to a flat cluster, and the
    // dedicated flatten candidate removes the declaration entirely.
    let n = out.speeds.len();
    out.overrides.retain(|o| o.a != i && o.b != i);
    for o in &mut out.overrides {
        if o.a > i {
            o.a -= 1;
        }
        if o.b > i {
            o.b -= 1;
        }
    }
    out.faults.retain(|ev| match ev {
        FaultEvent::NodeCrash { node, .. } | FaultEvent::NodeSlowdown { node, .. } => node.0 != i,
        FaultEvent::LinkDegrade { from, to, .. } | FaultEvent::LinkDrop { from, to, .. } => {
            from.0 != i && to.0 != i
        }
    });
    for ev in &mut out.faults {
        match ev {
            FaultEvent::NodeCrash { node, .. } | FaultEvent::NodeSlowdown { node, .. } => {
                *node = remap(*node, i)
            }
            FaultEvent::LinkDegrade { from, to, .. } | FaultEvent::LinkDrop { from, to, .. } => {
                *from = remap(*from, i);
                *to = remap(*to, i);
            }
        }
    }
    if let Workload::Collective { root, .. } = &mut out.workload {
        *root %= n;
    }
    out
}

fn half(x: usize) -> Option<usize> {
    (x > 1).then_some(x / 2)
}

/// Smaller-workload variants, cheapest reductions first.
fn workload_shrinks(sc: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    let mut push = |w: Workload| {
        let mut cand = sc.clone();
        cand.workload = w;
        out.push(cand);
    };
    match sc.workload {
        Workload::P2pRing { elems, rounds } => {
            if let Some(e) = half(elems) {
                push(Workload::P2pRing { elems: e, rounds });
            }
            if let Some(r) = half(rounds) {
                push(Workload::P2pRing { elems, rounds: r });
            }
        }
        Workload::P2pRandom {
            pattern_seed,
            msgs,
            max_elems,
        } => {
            if let Some(m) = half(msgs) {
                push(Workload::P2pRandom {
                    pattern_seed,
                    msgs: m,
                    max_elems,
                });
            }
            if let Some(e) = half(max_elems) {
                push(Workload::P2pRandom {
                    pattern_seed,
                    msgs,
                    max_elems: e,
                });
            }
        }
        Workload::Collective { kind, elems, root } => {
            if let Some(e) = half(elems) {
                push(Workload::Collective {
                    kind,
                    elems: e,
                    root,
                });
            }
        }
        Workload::GroupCycle { model_seed, cycles } => {
            if let Some(c) = half(cycles) {
                push(Workload::GroupCycle {
                    model_seed,
                    cycles: c,
                });
            }
        }
        Workload::ReconRounds { units, rounds } => {
            if let Some(r) = half(rounds) {
                push(Workload::ReconRounds { units, rounds: r });
            }
        }
        Workload::ShrinkRecovery { rounds, units } => {
            if let Some(r) = half(rounds) {
                push(Workload::ShrinkRecovery { rounds: r, units });
            }
        }
        Workload::Selection { .. } | Workload::AppKernel { .. } => {}
    }
    out
}

fn candidates(sc: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    if sc.nodes() > 1 {
        for i in (0..sc.nodes()).rev() {
            out.push(drop_node(sc, i));
        }
    }
    for j in (0..sc.faults.len()).rev() {
        let mut cand = sc.clone();
        cand.faults.remove(j);
        out.push(cand);
    }
    for j in (0..sc.overrides.len()).rev() {
        let mut cand = sc.clone();
        cand.overrides.remove(j);
        out.push(cand);
    }
    if sc.ranks_per_node > 1 {
        let mut cand = sc.clone();
        cand.ranks_per_node = 1;
        out.push(cand);
    }
    if sc.mem.is_some() {
        let mut cand = sc.clone();
        cand.mem = None;
        out.push(cand);
    }
    if sc.is_hierarchical() {
        // Flatten the hierarchy entirely (every pair back on the base
        // link), and — cheaper — drop just the switch split within sites.
        let mut cand = sc.clone();
        cand.site.clear();
        cand.switch.clear();
        cand.wan = None;
        cand.backbone = None;
        out.push(cand);
        if !sc.switch.is_empty() {
            let mut cand = sc.clone();
            cand.switch.clear();
            cand.backbone = None;
            out.push(cand);
        }
    }
    out.extend(workload_shrinks(sc));
    out
}

/// Greedily minimises `sc` under `classify`, preferring candidates that
/// reproduce the *same* violation kind the original scenario failed with.
///
/// `classify` returns `Some(kind)` when a scenario still fails (the kind
/// is the violation's stable label) and `None` when it passes. On every
/// pass a same-kind candidate wins outright; when a pass yields only
/// differently-failing candidates, the first of those is taken as a
/// fallback — any failure is worth keeping, as in classic shrinking —
/// and the target kind follows it. Returns `sc` unchanged when it does
/// not fail at all. Bounded by a fixed probe budget so shrinking a slow
/// scenario cannot run away.
pub fn shrink_classified(
    sc: &Scenario,
    classify: &dyn Fn(&Scenario) -> Option<String>,
) -> Scenario {
    let Some(mut kind) = classify(sc) else {
        return sc.clone();
    };
    let mut current = sc.clone();
    let mut budget = 300usize;
    'outer: loop {
        let mut fallback: Option<(Scenario, String)> = None;
        for cand in candidates(&current) {
            if budget == 0 {
                return current;
            }
            budget -= 1;
            match classify(&cand) {
                Some(k) if k == kind => {
                    current = cand;
                    continue 'outer;
                }
                Some(k) if fallback.is_none() => fallback = Some((cand, k)),
                Some(_) | None => {}
            }
        }
        match fallback {
            Some((cand, k)) => {
                current = cand;
                kind = k;
            }
            None => return current,
        }
    }
}

/// Kind-oblivious greedy minimisation: any failing candidate is kept.
/// A thin wrapper over [`shrink_classified`] with a single anonymous
/// violation kind.
pub fn shrink(sc: &Scenario, fails: &dyn Fn(&Scenario) -> bool) -> Scenario {
    shrink_classified(sc, &|c| fails(c).then(String::new))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    /// An artificial failure predicate: "fails whenever node count >= 2 or
    /// any fault is scheduled". The only fixed points are (2 nodes, no
    /// faults) and (1 node, exactly 1 fault); the shrinker must land on
    /// one, and every intermediate must stay well-formed.
    #[test]
    fn shrinks_to_a_minimal_failing_case() {
        let fails = |s: &Scenario| s.nodes() >= 2 || !s.faults.is_empty();
        for seed in 0..60 {
            let sc = generate(seed);
            if !fails(&sc) {
                continue;
            }
            let min = shrink(&sc, &fails);
            assert!(fails(&min), "seed {seed}: shrank past the failure");
            assert!(
                (min.nodes() == 2 && min.faults.is_empty())
                    || (min.nodes() == 1 && min.faults.len() == 1),
                "seed {seed}: not minimal: {min}"
            );
            // The repro line round-trips.
            assert_eq!(crate::scenario::parse(&min.to_string()).unwrap(), min);
        }
    }

    /// Kind preference: with a classifier that calls >= 4 nodes "big" and
    /// anything faulty "faulty", shrinking a big case must stay "big" —
    /// draining faults, overrides and workload while 4 nodes remain —
    /// because every same-kind reduction is preferred over the "faulty"
    /// fallback that dropping a node would switch to.
    #[test]
    fn classified_shrink_prefers_the_original_kind() {
        let classify = |s: &Scenario| {
            if s.nodes() >= 4 {
                Some("big".to_string())
            } else if !s.faults.is_empty() {
                Some("faulty".to_string())
            } else {
                None
            }
        };
        let mut tried = 0;
        for seed in 0..200 {
            let sc = generate(seed);
            // Keep the probe count well inside the budget so the fixed
            // point is actually reached.
            if !(4..=12).contains(&sc.nodes()) {
                continue;
            }
            tried += 1;
            let min = shrink_classified(&sc, &classify);
            assert_eq!(
                classify(&min).as_deref(),
                Some("big"),
                "seed {seed}: left the original kind: {min}"
            );
            assert_eq!(min.nodes(), 4, "seed {seed}: not minimal: {min}");
            assert!(
                min.faults.is_empty() && min.overrides.is_empty(),
                "seed {seed}: same-kind reductions left on the table: {min}"
            );
            assert_eq!(crate::scenario::parse(&min.to_string()).unwrap(), min);
        }
        assert!(tried >= 10, "only {tried} scenarios exercised the shrinker");
    }

    #[test]
    fn dropping_nodes_keeps_references_in_range() {
        for seed in 0..120 {
            let sc = generate(seed);
            if sc.nodes() < 2 {
                continue;
            }
            let smaller = drop_node(&sc, sc.nodes() / 2);
            let n = smaller.nodes();
            for o in &smaller.overrides {
                assert!(o.a < n && o.b < n && o.a != o.b, "seed {seed}: {smaller}");
            }
            for ev in &smaller.faults {
                let ok = match ev {
                    FaultEvent::NodeCrash { node, .. }
                    | FaultEvent::NodeSlowdown { node, .. } => node.0 < n,
                    FaultEvent::LinkDegrade { from, to, .. }
                    | FaultEvent::LinkDrop { from, to, .. } => from.0 < n && to.0 < n,
                };
                assert!(ok, "seed {seed}: fault out of range in {smaller}");
            }
        }
    }
}
