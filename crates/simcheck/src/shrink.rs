//! Scenario minimisation: once a seed fails, boil the case down.
//!
//! Greedy delta-debugging over the materialised scenario: try dropping
//! whole nodes (remapping links, faults and roots), then dropping fault
//! events, then dropping link overrides, then halving workload sizes —
//! keeping any edit under which the scenario *still fails*. The result is
//! the one-line repro written to the corpus. The failure predicate is
//! whatever the caller passes (usually `check(sc).is_err()`), so a shrink
//! step may land on a *different* violation — any failure is worth
//! keeping, as in classic shrinking.

use crate::scenario::{Scenario, Workload};
use hetsim::{FaultEvent, NodeId};

fn remap(id: NodeId, dropped: usize) -> NodeId {
    NodeId(if id.0 > dropped { id.0 - 1 } else { id.0 })
}

/// The scenario with node `i` removed: links, faults and workload
/// references are remapped; anything touching the node is dropped.
fn drop_node(sc: &Scenario, i: usize) -> Scenario {
    let mut out = sc.clone();
    out.speeds.remove(i);
    let n = out.speeds.len();
    out.overrides.retain(|o| o.a != i && o.b != i);
    for o in &mut out.overrides {
        if o.a > i {
            o.a -= 1;
        }
        if o.b > i {
            o.b -= 1;
        }
    }
    out.faults.retain(|ev| match ev {
        FaultEvent::NodeCrash { node, .. } | FaultEvent::NodeSlowdown { node, .. } => node.0 != i,
        FaultEvent::LinkDegrade { from, to, .. } | FaultEvent::LinkDrop { from, to, .. } => {
            from.0 != i && to.0 != i
        }
    });
    for ev in &mut out.faults {
        match ev {
            FaultEvent::NodeCrash { node, .. } | FaultEvent::NodeSlowdown { node, .. } => {
                *node = remap(*node, i)
            }
            FaultEvent::LinkDegrade { from, to, .. } | FaultEvent::LinkDrop { from, to, .. } => {
                *from = remap(*from, i);
                *to = remap(*to, i);
            }
        }
    }
    if let Workload::Collective { root, .. } = &mut out.workload {
        *root %= n;
    }
    out
}

fn half(x: usize) -> Option<usize> {
    (x > 1).then_some(x / 2)
}

/// Smaller-workload variants, cheapest reductions first.
fn workload_shrinks(sc: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    let mut push = |w: Workload| {
        let mut cand = sc.clone();
        cand.workload = w;
        out.push(cand);
    };
    match sc.workload {
        Workload::P2pRing { elems, rounds } => {
            if let Some(e) = half(elems) {
                push(Workload::P2pRing { elems: e, rounds });
            }
            if let Some(r) = half(rounds) {
                push(Workload::P2pRing { elems, rounds: r });
            }
        }
        Workload::P2pRandom {
            pattern_seed,
            msgs,
            max_elems,
        } => {
            if let Some(m) = half(msgs) {
                push(Workload::P2pRandom {
                    pattern_seed,
                    msgs: m,
                    max_elems,
                });
            }
            if let Some(e) = half(max_elems) {
                push(Workload::P2pRandom {
                    pattern_seed,
                    msgs,
                    max_elems: e,
                });
            }
        }
        Workload::Collective { kind, elems, root } => {
            if let Some(e) = half(elems) {
                push(Workload::Collective {
                    kind,
                    elems: e,
                    root,
                });
            }
        }
        Workload::GroupCycle { model_seed, cycles } => {
            if let Some(c) = half(cycles) {
                push(Workload::GroupCycle {
                    model_seed,
                    cycles: c,
                });
            }
        }
        Workload::ReconRounds { units, rounds } => {
            if let Some(r) = half(rounds) {
                push(Workload::ReconRounds { units, rounds: r });
            }
        }
        Workload::ShrinkRecovery { rounds, units } => {
            if let Some(r) = half(rounds) {
                push(Workload::ShrinkRecovery { rounds: r, units });
            }
        }
        Workload::Selection { .. } | Workload::AppKernel { .. } => {}
    }
    out
}

fn candidates(sc: &Scenario) -> Vec<Scenario> {
    let mut out = Vec::new();
    if sc.nodes() > 1 {
        for i in (0..sc.nodes()).rev() {
            out.push(drop_node(sc, i));
        }
    }
    for j in (0..sc.faults.len()).rev() {
        let mut cand = sc.clone();
        cand.faults.remove(j);
        out.push(cand);
    }
    for j in (0..sc.overrides.len()).rev() {
        let mut cand = sc.clone();
        cand.overrides.remove(j);
        out.push(cand);
    }
    out.extend(workload_shrinks(sc));
    out
}

/// Greedily minimises `sc` under `fails`, re-running the checker after
/// every candidate edit. Bounded by a fixed probe budget so shrinking a
/// slow scenario cannot run away.
pub fn shrink(sc: &Scenario, fails: &dyn Fn(&Scenario) -> bool) -> Scenario {
    let mut current = sc.clone();
    let mut budget = 300usize;
    'outer: loop {
        for cand in candidates(&current) {
            if budget == 0 {
                return current;
            }
            budget -= 1;
            if fails(&cand) {
                current = cand;
                continue 'outer;
            }
        }
        return current;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    /// An artificial failure predicate: "fails whenever node count >= 2 or
    /// any fault is scheduled". The only fixed points are (2 nodes, no
    /// faults) and (1 node, exactly 1 fault); the shrinker must land on
    /// one, and every intermediate must stay well-formed.
    #[test]
    fn shrinks_to_a_minimal_failing_case() {
        let fails = |s: &Scenario| s.nodes() >= 2 || !s.faults.is_empty();
        for seed in 0..60 {
            let sc = generate(seed);
            if !fails(&sc) {
                continue;
            }
            let min = shrink(&sc, &fails);
            assert!(fails(&min), "seed {seed}: shrank past the failure");
            assert!(
                (min.nodes() == 2 && min.faults.is_empty())
                    || (min.nodes() == 1 && min.faults.len() == 1),
                "seed {seed}: not minimal: {min}"
            );
            // The repro line round-trips.
            assert_eq!(crate::scenario::parse(&min.to_string()).unwrap(), min);
        }
    }

    #[test]
    fn dropping_nodes_keeps_references_in_range() {
        for seed in 0..120 {
            let sc = generate(seed);
            if sc.nodes() < 2 {
                continue;
            }
            let smaller = drop_node(&sc, sc.nodes() / 2);
            let n = smaller.nodes();
            for o in &smaller.overrides {
                assert!(o.a < n && o.b < n && o.a != o.b, "seed {seed}: {smaller}");
            }
            for ev in &smaller.faults {
                let ok = match ev {
                    FaultEvent::NodeCrash { node, .. }
                    | FaultEvent::NodeSlowdown { node, .. } => node.0 < n,
                    FaultEvent::LinkDegrade { from, to, .. }
                    | FaultEvent::LinkDrop { from, to, .. } => from.0 < n && to.0 < n,
                };
                assert!(ok, "seed {seed}: fault out of range in {smaller}");
            }
        }
    }
}
