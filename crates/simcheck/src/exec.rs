//! Scenario execution and the invariants it checks.
//!
//! [`check`] builds the scenario's cluster, runs its workload, and
//! verifies the global invariants of the stack:
//!
//! * **no-panic / no-hang** — whatever the scenario does, the stack
//!   terminates and reports typed errors; any panic that reaches the
//!   harness (including the deadlock watchdog's) is a violation;
//! * **fault-free completion** — with no injected faults, every rank
//!   finishes without error;
//! * **value integrity** — payloads arrive bit-exact, reductions agree
//!   bit-for-bit with a serial ascending-rank fold across *every*
//!   eligible algorithm, and HMPI group selection never changes an
//!   application kernel's numerics (placement neutrality);
//! * **timeof parity** — fault-free, the engine's `predict_collective`
//!   price tracks the measured virtual makespan within
//!   [`TIMEOF_REL_BOUND`] under *every* contention model (the pricer
//!   replays the transport's endpoint-causal grant/settle arbitration,
//!   so shared-NIC, shared-bus and memory-bus queueing are all priced);
//! * **fault-tolerant collective contract** — with injected faults, a
//!   collective's survivors either hold the bit-exact result or a typed
//!   fault-shaped error (never a torn output), a post-collective
//!   ULFM-style agreement round reaches one unanimous verdict consistent
//!   with the per-rank outcomes, and re-running the same scenario
//!   replays the identical error surface and virtual makespan under
//!   every contention model — contended transfers are granted in
//!   endpoint-causal order, never host-schedule order;
//! * **engine/naive equivalence** — the compiled selection engine picks
//!   exactly the mapping of the naive interpreter path;
//! * **trace well-formedness** — Chrome exports parse, timestamps are
//!   monotone and spans nest (container-first at start ties);
//! * **estimate discipline** — recon advances the estimate generation
//!   (exactly +1 fault-free; more when deaths are also recorded) and
//!   leaves finite, positive speeds for available nodes;
//! * **arena hygiene** — after every run, all rendezvous buffer leases
//!   have returned to the universe's pool (`report.pool.outstanding == 0`);
//!   a leak means a payload escaped the envelope lifecycle.

use crate::scenario::{AppKind, Scenario, Workload};
use hetsim::{
    Cluster, ClusterBuilder, FaultEvent, FaultPlan, Link, NodeId, Protocol, SpeedEstimates,
    TopologyInfo, Trace,
};
use hmpi::{select_mapping, select_mapping_naive, HmpiRuntime, MappingAlgorithm, SelectionCtx};
use mpisim::{CollectiveAlgo, CollectiveKind, MpiError, PoolReport, ReduceOp, Universe, UniverseConfig};
use perfmodel::collective::algos_for;
use perfmodel::ModelBuilder;
use rand::{Rng, SeedableRng, StdRng};
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

/// Relative `timeof`-vs-measured bound for fault-free collectives on
/// every contention model (matches the collectives bench's CI gate).
pub const TIMEOF_REL_BOUND: f64 = 0.05;

/// A violated invariant: what broke and how.
#[derive(Clone, Debug, PartialEq)]
pub struct Violation {
    /// Which invariant (stable kebab-case label).
    pub invariant: &'static str,
    /// Human-readable specifics.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

fn viol(invariant: &'static str, detail: impl Into<String>) -> Violation {
    Violation {
        invariant,
        detail: detail.into(),
    }
}

/// A per-rank workload failure: either a genuine value bug (always a
/// violation) or a typed runtime error (allowed when faults are injected).
type RankFail = (bool, String);

fn value_bug(msg: impl Into<String>) -> RankFail {
    (true, msg.into())
}

fn typed(msg: impl fmt::Debug) -> RankFail {
    (false, format!("{msg:?}"))
}

/// Runs the scenario and checks every applicable invariant.
///
/// # Errors
/// The first [`Violation`] found. Panics anywhere in the stack (including
/// the simulator's deadlock watchdog) are caught and reported as
/// `no-panic` violations rather than unwinding into the harness.
pub fn check(sc: &Scenario) -> Result<(), Violation> {
    match panic::catch_unwind(AssertUnwindSafe(|| run_workload(sc))) {
        Ok(r) => r,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| payload.downcast_ref::<&str>().copied())
                .unwrap_or("<non-string panic>");
            Err(viol("no-panic", msg.to_string()))
        }
    }
}

/// Materialises the scenario's cluster: speeds, links, overrides, the
/// optional memory bus, contention model and fault plan. Public so the
/// integration tests and benches can run scenarios against the exact
/// cluster the checker uses.
pub fn build_cluster(sc: &Scenario) -> Arc<Cluster> {
    let mut b = ClusterBuilder::new();
    for (i, &s) in sc.speeds.iter().enumerate() {
        b = b.processor(
            hetsim::Processor::new(format!("f{i:02}"), s).with_slots(sc.ranks_per_node.max(1)),
        );
    }
    b = b.all_to_all(Link::new(sc.base_lat, sc.base_bw, Protocol::Tcp));
    // The declared hierarchy resolves pair links exactly like
    // `TopologyBuilder::build`: intra-switch pairs ride the base LAN,
    // inter-switch pairs the backbone, inter-site pairs the WAN — with
    // explicit `ov=` overrides (applied after) still winning.
    let switch = sc.effective_switch();
    if sc.is_hierarchical() {
        let wan = sc.wan.map(|(lat, bw)| Link::new(lat, bw, Protocol::Tcp));
        let bb = sc
            .backbone
            .map(|(lat, bw)| Link::new(lat, bw, Protocol::Tcp));
        for i in 0..sc.nodes() {
            for j in (i + 1)..sc.nodes() {
                let link = if sc.site[i] != sc.site[j] {
                    wan.clone()
                } else if switch[i] != switch[j] {
                    bb.clone().or_else(|| wan.clone())
                } else {
                    None
                };
                if let Some(link) = link {
                    b = b.link_between(i, j, link);
                }
            }
        }
    }
    for o in &sc.overrides {
        b = b.link_between(o.a, o.b, Link::new(o.lat, o.bw, Protocol::Tcp));
    }
    if let Some((lat, bw)) = sc.mem {
        b = b.mem_bus(Link::new(lat, bw, Protocol::SharedMemory));
    }
    let mut cluster = b
        .contention(sc.contention)
        .faults(FaultPlan::new(sc.faults.clone()))
        .build();
    if sc.is_hierarchical() {
        cluster = cluster.with_topology(TopologyInfo::new(sc.site.clone(), switch));
    }
    Arc::new(cluster)
}

/// Block placement: ranks `r*k..(r+1)*k` live on node `r`, so ring
/// neighbours and collective round partners land on shared nodes and
/// exercise the memory-bus domain.
pub fn placement(sc: &Scenario) -> Vec<NodeId> {
    let k = sc.ranks_per_node.max(1);
    (0..sc.nodes() * k).map(|r| NodeId(r / k)).collect()
}

fn run_workload(sc: &Scenario) -> Result<(), Violation> {
    match sc.workload.clone() {
        Workload::P2pRing { elems, rounds } => check_ring(sc, elems, rounds),
        Workload::P2pRandom {
            pattern_seed,
            msgs,
            max_elems,
        } => check_rand(sc, pattern_seed, msgs, max_elems),
        Workload::Collective { kind, elems, root } => check_collective(sc, kind, elems, root),
        Workload::GroupCycle { model_seed, cycles } => check_group_cycle(sc, model_seed, cycles),
        Workload::ReconRounds { units, rounds } => check_recon(sc, units, rounds),
        Workload::Selection {
            model_seed,
            est_seed,
        } => check_selection(sc, model_seed, est_seed),
        Workload::ShrinkRecovery { rounds, units } => check_shrink(sc, rounds, units),
        Workload::AppKernel { app } => check_app(sc, app),
    }
}

/// Arena hygiene: after a run every rendezvous lease must be back in the
/// pool — the universe drains all mailboxes (including messages stranded
/// by faults) before snapshotting the report, so an outstanding lease is
/// a payload that escaped the envelope lifecycle.
fn judge_pool(tag: &str, pool: &PoolReport) -> Result<(), Violation> {
    if pool.outstanding != 0 {
        return Err(viol(
            "pool-leak",
            format!(
                "{tag}: {} of {} leases still outstanding after the run \
                 (high water {})",
                pool.outstanding, pool.leased, pool.high_water
            ),
        ));
    }
    Ok(())
}

/// Turns per-rank results into violations: value bugs always, typed
/// errors only when the scenario is fault-free.
fn judge_ranks(sc: &Scenario, results: &[Result<(), RankFail>]) -> Result<(), Violation> {
    for (rank, r) in results.iter().enumerate() {
        match r {
            Ok(()) => {}
            Err((true, msg)) => {
                return Err(viol("value-integrity", format!("rank {rank}: {msg}")))
            }
            Err((false, msg)) if sc.faults.is_empty() => {
                return Err(viol(
                    "fault-free-completion",
                    format!("rank {rank} errored on a fault-free run: {msg}"),
                ))
            }
            Err(_) => {}
        }
    }
    Ok(())
}

/// Chrome-trace well-formedness: the export parses, carries the complete
/// per-event field set, timestamps are monotone, and per-rank spans nest
/// once start ties are canonicalised container-first.
fn validate_trace(trace: &Trace, ranks: usize) -> Result<(), Violation> {
    use hetsim::json::{parse, JsonValue};
    let doc = parse(&trace.to_chrome_json())
        .map_err(|e| viol("trace-export", format!("export does not parse: {e}")))?;
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| viol("trace-export", "missing traceEvents array"))?;
    if events.len() != trace.events.len() {
        return Err(viol(
            "trace-export",
            format!(
                "exported {} events, trace holds {}",
                events.len(),
                trace.events.len()
            ),
        ));
    }
    let mut global_last = 0.0f64;
    for ev in events {
        let field = |k: &str| {
            ev.get(k)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| viol("trace-export", format!("event missing numeric {k:?}")))
        };
        if ev.get("ph").and_then(JsonValue::as_str) != Some("X") {
            return Err(viol("trace-export", "event is not a complete-span (ph X)"));
        }
        let tid = field("tid")?;
        let (ts, dur) = (field("ts")?, field("dur")?);
        if tid.fract() != 0.0 || (tid as usize) >= ranks {
            return Err(viol("trace-export", format!("bad tid {tid}")));
        }
        if ts < 0.0 || dur < 0.0 {
            return Err(viol("trace-export", format!("negative ts/dur: {ts}/{dur}")));
        }
        if ts < global_last {
            return Err(viol("trace-export", format!("ts {ts} not monotone")));
        }
        global_last = ts;
    }
    // Span nesting per rank, on the raw trace (exact virtual times).
    let eps = 1e-9;
    for rank in 0..ranks {
        let mut spans: Vec<(f64, f64)> = trace
            .events
            .iter()
            .filter(|e| e.rank == rank)
            .map(|e| (e.start.as_secs(), (e.start + e.dur).as_secs()))
            .collect();
        spans.sort_by(|a, b| a.0.total_cmp(&b.0).then(b.1.total_cmp(&a.1)));
        let mut open: Vec<f64> = Vec::new();
        for &(s, e) in &spans {
            while open.last().is_some_and(|&oe| s >= oe - eps) {
                open.pop();
            }
            if let Some(&oe) = open.last() {
                if e > oe + eps {
                    return Err(viol(
                        "trace-nesting",
                        format!("rank {rank}: span [{s}, {e}] partially overlaps [.., {oe}]"),
                    ));
                }
            }
            open.push(e);
        }
    }
    Ok(())
}

fn ring_payload(rank: usize, elems: usize) -> Vec<i64> {
    (0..elems).map(|i| (rank * 1_000_003 + i) as i64).collect()
}

fn f64_payload(rank: usize, elems: usize) -> Vec<f64> {
    (0..elems)
        .map(|i| ((rank * 31 + i) % 97) as f64 * 0.5 + 1.0)
        .collect()
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn check_ring(sc: &Scenario, elems: usize, rounds: usize) -> Result<(), Violation> {
    let n = sc.ranks();
    let u = Universe::with_config(
        build_cluster(sc),
        UniverseConfig::new().placement(placement(sc)).tracing(true),
    );
    let report = u.run(move |proc| -> Result<(), RankFail> {
        let world = proc.world();
        let me = world.rank();
        let (right, left) = ((me + 1) % n, (me + n - 1) % n);
        for round in 0..rounds {
            let (rx, _) = world
                .sendrecv::<i64, i64>(&ring_payload(me, elems), right, round as i32, left, round as i32)
                .map_err(typed)?;
            if rx != ring_payload(left, elems) {
                return Err(value_bug(format!(
                    "round {round}: payload from {left} corrupted"
                )));
            }
        }
        Ok(())
    });
    judge_pool("p2p-ring", &report.pool)?;
    judge_ranks(sc, &report.results)?;
    validate_trace(report.trace.as_ref().expect("tracing enabled"), n)
}

fn check_rand(
    sc: &Scenario,
    pattern_seed: u64,
    msgs: usize,
    max_elems: usize,
) -> Result<(), Violation> {
    let n = sc.ranks();
    if n < 2 {
        return Ok(()); // no pairs to message
    }
    // The pattern every rank walks in the same global order: (src, dst,
    // elems, tag). Sends are eager, so walking in order cannot deadlock.
    let mut rng = StdRng::seed_from_u64(pattern_seed);
    let pattern: Vec<(usize, usize, usize)> = (0..msgs)
        .map(|_| {
            let src = rng.random_range(0..n);
            let dst = (src + rng.random_range(1..n)) % n;
            (src, dst, rng.random_range(1..max_elems + 1))
        })
        .collect();
    let u = Universe::with_config(
        build_cluster(sc),
        UniverseConfig::new().placement(placement(sc)).tracing(true),
    );
    let pat = pattern.clone();
    let report = u.run(move |proc| -> Result<(), RankFail> {
        let world = proc.world();
        let me = world.rank();
        for (i, &(src, dst, elems)) in pat.iter().enumerate() {
            if me == src {
                world
                    .send(&ring_payload(i, elems), dst, i as i32)
                    .map_err(typed)?;
            } else if me == dst {
                let (rx, status) = world.recv::<i64>(src, i as i32).map_err(typed)?;
                if rx != ring_payload(i, elems) {
                    return Err(value_bug(format!("msg {i}: payload corrupted")));
                }
                if status.source != src || status.tag != i as i32 {
                    return Err(value_bug(format!(
                        "msg {i}: status says ({}, {}), expected ({src}, {i})",
                        status.source, status.tag
                    )));
                }
            }
        }
        Ok(())
    });
    judge_pool("p2p-random", &report.pool)?;
    judge_ranks(sc, &report.results)?;
    validate_trace(report.trace.as_ref().expect("tracing enabled"), n)
}

/// Serial ascending-rank left fold — the reduction reference every
/// algorithm must match bit-for-bit.
fn serial_fold(n: usize, elems: usize) -> Vec<f64> {
    let mut acc = f64_payload(0, elems);
    for r in 1..n {
        let p = f64_payload(r, elems);
        for (a, b) in acc.iter_mut().zip(&p) {
            *a += b;
        }
    }
    acc
}

/// One rank's record of a collective run: the algorithm's price, the
/// collective's typed error (`None` = completed and value-checked), and —
/// on fault-bearing runs only — the post-collective agreement verdict
/// (`Err` = the rank could not finish the round, e.g. its own node died).
type FtRecord = (f64, Option<String>, Option<Result<(bool, Vec<usize>), String>>);

/// Typed errors a fault plan is allowed to surface. Anything else escaping
/// a crashy collective (truncation, count mismatches, torn internal state)
/// is a contract violation, not a legal fault outcome.
fn fault_shaped(msg: &str) -> bool {
    ["NodeFailed", "PeerTerminated", "LinkDown", "Timeout", "Deadlock"]
        .iter()
        .any(|p| msg.starts_with(p))
}

fn check_collective(
    sc: &Scenario,
    kind: CollectiveKind,
    elems: usize,
    root: usize,
) -> Result<(), Violation> {
    let n = sc.ranks();
    let root = root % n; // the shrinker may have dropped the root's node
    let has_faults = !sc.faults.is_empty();
    let cluster = build_cluster(sc);
    let rank_placement = placement(sc);
    // Per-rank contribution length and the element count the predictor is
    // asked to price (total payload for allgather, as in the bench).
    let contrib_len = match kind {
        CollectiveKind::Allgather => (elems / n).max(1),
        _ => elems,
    };
    let pred_elems = match kind {
        CollectiveKind::Allgather => contrib_len * n,
        _ => elems,
    };
    let expected: Vec<f64> = match kind {
        CollectiveKind::Bcast => f64_payload(root, contrib_len),
        CollectiveKind::Reduce | CollectiveKind::Allreduce => serial_fold(n, contrib_len),
        CollectiveKind::Allgather => (0..n).flat_map(|r| f64_payload(r, contrib_len)).collect(),
    };

    let algos = algos_for(kind, n);
    let mut predictions: Vec<(CollectiveAlgo, f64)> = Vec::new();
    for &algo in &algos {
        // Factored so fault-bearing runs can be replayed for the
        // determinism invariant: same cluster, same fault plan, same
        // closure — the second run must reproduce the first bit-for-bit.
        let run_once = || {
            let u = Universe::with_config(
                cluster.clone(),
                UniverseConfig::new()
                    .placement(rank_placement.clone())
                    .tracing(true),
            );
            let exp = expected.clone();
            u.run(move |proc| -> Result<FtRecord, RankFail> {
                let world = proc.world();
                let me = world.rank();
                let predicted = world
                    .predict_collective_with(kind, algo, root, pred_elems, 8)
                    .map_err(typed)?;
                let out: Result<Option<Vec<f64>>, MpiError> = (|| {
                    Ok(match kind {
                        CollectiveKind::Bcast => {
                            let mut buf = f64_payload(me, contrib_len);
                            world.bcast_into_with(algo, &mut buf, root)?;
                            Some(buf)
                        }
                        CollectiveKind::Reduce => world.reduce_eq_f64_with(
                            algo,
                            &f64_payload(me, contrib_len),
                            ReduceOp::Sum,
                            root,
                        )?,
                        CollectiveKind::Allreduce => Some(world.allreduce_eq_f64_with(
                            algo,
                            &f64_payload(me, contrib_len),
                            ReduceOp::Sum,
                        )?),
                        CollectiveKind::Allgather => Some(
                            world.allgather_eq_with(algo, &f64_payload(me, contrib_len))?,
                        ),
                    })
                })();
                let coll_err = match out {
                    Ok(v) => {
                        // Survivor value integrity: a rank that reports
                        // success must hold the bit-exact result, faults
                        // or not — no torn outputs.
                        let should_have_output =
                            !matches!(kind, CollectiveKind::Reduce) || me == root;
                        match v {
                            Some(v) if should_have_output => {
                                if bits(&v) != bits(&exp) {
                                    return Err(value_bug(format!(
                                        "{}/{} diverges from the serial reference",
                                        kind.name(),
                                        algo.name()
                                    )));
                                }
                            }
                            None if !should_have_output => {}
                            _ => {
                                return Err(value_bug(format!(
                                    "{}/{}: output presence wrong for rank {me} (root {root})",
                                    kind.name(),
                                    algo.name()
                                )))
                            }
                        }
                        None
                    }
                    Err(e) if has_faults => Some(format!("{e:?}")),
                    Err(e) => return Err(typed(e)),
                };
                // Fault-tolerant contract: after a crashy collective every
                // surviving rank must still reach a verdict on whether the
                // operation committed, via a ULFM-style agreement round.
                let agreement = has_faults.then(|| {
                    world
                        .agree(coll_err.is_none())
                        .map(|a| (a.flag, a.failed))
                        .map_err(|e| format!("{e:?}"))
                });
                Ok((predicted, coll_err, agreement))
            })
        };
        let report = run_once();
        judge_pool(kind.name(), &report.pool)?;
        let judged: Vec<Result<(), RankFail>> = report
            .results
            .iter()
            .map(|r| match r {
                Ok((_, Some(e), _)) => Err((false, e.clone())),
                Ok(_) => Ok(()),
                Err(f) => Err(f.clone()),
            })
            .collect();
        judge_ranks(sc, &judged)?;
        validate_trace(report.trace.as_ref().expect("tracing enabled"), n)?;
        if has_faults {
            check_fault_contract(kind, algo, &report.results)?;
        }
        // Same seed, same plan: the per-rank error surface, the agreement
        // verdicts and the virtual makespan must replay exactly — on
        // every contention model. Grants are endpoint-causal (each rank's
        // frontier advances only with its own program order), so the host
        // thread schedule cannot leak into clocks even near a crash
        // boundary.
        if has_faults {
            let replay = run_once();
            judge_pool(kind.name(), &replay.pool)?;
            if replay.results != report.results || replay.makespan != report.makespan {
                let first_diff = (0..n)
                    .find(|&r| replay.results[r] != report.results[r])
                    .map(|r| {
                        format!(
                            "rank {r}: {:?} then {:?}",
                            report.results[r], replay.results[r]
                        )
                    })
                    .unwrap_or_else(|| {
                        format!(
                            "makespan {} then {}",
                            report.makespan.as_secs(),
                            replay.makespan.as_secs()
                        )
                    });
                return Err(viol(
                    "fault-determinism",
                    format!(
                        "{}/{}: two runs of the same faulty scenario diverged ({first_diff})",
                        kind.name(),
                        algo.name()
                    ),
                ));
            }
        }
        if let Ok((predicted, _, _)) = &report.results[0] {
            predictions.push((algo, *predicted));
            // `timeof` parity: the pricer replays the exact schedule with
            // the transport's own grant/settle arbitration, so fault-free
            // it must track the measured virtual makespan under every
            // contention model.
            if sc.faults.is_empty() {
                let measured = report.makespan.as_secs();
                if (predicted - measured).abs() > TIMEOF_REL_BOUND * measured + 1e-9 {
                    return Err(viol(
                        "timeof-parity",
                        format!(
                            "{}/{} on {n} ranks, {pred_elems} elems: predicted {predicted:.6e}s, \
                             measured {measured:.6e}s",
                            kind.name(),
                            algo.name()
                        ),
                    ));
                }
            }
        }
    }

    // The Auto selector must pick the cheapest priced algorithm (first in
    // tie-break order), and running it must preserve the values too. The
    // comparison only holds when every algorithm was priced — under faults
    // rank 0 may legitimately die before pricing.
    if predictions.len() == algos.len() {
        let best = predictions
            .iter()
            .copied()
            .reduce(|acc, cand| if cand.1 < acc.1 { cand } else { acc })
            .expect("non-empty");
        let u = Universe::with_config(cluster, UniverseConfig::new().placement(rank_placement));
        let report = u.run(move |proc| {
            proc.world()
                .predict_collective(kind, root, pred_elems, 8)
                .map_err(typed)
        });
        judge_pool("auto-selection", &report.pool)?;
        match &report.results[0] {
            Ok((CollectiveAlgo::Hierarchical, t)) => {
                // The hierarchy-aware selector may leave the flat family
                // entirely — legal only when the (inferred or declared)
                // hierarchical plan is *strictly* cheaper than every flat
                // algorithm, and the prediction must survive execution.
                if *t >= best.1 {
                    return Err(viol(
                        "auto-selection",
                        format!(
                            "Auto picked hierarchical@{t:.6e} but flat argmin {}@{:.6e} \
                             is no worse",
                            best.0.name(),
                            best.1
                        ),
                    ));
                }
                if !has_faults {
                    check_hier_execution(sc, kind, root, contrib_len, *t, &expected)?;
                }
            }
            Ok((algo, t)) => {
                if *algo != best.0 || t.to_bits() != best.1.to_bits() {
                    return Err(viol(
                        "auto-selection",
                        format!(
                            "Auto picked {}@{t:.6e}, manual argmin is {}@{:.6e}",
                            algo.name(),
                            best.0.name(),
                            best.1
                        ),
                    ));
                }
            }
            // Rank 0 died between the per-algo pricings and this one
            // (both price at virtual time zero, so this is unreachable
            // in practice, but a dead rank's typed error is always
            // legal under faults).
            Err((_, msg)) if has_faults => {
                let _ = msg;
            }
            Err((_, msg)) => {
                return Err(viol(
                    "auto-selection",
                    format!("Auto pricing failed: {msg}"),
                ))
            }
        }
    }
    Ok(())
}

/// Executes a collective that the Auto selector routed to a hierarchical
/// plan and holds it to the same bar as the flat algorithms: every rank's
/// values are bit-identical to the reference fold, and the fault-free
/// measured makespan tracks the prediction within the `timeof` parity
/// bound (the pricer replays the exact gather/movement schedule with the
/// transport's own grant/settle arbitration).
fn check_hier_execution(
    sc: &Scenario,
    kind: CollectiveKind,
    root: usize,
    contrib_len: usize,
    predicted: f64,
    expected: &[f64],
) -> Result<(), Violation> {
    let u = Universe::with_config(
        build_cluster(sc),
        UniverseConfig::new().placement(placement(sc)),
    );
    let exp_bits = bits(expected);
    let report = u.run(move |proc| -> Result<Option<Vec<u64>>, RankFail> {
        let world = proc.world();
        let contrib = f64_payload(world.rank(), contrib_len);
        let out = match kind {
            CollectiveKind::Bcast => {
                let mut buf = contrib;
                world.bcast_into(&mut buf, root).map_err(typed)?;
                Some(buf)
            }
            CollectiveKind::Reduce => world
                .reduce_eq_f64(&contrib, ReduceOp::Sum, root)
                .map_err(typed)?,
            CollectiveKind::Allreduce => Some(
                world
                    .allreduce_eq_f64(&contrib, ReduceOp::Sum)
                    .map_err(typed)?,
            ),
            CollectiveKind::Allgather => Some(world.allgather_eq(&contrib).map_err(typed)?),
        };
        Ok(out.map(|v| bits(&v)))
    });
    judge_pool("auto-selection", &report.pool)?;
    for (rank, r) in report.results.iter().enumerate() {
        match r {
            Ok(Some(got)) if *got != exp_bits => {
                return Err(viol(
                    "auto-selection",
                    format!(
                        "hierarchical {} corrupted values on rank {rank}",
                        kind.name()
                    ),
                ));
            }
            Ok(_) => {}
            Err((_, msg)) => {
                return Err(viol(
                    "auto-selection",
                    format!("hierarchical {} failed on rank {rank}: {msg}", kind.name()),
                ));
            }
        }
    }
    let measured = report.makespan.as_secs();
    if (predicted - measured).abs() > TIMEOF_REL_BOUND * measured + 1e-9 {
        return Err(viol(
            "timeof-parity",
            format!(
                "hierarchical {}: predicted {predicted:.6e}s, measured {measured:.6e}s",
                kind.name()
            ),
        ));
    }
    Ok(())
}

/// Fault-bearing collective invariants: every typed error is
/// fault-shaped, agreement verdicts are unanimous across the ranks that
/// completed the round, and the agreed flag equals the AND of the
/// recorded outcomes of the members that deposited.
fn check_fault_contract(
    kind: CollectiveKind,
    algo: CollectiveAlgo,
    results: &[Result<FtRecord, RankFail>],
) -> Result<(), Violation> {
    let tag = format!("{}/{}", kind.name(), algo.name());
    for (rank, r) in results.iter().enumerate() {
        let errs: [Option<&String>; 2] = match r {
            Ok((_, e, ag)) => [
                e.as_ref(),
                match ag {
                    Some(Err(m)) => Some(m),
                    _ => None,
                },
            ],
            Err((false, m)) => [Some(m), None],
            Err((true, _)) => [None, None], // value bugs were judged already
        };
        for msg in errs.into_iter().flatten() {
            if !fault_shaped(msg) {
                return Err(viol(
                    "fault-error-surface",
                    format!("{tag}: rank {rank} surfaced a non-fault error under faults: {msg}"),
                ));
            }
        }
    }
    let agreements: Vec<(usize, &(bool, Vec<usize>))> = results
        .iter()
        .enumerate()
        .filter_map(|(rank, r)| match r {
            Ok((_, _, Some(Ok(a)))) => Some((rank, a)),
            _ => None,
        })
        .collect();
    if let Some((first_rank, first)) = agreements.first() {
        for (rank, a) in &agreements[1..] {
            if a != first {
                return Err(viol(
                    "agreement-unanimity",
                    format!(
                        "{tag}: rank {rank} agreed {a:?}, rank {first_rank} agreed {first:?}"
                    ),
                ));
            }
        }
        // A member outside `failed` deposited its recorded outcome, so
        // the AND-fold is recomputable from the per-rank records. (Ranks
        // that unwound before depositing are observed dead and land in
        // `failed`; ranks that deposited and died afterwards still carry
        // their record.)
        let (flag, failed) = first;
        let expected_flag = results.iter().enumerate().all(|(rank, r)| match r {
            Ok((_, err, _)) if !failed.contains(&rank) => err.is_none(),
            _ => true,
        });
        if *flag != expected_flag {
            return Err(viol(
                "agreement-unanimity",
                format!(
                    "{tag}: agreed flag {flag} contradicts the recorded outcomes \
                     (expected {expected_flag}, failed {failed:?})"
                ),
            ));
        }
    }
    Ok(())
}

fn check_group_cycle(sc: &Scenario, model_seed: u64, cycles: usize) -> Result<(), Violation> {
    let n = sc.nodes();
    let rt = HmpiRuntime::new(build_cluster(sc));
    let report = rt.run(move |h| -> Result<(), RankFail> {
        if let Err(e) = h.recon(1.0) {
            // Typed failures are legal under faults; every rank sees the
            // same verdict, so returning keeps the run collective.
            return Err(typed(e));
        }
        for c in 0..cycles {
            let model = ModelBuilder::random(model_seed.wrapping_add(c as u64), n.min(5));
            match h.group_create(&model) {
                Ok(g) => {
                    let members = g.members().to_vec();
                    let mut seen = std::collections::HashSet::new();
                    for &m in &members {
                        if m >= n || !seen.insert(m) {
                            return Err(value_bug(format!(
                                "cycle {c}: bad member list {members:?} (world size {n})"
                            )));
                        }
                    }
                    if !g.predicted_time().is_finite() || g.predicted_time() < 0.0 {
                        return Err(value_bug(format!(
                            "cycle {c}: predicted time {} is not a sane duration",
                            g.predicted_time()
                        )));
                    }
                    let me_in = members.contains(&h.world().rank());
                    if me_in != g.is_member() {
                        return Err(value_bug(format!(
                            "cycle {c}: is_member() disagrees with the member list"
                        )));
                    }
                    if g.is_member() {
                        h.group_free(g).map_err(typed)?;
                    }
                }
                Err(e) => return Err(typed(e)),
            }
        }
        Ok(())
    });
    judge_pool("group-cycle", &report.pool)?;
    judge_ranks(sc, &report.results)
}

fn check_recon(sc: &Scenario, units: f64, rounds: usize) -> Result<(), Violation> {
    let n = sc.nodes();
    let rt = HmpiRuntime::new(build_cluster(sc));
    let report = rt.run(move |h| -> Result<(), RankFail> {
        let mut last_gen = h.estimates().generation();
        let mut failed = false;
        for round in 0..rounds {
            match h.recon(units) {
                Ok(()) => {
                    // The generation is a *change* counter: the refresh
                    // bumps it once, and each death the failure detector
                    // observes bumps it again. Fault-free that means
                    // exactly +1 per recon; with faults it must still
                    // strictly increase.
                    let gen = h.estimates().generation();
                    let ok = if sc.faults.is_empty() {
                        gen == last_gen + 1
                    } else {
                        gen > last_gen
                    };
                    if !ok {
                        return Err(value_bug(format!(
                            "round {round}: generation went {last_gen} -> {gen}"
                        )));
                    }
                    last_gen = gen;
                    let snap = h.estimates().snapshot();
                    if snap.len() != n {
                        return Err(value_bug(format!(
                            "round {round}: snapshot has {} entries for {n} nodes",
                            snap.len()
                        )));
                    }
                    for (i, &s) in snap.iter().enumerate() {
                        if !s.is_finite() {
                            return Err(value_bug(format!(
                                "round {round}: estimate for node {i} is {s}"
                            )));
                        }
                        if h.estimates().is_available(NodeId(i)) && s <= 0.0 {
                            return Err(value_bug(format!(
                                "round {round}: available node {i} estimated at {s}"
                            )));
                        }
                    }
                }
                Err(e) => {
                    failed = true;
                    let _ = e;
                }
            }
        }
        if failed {
            Err(typed("recon round failed"))
        } else {
            Ok(())
        }
    });
    judge_pool("recon-rounds", &report.pool)?;
    judge_ranks(sc, &report.results)
}

fn check_selection(sc: &Scenario, model_seed: u64, est_seed: u64) -> Result<(), Violation> {
    let n = sc.nodes();
    let cluster = build_cluster(sc);
    let placement: Vec<NodeId> = (0..n).map(NodeId).collect();
    let mut erng = StdRng::seed_from_u64(est_seed);
    let estimates =
        SpeedEstimates::from_speeds((0..n).map(|_| erng.random_range(1.0..300.0)).collect());
    let ctx = SelectionCtx {
        cluster: &cluster,
        placement: &placement,
        estimates: &estimates,
        candidates: (0..n).collect(),
        pinned_parent: est_seed.is_multiple_of(2).then_some(0),
    };
    let model = ModelBuilder::random(model_seed, n.min(4));
    let mut algos = vec![
        MappingAlgorithm::Greedy,
        MappingAlgorithm::GreedyRefined { max_rounds: 2 },
        MappingAlgorithm::Annealing {
            seed: model_seed,
            iters: 30,
        },
    ];
    if n <= 6 {
        algos.push(MappingAlgorithm::Exhaustive);
    }
    for algo in algos {
        let fast = select_mapping(algo, &model, &ctx);
        let naive = select_mapping_naive(algo, &model, &ctx);
        let agree = match (&fast, &naive) {
            (Ok(a), Ok(b)) => {
                a.assignment == b.assignment && a.predicted.to_bits() == b.predicted.to_bits()
            }
            (Err(a), Err(b)) => format!("{a:?}") == format!("{b:?}"),
            _ => false,
        };
        if !agree {
            return Err(viol(
                "engine-naive-equivalence",
                format!("{algo:?}: engine {fast:?} vs naive {naive:?}"),
            ));
        }
    }
    Ok(())
}

fn check_shrink(sc: &Scenario, rounds: usize, units: f64) -> Result<(), Violation> {
    let n = sc.nodes();
    let crashed: Vec<usize> = sc
        .faults
        .iter()
        .filter_map(|ev| match ev {
            FaultEvent::NodeCrash { node, .. } => Some(node.0),
            _ => None,
        })
        .collect();
    let rt = HmpiRuntime::new(build_cluster(sc));
    let crashed2 = crashed.clone();
    let report = rt.run(move |h| -> Result<(), RankFail> {
        let model_for = |p: usize| {
            ModelBuilder::new("shrink")
                .processors(p)
                .volumes(vec![units; p])
                .build()
                .expect("uniform model always builds")
        };
        let group = match h.group_create(&model_for(n)) {
            Ok(g) => g,
            Err(e) => return Err(typed(e)), // crash may predate the create
        };
        // A p == n model places every live rank; with everyone alive at
        // create time that is all of us.
        let comm = match group.comm() {
            Some(c) => c.clone(),
            None => return Err(typed("not a member of the full group")),
        };
        let mut saw_failure = false;
        for _ in 0..rounds {
            if h.try_compute(units).is_err() {
                return Err(typed("own node crashed")); // this rank died
            }
            if comm.barrier().is_err() {
                saw_failure = true;
                break;
            }
        }
        if !saw_failure {
            h.group_free(group).map_err(typed)?;
            return Ok(());
        }
        match h.rebuild_group(group, |survivors| Ok(model_for(survivors.len()))) {
            Ok(rebuilt) => {
                let members = rebuilt.members().to_vec();
                if let Some(&dead) = members.iter().find(|m| crashed2.contains(m)) {
                    return Err(value_bug(format!(
                        "rebuilt group contains crashed rank {dead}: {members:?}"
                    )));
                }
                if rebuilt.is_member() {
                    let c = rebuilt.comm().expect("members have a comm").clone();
                    c.barrier().map_err(typed)?;
                }
                h.group_free(rebuilt).map_err(typed)?;
                Ok(())
            }
            Err(e) => Err(typed(e)),
        }
    });
    judge_pool("shrink-recovery", &report.pool)?;
    judge_ranks(sc, &report.results)
}

fn check_app(sc: &Scenario, app: AppKind) -> Result<(), Violation> {
    let n = sc.nodes();
    let cluster = build_cluster(sc);
    match app {
        AppKind::Em3d => {
            let p = n.min(3);
            let cfg = hmpi_apps::em3d::Em3dConfig::ramp(p, 6, 2.0, sc.seed);
            let mpi = hmpi_apps::em3d::run_mpi(cluster.clone(), &cfg, 2);
            let hmpi = hmpi_apps::em3d::run_hmpi(cluster, &cfg, 2, 8);
            check_members("em3d", &hmpi.members, n)?;
            if mpi.fields != hmpi.fields {
                return Err(viol(
                    "placement-neutrality",
                    "EM3D fields differ between the MPI and HMPI placements",
                ));
            }
            check_app_times("em3d", &[mpi.time, hmpi.time])
        }
        AppKind::Matmul => {
            let m = if n >= 4 { 2 } else { 1 };
            let (size, r) = (2 * m, 2);
            let mpi = hmpi_apps::matmul::run_mpi(cluster.clone(), m, size, r, Some(m));
            let hmpi = hmpi_apps::matmul::run_hmpi(cluster, m, size, r, Some(m));
            check_members("matmul", &hmpi.members, n)?;
            if mpi.c != hmpi.c {
                return Err(viol(
                    "placement-neutrality",
                    "matmul products differ between the MPI and HMPI placements",
                ));
            }
            check_app_times("matmul", &[mpi.time, hmpi.time])
        }
        AppKind::Nbody => {
            let p = n.min(3);
            let cfg = hmpi_apps::nbody::NbodyConfig::ramp(p, 2, 2.0, sc.seed);
            let mpi = hmpi_apps::nbody::run_mpi(cluster.clone(), &cfg, 2, 1);
            let hmpi = hmpi_apps::nbody::run_hmpi(cluster, &cfg, 2, 1);
            check_members("nbody", &hmpi.members, n)?;
            if mpi.groups != hmpi.groups {
                return Err(viol(
                    "placement-neutrality",
                    "N-body trajectories differ between the MPI and HMPI placements",
                ));
            }
            check_app_times("nbody", &[mpi.time, hmpi.time])
        }
    }
}

fn check_members(app: &str, members: &[usize], n: usize) -> Result<(), Violation> {
    let mut seen = std::collections::HashSet::new();
    for &m in members {
        if m >= n || !seen.insert(m) {
            return Err(viol(
                "value-integrity",
                format!("{app}: HMPI member list {members:?} invalid for world size {n}"),
            ));
        }
    }
    Ok(())
}

fn check_app_times(app: &str, times: &[f64]) -> Result<(), Violation> {
    for &t in times {
        if !t.is_finite() || t < 0.0 {
            return Err(viol(
                "value-integrity",
                format!("{app}: virtual time {t} is not a sane duration"),
            ));
        }
    }
    Ok(())
}
