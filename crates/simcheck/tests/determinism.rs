//! Bit-identical replay: the flagship determinism property.
//!
//! Two runs of the same simcheck scenario seed must produce bit-identical
//! virtual times, per-rank verdicts and traces under *every* contention
//! model — arbitration for shared NICs, the shared bus and the intra-node
//! memory bus is endpoint-causal (each rank's resource frontier advances
//! only with its own program order), so the host's thread schedule cannot
//! leak into the simulation. Before this held, bus/NIC clocks were granted
//! first-come-first-served in host-schedule order and the invariant had to
//! be carved out to `ParallelLinks`.

use hetsim::ContentionModel;
use mpisim::{ReduceOp, Universe, UniverseConfig};
use proptest::prelude::*;
use simcheck::{build_cluster, generate, placement, Scenario};

/// Runs a fixed mixed workload (neighbour sendrecv, then an allreduce) on
/// the scenario's cluster and placement, and digests everything the run
/// observed: the makespan bits, each rank's result (values as exact bit
/// patterns, errors as their typed rendering) and the full Chrome trace.
fn run_digest(sc: &Scenario) -> (u64, Vec<String>, String) {
    let u = Universe::with_config(
        build_cluster(sc),
        UniverseConfig::new().placement(placement(sc)).tracing(true),
    );
    let n = sc.ranks();
    let report = u.run(move |proc| -> Result<Vec<u64>, String> {
        let world = proc.world();
        let me = world.rank();
        let payload: Vec<f64> = (0..6).map(|i| ((me * 31 + i) % 17) as f64 + 0.5).collect();
        let (right, left) = ((me + 1) % n, (me + n - 1) % n);
        let (rx, _) = world
            .sendrecv::<f64, f64>(&payload, right, 3, left, 3)
            .map_err(|e| format!("{e:?}"))?;
        let sum = world
            .allreduce_eq_f64(&rx, ReduceOp::Sum)
            .map_err(|e| format!("{e:?}"))?;
        Ok(sum.iter().map(|x| x.to_bits()).collect())
    });
    let results: Vec<String> = report.results.iter().map(|r| format!("{r:?}")).collect();
    let trace = report
        .trace
        .as_ref()
        .expect("tracing enabled")
        .to_chrome_json();
    (report.makespan.as_secs().to_bits(), results, trace)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn same_seed_runs_are_bit_identical_on_every_contention_model(seed in 0u64..5000) {
        for cont in [
            ContentionModel::ParallelLinks,
            ContentionModel::SerializedNic,
            ContentionModel::SharedBus,
        ] {
            let mut sc = generate(seed);
            sc.contention = cont;
            let first = run_digest(&sc);
            let second = run_digest(&sc);
            prop_assert_eq!(&first, &second, "replay diverged under {:?}", cont);
        }
    }
}
