//! Replays the committed corpus as an ordinary test, so every curated
//! scenario (and every minimised repro of a past failure) is re-checked
//! by `cargo test`. Lines starting with `#` are comments; each other
//! line is one scenario in the `v1 seed=...` encoding.

use simcheck::{check, generate, generate_hierarchical, parse};
use std::path::Path;

#[test]
fn the_committed_corpus_holds_every_invariant() {
    let dir = Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/corpus"));
    let mut files: Vec<_> = std::fs::read_dir(dir)
        .expect("corpus directory exists")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|x| x == "scn"))
        .collect();
    files.sort();
    assert!(!files.is_empty(), "corpus has no .scn files");

    let mut scenarios = 0;
    for file in &files {
        let text = std::fs::read_to_string(file).unwrap();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let sc = parse(line).unwrap_or_else(|e| {
                panic!("{}:{}: parse error: {e}", file.display(), lineno + 1)
            });
            // The committed encoding is canonical: every line must
            // re-encode byte-for-byte, so new scenario fields (placement,
            // topology, ...) can never silently change the corpus format.
            assert_eq!(
                sc.to_string(),
                line,
                "{}:{}: line does not re-encode byte-identically",
                file.display(),
                lineno + 1
            );
            if let Err(v) = check(&sc) {
                panic!("{}:{}: {v}\n  scenario: {sc}", file.display(), lineno + 1);
            }
            scenarios += 1;
        }
    }
    assert!(
        scenarios >= 10,
        "corpus has only {scenarios} scenarios; keep at least 10 curated cases"
    );
}

/// A fixed-seed smoke slice of the fuzzer itself, so `cargo test` alone
/// exercises generation + execution end to end even if the corpus is
/// ever pruned.
#[test]
fn a_fixed_seed_slice_of_the_fuzzer_passes() {
    for seed in 0..25 {
        let sc = generate(seed);
        if let Err(v) = check(&sc) {
            panic!("seed {seed}: {v}\n  scenario: {sc}");
        }
    }
}

/// The same smoke slice for the hierarchical batch: multi-site clusters
/// through the hierarchy-aware auto-selection, parity and value checks.
#[test]
fn a_fixed_seed_slice_of_the_hierarchical_fuzzer_passes() {
    for seed in 0..15 {
        let sc = generate_hierarchical(seed);
        if let Err(v) = check(&sc) {
            panic!("seed {seed}: {v}\n  scenario: {sc}");
        }
    }
}
